"""Breadth-First Search as a VCPM algorithm.

Property = hop distance from the source; ``Process_Edge`` adds one hop,
``Reduce`` keeps the minimum, ``Apply`` keeps the smaller of old and new.
Unreached vertices hold ``inf``.  Weights are ignored.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.graph.csr import CSRGraph


class BFS(Algorithm):
    name = "BFS"
    uses_weights = False
    reduce_op = "min"
    process_const = 1.0     # process_edge == sprop + 1.0

    def init_prop(self, graph: CSRGraph, source: int) -> np.ndarray:
        prop = np.full(graph.num_vertices, np.inf, dtype=np.float64)
        prop[source] = 0.0
        return prop

    def identity(self) -> float:
        return np.inf

    def process_edge(self, sprop: float, weight: int) -> float:
        return sprop + 1.0

    def process_edge_vec(self, sprop: np.ndarray, weight: np.ndarray) -> np.ndarray:
        return sprop + 1.0

    def reduce(self, acc: float, imm: float) -> float:
        return imm if imm < acc else acc

    def reduce_at(self, tprop: np.ndarray, dst: np.ndarray, imm: np.ndarray) -> None:
        np.minimum.at(tprop, dst, imm)

    def apply(self, prop: np.ndarray, tprop: np.ndarray, graph: CSRGraph) -> np.ndarray:
        return np.minimum(prop, tprop)
