"""Connected components via min-label propagation.

Not part of the paper's evaluation roster, but a standard VCPM workload
(Graphicionado and GraphDynS both evaluate it) and a useful stress case:
*every* vertex is active in the first iteration, and labels flow along
edges until a fixpoint.  On a directed graph the result is the smallest
label reachable backwards along edge direction; symmetrize the graph
(``CSRGraph`` + reversed edges) for weakly connected components.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.graph.csr import CSRGraph


class ConnectedComponents(Algorithm):
    """prop = smallest vertex id propagated so far (min-reduce)."""

    name = "CC"
    process_is_identity = True
    uses_weights = False
    reduce_op = "min"

    def init_prop(self, graph: CSRGraph, source: int) -> np.ndarray:
        return np.arange(graph.num_vertices, dtype=np.float64)

    def initial_active(self, graph: CSRGraph, source: int) -> np.ndarray:
        # every vertex broadcasts its own label initially
        return np.arange(graph.num_vertices, dtype=np.int64)

    def identity(self) -> float:
        return np.inf

    def process_edge(self, sprop: float, weight: int) -> float:
        return sprop

    def process_edge_vec(self, sprop: np.ndarray, weight: np.ndarray) -> np.ndarray:
        return sprop

    def reduce(self, acc: float, imm: float) -> float:
        return imm if imm < acc else acc

    def reduce_at(self, tprop: np.ndarray, dst: np.ndarray, imm: np.ndarray) -> None:
        np.minimum.at(tprop, dst, imm)

    def apply(self, prop: np.ndarray, tprop: np.ndarray, graph: CSRGraph) -> np.ndarray:
        return np.minimum(prop, tprop)


class Reachability(Algorithm):
    """Single-source reachability: prop = 1.0 when reachable (max-reduce).

    The boolean cousin of BFS — useful when only membership matters and
    properties must stay 1-bit-narrow in hardware.
    """

    name = "REACH"
    process_is_identity = True
    uses_weights = False
    reduce_op = "max"

    def init_prop(self, graph: CSRGraph, source: int) -> np.ndarray:
        prop = np.zeros(graph.num_vertices, dtype=np.float64)
        prop[source] = 1.0
        return prop

    def identity(self) -> float:
        return 0.0

    def process_edge(self, sprop: float, weight: int) -> float:
        return sprop

    def process_edge_vec(self, sprop: np.ndarray, weight: np.ndarray) -> np.ndarray:
        return sprop

    def reduce(self, acc: float, imm: float) -> float:
        return imm if imm > acc else acc

    def reduce_at(self, tprop: np.ndarray, dst: np.ndarray, imm: np.ndarray) -> None:
        np.maximum.at(tprop, dst, imm)

    def apply(self, prop: np.ndarray, tprop: np.ndarray, graph: CSRGraph) -> np.ndarray:
        return np.maximum(prop, tprop)
