"""Functional VCPM reference engine (golden model).

Executes paper Fig. 2 exactly — scatter over the active list, then apply
over every vertex — with fully vectorized numpy kernels.  It defines the
*semantics* the cycle simulators must reproduce: the per-iteration active
lists, the number of edges traversed, and the final Property Array.  The
accelerator integration tests assert bit-identical agreement (tolerance
only for PageRank's floating-point sums, whose reduction order differs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Algorithm
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class IterationTrace:
    """What one scatter+apply iteration did."""

    index: int
    active_vertices: np.ndarray      # ids, ascending
    edges_traversed: int


@dataclass
class ReferenceResult:
    """Final state plus per-iteration trace of a reference run."""

    algorithm: str
    properties: np.ndarray
    iterations: list[IterationTrace] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_edges(self) -> int:
        return sum(t.edges_traversed for t in self.iterations)


def _gather_edge_indices(offsets: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Concatenated edge indices of all active vertices, CSR order.

    Standard repeat/arange trick: for active vertex ``u`` with extent
    ``[offsets[u], offsets[u+1])`` emit that range, all vectorized.
    """
    starts = offsets[active]
    lens = offsets[active + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(starts, lens)
    prefix = np.concatenate(([0], np.cumsum(lens)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(prefix, lens)
    return base + within


def run_reference(
    graph: CSRGraph,
    algorithm: Algorithm,
    source: int = 0,
    max_iterations: int | None = None,
    trace: bool = True,
) -> ReferenceResult:
    """Run ``algorithm`` on ``graph`` to convergence (or the iteration bound).

    ``max_iterations`` overrides the algorithm's own bound; convergent
    algorithms (BFS/SSSP/SSWP) stop when the active list empties, with a
    ``V + 1`` safety net against non-converging inputs.
    """
    algorithm.validate_graph(graph)
    if graph.num_vertices == 0:
        return ReferenceResult(algorithm.name, np.empty(0, dtype=np.float64))
    if not 0 <= source < graph.num_vertices:
        raise SimulationError(f"source {source} out of range [0, {graph.num_vertices})")

    out_degree = graph.out_degree()
    prop = algorithm.init_prop(graph, source)
    active = algorithm.initial_active(graph, source)

    if max_iterations is None:
        max_iterations = (algorithm.default_iterations if algorithm.all_active
                          else graph.num_vertices + 1)

    result = ReferenceResult(algorithm.name, prop)
    identity = algorithm.identity()

    for it in range(max_iterations):
        if active.size == 0:
            break
        # --- Scatter phase -------------------------------------------
        sprop_all = algorithm.scatter_value(prop, out_degree)
        eidx = _gather_edge_indices(graph.offsets, active)
        tprop = np.full(graph.num_vertices, identity, dtype=np.float64)
        if eidx.size:
            lens = out_degree[active]
            sprop_per_edge = np.repeat(sprop_all[active], lens)
            dsts = graph.dst[eidx]
            imm = algorithm.process_edge_vec(sprop_per_edge, graph.weights[eidx])
            algorithm.reduce_at(tprop, dsts, imm)
        # --- Apply phase ---------------------------------------------
        new_prop = algorithm.apply(prop, tprop, graph)
        changed = algorithm.activation_mask(prop, new_prop)
        if trace:
            result.iterations.append(IterationTrace(it, active, int(eidx.size)))
        prop = new_prop
        active = np.nonzero(changed)[0].astype(np.int64)
        if algorithm.all_active and it + 1 >= max_iterations:
            active = np.empty(0, dtype=np.int64)

    result.properties = prop
    return result


def expected_iteration_plan(
    graph: CSRGraph,
    algorithm: Algorithm,
    source: int = 0,
    max_iterations: int | None = None,
) -> list[np.ndarray]:
    """Just the per-iteration active lists (what a simulator must process)."""
    res = run_reference(graph, algorithm, source, max_iterations, trace=True)
    return [t.active_vertices for t in res.iterations]
