"""Single-Source Shortest Path (Bellman-Ford style) as a VCPM algorithm.

Property = path length; ``Process_Edge`` adds the edge weight,
``Reduce``/``Apply`` keep the minimum.  Weights must be non-negative.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph


class SSSP(Algorithm):
    name = "SSSP"
    reduce_op = "min"
    process_op = "add"

    def init_prop(self, graph: CSRGraph, source: int) -> np.ndarray:
        prop = np.full(graph.num_vertices, np.inf, dtype=np.float64)
        prop[source] = 0.0
        return prop

    def identity(self) -> float:
        return np.inf

    def process_edge(self, sprop: float, weight: int) -> float:
        return sprop + weight

    def process_edge_vec(self, sprop: np.ndarray, weight: np.ndarray) -> np.ndarray:
        return sprop + weight

    def reduce(self, acc: float, imm: float) -> float:
        return imm if imm < acc else acc

    def reduce_at(self, tprop: np.ndarray, dst: np.ndarray, imm: np.ndarray) -> None:
        np.minimum.at(tprop, dst, imm)

    def apply(self, prop: np.ndarray, tprop: np.ndarray, graph: CSRGraph) -> np.ndarray:
        return np.minimum(prop, tprop)

    def validate_graph(self, graph: CSRGraph) -> None:
        if graph.num_edges and graph.weights.min() < 0:
            raise ConfigError("SSSP requires non-negative edge weights")
