"""Single-Source Widest Path as a VCPM algorithm.

Property = widest-path bottleneck from the source (maximin).  The source
has infinite width; ``Process_Edge`` narrows the path by the edge weight
(``min``), ``Reduce``/``Apply`` keep the widest (``max``).  Weights must
be positive so that 0 can serve as the reduce identity.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph


class SSWP(Algorithm):
    name = "SSWP"
    reduce_op = "max"
    process_op = "min"

    def init_prop(self, graph: CSRGraph, source: int) -> np.ndarray:
        prop = np.zeros(graph.num_vertices, dtype=np.float64)
        prop[source] = np.inf
        return prop

    def identity(self) -> float:
        return 0.0

    def process_edge(self, sprop: float, weight: int) -> float:
        return sprop if sprop < weight else float(weight)

    def process_edge_vec(self, sprop: np.ndarray, weight: np.ndarray) -> np.ndarray:
        return np.minimum(sprop, weight)

    def reduce(self, acc: float, imm: float) -> float:
        return imm if imm > acc else acc

    def reduce_at(self, tprop: np.ndarray, dst: np.ndarray, imm: np.ndarray) -> None:
        np.maximum.at(tprop, dst, imm)

    def apply(self, prop: np.ndarray, tprop: np.ndarray, graph: CSRGraph) -> np.ndarray:
        return np.maximum(prop, tprop)

    def validate_graph(self, graph: CSRGraph) -> None:
        if graph.num_edges and graph.weights.min() <= 0:
            raise ConfigError("SSWP requires strictly positive edge weights")
