"""PageRank as a VCPM algorithm.

Property = rank.  The scatter value is ``rank / out_degree`` (computed
once per iteration when the ActiveVertex Array is rebuilt); ``Reduce``
sums the incoming contributions; ``Apply`` is the damped update
``(1 - d)/V + d * tProp``.  Every vertex is active every iteration and
the run is bounded by a fixed iteration count, matching how accelerator
papers evaluate PR (the paper notes the Offset/Edge arrays are "read in
order on the PR algorithm").

Dangling vertices (out-degree 0) simply contribute nothing; their rank
mass is not redistributed, which matches the plain VCPM formulation the
paper's Fig. 2 expresses.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.graph.csr import CSRGraph


class PageRank(Algorithm):
    name = "PR"
    all_active = True
    uses_weights = False
    process_is_identity = True
    reduce_op = "add"

    def __init__(self, damping: float = 0.85, iterations: int = 10) -> None:
        self.damping = damping
        self.default_iterations = iterations

    def init_prop(self, graph: CSRGraph, source: int) -> np.ndarray:
        v = max(1, graph.num_vertices)
        return np.full(graph.num_vertices, 1.0 / v, dtype=np.float64)

    def identity(self) -> float:
        return 0.0

    def scatter_value(self, prop: np.ndarray, out_degree: np.ndarray) -> np.ndarray:
        safe_degree = np.maximum(out_degree, 1)
        return prop / safe_degree

    def process_edge(self, sprop: float, weight: int) -> float:
        return sprop

    def process_edge_vec(self, sprop: np.ndarray, weight: np.ndarray) -> np.ndarray:
        return sprop

    def reduce(self, acc: float, imm: float) -> float:
        return acc + imm

    def reduce_at(self, tprop: np.ndarray, dst: np.ndarray, imm: np.ndarray) -> None:
        np.add.at(tprop, dst, imm)

    def apply(self, prop: np.ndarray, tprop: np.ndarray, graph: CSRGraph) -> np.ndarray:
        v = max(1, graph.num_vertices)
        return (1.0 - self.damping) / v + self.damping * tprop

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PageRank(damping={self.damping}, iterations={self.default_iterations})"
