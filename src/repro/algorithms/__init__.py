"""VCPM algorithm layer: kernels (Fig. 2) and the functional golden model."""

from repro.algorithms.base import Algorithm
from repro.algorithms.bfs import BFS
from repro.algorithms.components import ConnectedComponents, Reachability
from repro.algorithms.pagerank import PageRank
from repro.algorithms.reference import (
    IterationTrace,
    ReferenceResult,
    expected_iteration_plan,
    run_reference,
)
from repro.algorithms.sssp import SSSP
from repro.algorithms.sswp import SSWP

#: Algorithm roster of the paper's evaluation, in figure order.
PAPER_ALGORITHMS = ("BFS", "SSSP", "SSWP", "PR")


def make_algorithm(name: str, **kwargs) -> Algorithm:
    """Instantiate a paper algorithm by its Table/Figure abbreviation."""
    key = name.upper()
    if key == "BFS":
        return BFS()
    if key == "SSSP":
        return SSSP()
    if key == "SSWP":
        return SSWP()
    if key in ("PR", "PAGERANK"):
        return PageRank(**kwargs)
    if key == "CC":
        return ConnectedComponents()
    if key == "REACH":
        return Reachability()
    raise ValueError(
        f"unknown algorithm {name!r}; expected one of {PAPER_ALGORITHMS} "
        "or CC / REACH")


__all__ = [
    "Algorithm",
    "BFS",
    "SSSP",
    "SSWP",
    "PageRank",
    "ConnectedComponents",
    "Reachability",
    "PAPER_ALGORITHMS",
    "make_algorithm",
    "run_reference",
    "expected_iteration_plan",
    "ReferenceResult",
    "IterationTrace",
]
