"""Vertex-Centric Programming Model algorithm interface (paper Fig. 2).

VCPM expresses an iterative graph algorithm with three user-defined
functions plus activation semantics:

* ``Process_Edge(u.prop, e.weight) -> Imm`` — run per edge in the
  scatter phase (the accelerator's ePE).
* ``Reduce(v.tProp, Imm) -> v.tProp`` — commutative/associative merge
  into the temporary property array (the accelerator's vPE).
* ``Apply(v.prop, v.tProp) -> prop'`` — per-vertex synchronization at
  the end of an iteration; vertices whose property changed are activated
  for the next iteration.

Each algorithm provides the kernels twice: **scalar** (used per-datum by
the cycle simulator) and **vectorized** (used by the functional golden
model).  Both must agree — tests enforce it.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod

import numpy as np

from repro.graph.csr import CSRGraph

#: C-level scalar equivalents of the declared ``reduce_op`` forms; the
#: builtins return the first argument on ties, exactly like the
#: ``imm if imm < acc else acc`` hand-written reductions.
_SCALAR_REDUCE = {"min": min, "max": max, "add": operator.add}


class Algorithm(ABC):
    """One VCPM algorithm: kernels + activation semantics."""

    #: short identifier used in benchmark tables ("BFS", "SSSP", ...)
    name: str = "?"
    #: True when every vertex is active every iteration (PageRank-style);
    #: iteration count is then bounded by ``default_iterations``.
    all_active: bool = False
    #: iteration bound for ``all_active`` algorithms (ignored otherwise).
    default_iterations: int = 10
    #: True when Process_Edge reads the edge weight (BFS does not).
    uses_weights: bool = True
    #: True when ``process_edge(sprop, weight) == sprop`` for all inputs
    #: (PageRank, label propagation).  Lets cycle engines skip the
    #: per-edge kernel call without changing a single produced value.
    process_is_identity: bool = False
    #: Declares ``reduce`` as one of the closed forms "min" / "max" /
    #: "add" (ties resolve to the accumulator, exactly like the
    #: ``imm if imm < acc else acc`` implementations), or ``None`` for
    #: an arbitrary reduction.  Lets cycle engines substitute the C
    #: builtin without changing a single produced bit.
    reduce_op: str | None = None
    #: Declares ``process_edge`` as "add" (``sprop + weight``) or
    #: "min" (``min(sprop, weight)``, ties to ``sprop``) so cycle
    #: engines can inline the per-edge kernel; ``None`` keeps the
    #: method call.  Ignored when ``process_is_identity`` is set, and
    #: irrelevant when ``uses_weights`` is False (the kernel is then a
    #: per-request constant engines may hoist out of the edge loop).
    process_op: str | None = None
    #: For weight-independent kernels (``uses_weights`` False, not
    #: identity): declares ``process_edge(sprop, w) == sprop + C`` so
    #: compiled engines can run the kernel without calling back into
    #: Python; ``None`` keeps the method call (those engines fall back).
    process_const: float | None = None

    # ------------------------------------------------------------------
    # State initialisation
    # ------------------------------------------------------------------
    @abstractmethod
    def init_prop(self, graph: CSRGraph, source: int) -> np.ndarray:
        """Initial Property Array (float64, one entry per vertex)."""

    @abstractmethod
    def identity(self) -> float:
        """Reset value of the tProperty Array (identity of Reduce)."""

    def initial_active(self, graph: CSRGraph, source: int) -> np.ndarray:
        """Vertex ids active in the first scatter iteration."""
        if self.all_active:
            return np.arange(graph.num_vertices, dtype=np.int64)
        return np.array([source], dtype=np.int64)

    # ------------------------------------------------------------------
    # Scatter-side kernels
    # ------------------------------------------------------------------
    def scatter_value(self, prop: np.ndarray, out_degree: np.ndarray) -> np.ndarray:
        """Per-vertex value broadcast along out-edges in the scatter phase.

        Identity for path-style algorithms; PageRank divides the rank by
        the out-degree here (the value the ActiveVertex Array carries).
        """
        return prop

    @abstractmethod
    def process_edge(self, sprop: float, weight: int) -> float:
        """Scalar Process_Edge (cycle-simulator ePE kernel)."""

    @abstractmethod
    def process_edge_vec(self, sprop: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Vectorized Process_Edge (golden model)."""

    @abstractmethod
    def reduce(self, acc: float, imm: float) -> float:
        """Scalar Reduce (cycle-simulator vPE kernel)."""

    def scalar_reduce_fn(self):
        """Fastest callable computing exactly ``self.reduce``.

        Resolves the declared ``reduce_op`` to the C builtin when one
        exists (bit-identical, including tie resolution), else returns
        the bound ``reduce`` itself.
        """
        return _SCALAR_REDUCE.get(self.reduce_op, self.reduce)

    @abstractmethod
    def reduce_at(self, tprop: np.ndarray, dst: np.ndarray, imm: np.ndarray) -> None:
        """Vectorized in-place Reduce: fold ``imm`` into ``tprop[dst]``."""

    # ------------------------------------------------------------------
    # Apply-side kernels
    # ------------------------------------------------------------------
    @abstractmethod
    def apply(self, prop: np.ndarray, tprop: np.ndarray, graph: CSRGraph) -> np.ndarray:
        """Vectorized Apply over the whole Property Array."""

    def activation_mask(self, old_prop: np.ndarray, new_prop: np.ndarray) -> np.ndarray:
        """Vertices to activate for the next iteration (Fig. 2 line 12:
        "if v.prop != applyRes")."""
        if self.all_active:
            return np.ones(len(old_prop), dtype=bool)
        return new_prop != old_prop

    # ------------------------------------------------------------------
    def validate_graph(self, graph: CSRGraph) -> None:
        """Reject graphs this algorithm is undefined on (override as needed)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
