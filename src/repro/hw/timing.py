"""Synthesis-timing model calibrated to the paper's reported numbers.

The paper's RTL is synthesized with Synopsys DC on TSMC 12nm at 0.8 V,
target clock 1 ns.  That flow is unavailable offline, so this module
fits simple critical-path models through every synthesis number the
paper reports, and exposes frequency as a function of structure:

* **Crossbar** (paper Fig. 4): frequency falls sharply with port count —
  about 2.2 GHz at 4 ports, 1.0 GHz at 32, 0.3 GHz at 256.  We model the
  critical path as ``t = A + B*log2(ports) + C*ports``: an arbitration
  tree depth term plus a wire/fan-out term, the standard decomposition
  for high-radix switch timing (Cagla et al. 2015, cited by the paper).
* **MDP-network** (§5.1, §5.3): critical path 0.93 ns for the 32-channel
  design, rising only to 0.97 ns at 256 channels — because each stage
  interacts over ``radix`` channels only.  Radix enters like a (small)
  crossbar; channel count only adds wiring growth.

GTEPS in the benchmark harness = edges × frequency / cycles, so these
models are what turns cycle counts into the paper's throughput plots
and caps GraphDynS scaling in Fig. 11.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

# Crossbar critical-path fit t(p) = A + B*log2(p) + C*p, in ns.
# Solved through three of the paper's Fig. 4 operating points
# (4 ports -> ~2.23 GHz, 32 -> 1.00 GHz, 256 -> ~0.30 GHz); the
# remaining Fig. 4 points fall on the curve (see tests).
CROSSBAR_T0_NS = 0.216
CROSSBAR_LOG_NS = 0.0986
CROSSBAR_LINEAR_NS = 0.00908

# MDP-network critical path t(radix, channels), in ns.  Calibrated to
# 0.93 ns @ (radix 2, 32 ch) and 0.97 ns @ (radix 2, 256 ch) from §5.1
# and §5.3.  The radix terms reuse the crossbar coefficients: a stage's
# interaction structure is an (radix)-way arbitration-free mux plus an
# rW1R FIFO write port, which grows the same way a small switch does.
MDP_T0_NS = 0.7953
MDP_RADIX_LOG_NS = 0.05
MDP_RADIX_LINEAR_NS = CROSSBAR_LINEAR_NS
MDP_CHANNEL_LOG_NS = 0.0133

#: The paper's synthesis target: 1 ns clock at 0.8 V (§5.1).
TARGET_CLOCK_NS = 1.0
TARGET_FREQUENCY_GHZ = 1.0

#: Port counts shown on the paper's Fig. 4 x-axis.
FIG4_PORT_SWEEP = (4, 8, 16, 32, 64, 128, 256)


def crossbar_critical_path_ns(ports: int) -> float:
    """Critical path of an arbitrated crossbar with ``ports`` ports."""
    if ports < 2:
        raise ConfigError(f"crossbar needs >= 2 ports, got {ports}")
    return (CROSSBAR_T0_NS
            + CROSSBAR_LOG_NS * math.log2(ports)
            + CROSSBAR_LINEAR_NS * ports)


def crossbar_frequency_ghz(ports: int) -> float:
    """Achievable crossbar frequency (paper Fig. 4 curve)."""
    return 1.0 / crossbar_critical_path_ns(ports)


def mdp_critical_path_ns(channels: int, radix: int = 2) -> float:
    """Critical path of one MDP-network stage.

    Stages are registered, so the network's critical path is one stage's
    — the decentralization argument of §3.1: interaction per stage is
    bounded by ``radix`` regardless of total channel count.
    """
    if channels < 2:
        raise ConfigError(f"MDP-network needs >= 2 channels, got {channels}")
    if radix < 2:
        raise ConfigError(f"MDP radix must be >= 2, got {radix}")
    return (MDP_T0_NS
            + MDP_RADIX_LOG_NS * math.log2(radix)
            + MDP_RADIX_LINEAR_NS * radix
            + MDP_CHANNEL_LOG_NS * math.log2(channels))


def mdp_frequency_ghz(channels: int, radix: int = 2) -> float:
    return 1.0 / mdp_critical_path_ns(channels, radix)


def design_frequency_ghz(
    *,
    crossbar_ports: int | None = None,
    mdp_channels: int | None = None,
    mdp_radix: int = 2,
    target_ghz: float = TARGET_FREQUENCY_GHZ,
) -> float:
    """Frequency of a whole design: slowest structure, capped at target.

    The paper runs every Table 1 configuration at 1 GHz; structures
    faster than the target don't raise the clock (the rest of the
    pipeline is designed to the 1 ns budget), but a structure slower
    than the target drags the whole design down — this is what stops
    GraphDynS beyond 64 back-end channels in Fig. 11.
    """
    critical_ns = 0.0
    if crossbar_ports is not None and crossbar_ports >= 2:
        critical_ns = max(critical_ns, crossbar_critical_path_ns(crossbar_ports))
    if mdp_channels is not None and mdp_channels >= 2:
        critical_ns = max(critical_ns, mdp_critical_path_ns(mdp_channels, mdp_radix))
    if critical_ns <= 0.0:
        return target_ghz
    return min(target_ghz, 1.0 / critical_ns)


def fig4_rows() -> list[dict]:
    """The Fig. 4 reproduction: frequency versus crossbar port count."""
    return [
        {"ports": p,
         "critical_path_ns": crossbar_critical_path_ns(p),
         "frequency_ghz": crossbar_frequency_ghz(p)}
        for p in FIG4_PORT_SWEEP
    ]
