"""Area / power model calibrated to the paper's §5.4 synthesis results.

The paper reports, for the dataflow-propagation site of the 32-channel
design (TSMC 12nm, 0.8 V, 1 GHz):

* MDP-network, 160-entry buffer per channel: **0.375 mm², 621.2 mW**
* FIFO-plus-crossbar, 128-entry buffer per channel: **0.292 mm², 508.1 mW**

"The area and power of MDP-network is slightly higher due to the larger
buffer, showing that replacing crossbar with MDP-network brings little
overhead."

We decompose both designs into buffer entries plus interconnect logic:
``area = entries_per_channel * channels * AREA_PER_ENTRY + logic``.
Crossbar logic grows quadratically with ports (mux matrix); MDP logic
grows linearly with channels and stage count.  The two §5.4 data points
calibrate the entry cost and the 32-channel logic constants; tests pin
the reproduction to the paper's numbers.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

# Calibration (see module docstring).  Entry cost is shared by both
# designs — both buffer the same 38-bit (v.ID, Imm) records.
AREA_PER_ENTRY_MM2 = 6.152e-5        # (0.292 - xbar logic) / (128 * 32)
POWER_PER_ENTRY_MW = 0.10938         # (508.1 - xbar logic) / (128 * 32)

# 32-port crossbar logic anchor; quadratic port scaling.
XBAR_LOGIC_AREA_MM2_AT32 = 0.040
XBAR_LOGIC_POWER_MW_AT32 = 60.0

# MDP logic anchor at (radix 2, 32 channels); scales with channels and
# per-stage radix structure.
MDP_LOGIC_AREA_MM2_AT32 = 0.060
MDP_LOGIC_POWER_MW_AT32 = 61.1


def crossbar_logic_area_mm2(ports: int) -> float:
    if ports < 2:
        raise ConfigError(f"crossbar needs >= 2 ports, got {ports}")
    return XBAR_LOGIC_AREA_MM2_AT32 * (ports / 32) ** 2


def crossbar_logic_power_mw(ports: int) -> float:
    if ports < 2:
        raise ConfigError(f"crossbar needs >= 2 ports, got {ports}")
    return XBAR_LOGIC_POWER_MW_AT32 * (ports / 32) ** 2


def mdp_logic_area_mm2(channels: int, radix: int = 2) -> float:
    if channels < 2 or radix < 2:
        raise ConfigError("MDP logic model needs channels >= 2, radix >= 2")
    stages = max(1, math.ceil(math.log(channels, radix)))
    # Per stage: `channels` demux/merge cells of radix-r complexity.
    stage_cost = channels * (radix / 2)
    anchor = 32 * 1.0 * 5            # channels * radix-2 cost * log2(32) stages
    return MDP_LOGIC_AREA_MM2_AT32 * (stage_cost * stages) / anchor


def mdp_logic_power_mw(channels: int, radix: int = 2) -> float:
    if channels < 2 or radix < 2:
        raise ConfigError("MDP logic model needs channels >= 2, radix >= 2")
    stages = max(1, math.ceil(math.log(channels, radix)))
    stage_cost = channels * (radix / 2)
    anchor = 32 * 1.0 * 5
    return MDP_LOGIC_POWER_MW_AT32 * (stage_cost * stages) / anchor


def buffer_area_mm2(entries_per_channel: int, channels: int) -> float:
    if entries_per_channel < 0 or channels < 1:
        raise ConfigError("invalid buffer geometry")
    return AREA_PER_ENTRY_MM2 * entries_per_channel * channels


def buffer_power_mw(entries_per_channel: int, channels: int) -> float:
    if entries_per_channel < 0 or channels < 1:
        raise ConfigError("invalid buffer geometry")
    return POWER_PER_ENTRY_MW * entries_per_channel * channels


def mdp_area_mm2(channels: int = 32, entries_per_channel: int = 160,
                 radix: int = 2) -> float:
    """Total area of an MDP-network propagation site (paper: 0.375 mm²)."""
    return (buffer_area_mm2(entries_per_channel, channels)
            + mdp_logic_area_mm2(channels, radix))


def mdp_power_mw(channels: int = 32, entries_per_channel: int = 160,
                 radix: int = 2) -> float:
    """Total power of an MDP-network propagation site (paper: 621.2 mW)."""
    return (buffer_power_mw(entries_per_channel, channels)
            + mdp_logic_power_mw(channels, radix))


def crossbar_area_mm2(channels: int = 32, entries_per_channel: int = 128) -> float:
    """Total area of a FIFO-plus-crossbar site (paper: 0.292 mm²)."""
    return (buffer_area_mm2(entries_per_channel, channels)
            + crossbar_logic_area_mm2(channels))


def crossbar_power_mw(channels: int = 32, entries_per_channel: int = 128) -> float:
    """Total power of a FIFO-plus-crossbar site (paper: 508.1 mW)."""
    return (buffer_power_mw(entries_per_channel, channels)
            + crossbar_logic_power_mw(channels))


def sec54_rows() -> list[dict]:
    """§5.4 area/power comparison, paper values alongside the model."""
    return [
        {"design": "MDP-network", "buffer_entries": 160,
         "paper_area_mm2": 0.375, "model_area_mm2": mdp_area_mm2(),
         "paper_power_mw": 621.2, "model_power_mw": mdp_power_mw()},
        {"design": "FIFO+crossbar", "buffer_entries": 128,
         "paper_area_mm2": 0.292, "model_area_mm2": crossbar_area_mm2(),
         "paper_power_mw": 508.1, "model_power_mw": crossbar_power_mw()},
    ]
