"""Arbitrated crossbar — the centralized interconnect the paper replaces.

"On-chip crossbar is a prevalent solution to direct the dataflow between
different execution channels.  However, it suffers from not only the
frequency decline ... but also a dramatic increase in area and power
consumption, when channel number increases."  (§1)

This is the cycle-level model used at the dataflow-propagation site of
the GraphDynS baseline and of HiGraph's FIFO-plus-crossbar ablation
(paper Fig. 12).  Each input has a FIFO; each output grants one input
per cycle by rotating priority; losing inputs keep their head —
**head-of-line blocking**: a blocked head also blocks every datum queued
behind it, even those destined for idle outputs.  The frequency cost of
the structure itself lives in :mod:`repro.hw.timing`.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hw.fifo import Fifo


class ArbitratedCrossbar:
    """n-input, m-output crossbar with per-output round-robin arbitration.

    Items offered to input ``i`` are ``(dest, payload)`` tuples.  Call
    :meth:`tick` once per cycle with the per-output acceptance budget;
    it returns the delivered ``(dest, payload)`` pairs.
    """

    def __init__(self, num_inputs: int, num_outputs: int, fifo_depth: int,
                 combine_fn=None) -> None:
        if num_inputs < 1 or num_outputs < 1:
            raise ConfigError("crossbar needs at least one input and one output")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.inputs = [Fifo(fifo_depth) for _ in range(num_inputs)]
        self._rr = [0] * num_outputs   # per-output rotating priority pointer
        #: optional input-side coalescing: a pushed payload may merge with
        #: the input FIFO's tail (``combine_fn(tail, new) -> merged|None``),
        #: e.g. GraphDynS-style update coalescing before the crossbar.
        self._combine = combine_fn
        self.combined = 0
        self.delivered = 0
        self.conflicts = 0             # losing requesters, summed per cycle
        self.cycles = 0

    # ------------------------------------------------------------------
    def can_offer(self, i: int) -> bool:
        return not self.inputs[i].full

    def offer(self, i: int, dest: int, payload) -> bool:
        """Push into input ``i``; False when the input FIFO is full."""
        if not 0 <= dest < self.num_outputs:
            raise ConfigError(f"crossbar dest {dest} out of range")
        fifo = self.inputs[i]
        if self._combine is not None and len(fifo):
            tail_dest, tail_payload = fifo.tail()
            if tail_dest == dest:
                merged = self._combine(tail_payload, payload)
                if merged is not None:
                    fifo.replace_tail((dest, merged))
                    self.combined += 1
                    return True
        if fifo.full:
            return False
        fifo.push((dest, payload))
        return True

    @property
    def occupancy(self) -> int:
        return sum(len(f) for f in self.inputs)

    @property
    def drained(self) -> bool:
        return all(f.empty for f in self.inputs)

    # ------------------------------------------------------------------
    def tick(self, output_budget: list[int]) -> list[tuple[int, object]]:
        """One cycle of arbitration.

        ``output_budget[d]`` is how many items output ``d`` can accept
        (usually 0 or 1).  Returns the delivered ``(dest, payload)``
        pairs; at most one item pops from each input (single read port).
        """
        if len(output_budget) != self.num_outputs:
            raise ConfigError(
                f"expected {self.num_outputs} budgets, got {len(output_budget)}")
        self.cycles += 1
        # Gather head requests per destination.
        requesters: dict[int, list[int]] = {}
        for i, fifo in enumerate(self.inputs):
            if not fifo.empty:
                dest = fifo.peek()[0]
                requesters.setdefault(dest, []).append(i)

        delivered: list[tuple[int, object]] = []
        for dest, inputs in requesters.items():
            budget = output_budget[dest]
            if budget <= 0:
                self.conflicts += len(inputs)
                continue
            grants = min(budget, 1, len(inputs))  # 1 item per output per cycle
            # rotating priority among this output's requesters
            ptr = self._rr[dest]
            inputs.sort(key=lambda i: (i - ptr) % self.num_inputs)
            for i in inputs[:grants]:
                dest_, payload = self.inputs[i].pop()
                delivered.append((dest_, payload))
                self._rr[dest] = (i + 1) % self.num_inputs
            self.conflicts += len(inputs) - grants
        self.delivered += len(delivered)
        return delivered
