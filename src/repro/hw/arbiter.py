"""Arbitration policies used at the three conflict sites.

* :class:`RoundRobinArbiter` — per-resource rotating priority, the
  classic crossbar output arbiter (GraphDynS-style sites).
* :class:`OddEvenArbiter` — the paper's §4.1 "alternating priority"
  arbiter for Offset Array access: odd and even channels alternately
  have the higher priority, so prioritized channels issue immediately
  and the others issue only when their banks are free (or their
  addresses are shared with the winners).
"""

from __future__ import annotations

from repro.errors import ConfigError, SimulationError


class RoundRobinArbiter:
    """Grant one requester per cycle, rotating priority after each grant."""

    def __init__(self, num_requesters: int) -> None:
        if num_requesters < 1:
            raise ConfigError("arbiter needs at least one requester")
        self.num_requesters = num_requesters
        self._next = 0
        self.grants = 0
        self.conflicts = 0

    def arbitrate(self, requests: list[bool]) -> int | None:
        """Return the granted requester index, or None if no requests.

        ``requests[i]`` is True when requester ``i`` wants the resource
        this cycle.  Counts every losing requester as one conflict.
        """
        if len(requests) != self.num_requesters:
            raise ConfigError(
                f"expected {self.num_requesters} request lines, got {len(requests)}")
        want = [i for i in range(self.num_requesters) if requests[i]]
        if not want:
            return None
        for off in range(self.num_requesters):
            idx = (self._next + off) % self.num_requesters
            if requests[idx]:
                self._next = (idx + 1) % self.num_requesters
                self.grants += 1
                self.conflicts += len(want) - 1
                return idx
        raise SimulationError(
            "round-robin scan found no requester despite a non-empty "
            "want set — arbiter state is inconsistent")


class OddEvenArbiter:
    """Paper §4.1 alternating-priority arbiter for Offset Array access.

    Channel ``i`` wants to read offset banks ``i`` and ``(i+1) mod n``
    (the one-to-two access pattern of {Off, nOff}), so conflicts only
    ever involve *adjacent* channels.  On even cycles the even channels
    have priority and issue unconditionally; odd channels issue only
    when their two (bank, address) reads are not claimed, or are claimed
    with the **same address** (a shared read).  Parity flips each cycle.
    """

    def __init__(self, num_channels: int) -> None:
        if num_channels < 1:
            raise ConfigError("odd-even arbiter needs at least one channel")
        self.num_channels = num_channels
        self.parity = 0           # 0: even channels prioritized, 1: odd
        self.grants = 0
        self.deferrals = 0

    def arbitrate(self, requests: list[tuple[tuple[int, int], ...] | None]) -> list[int]:
        """Grant a set of channels whose reads are all satisfiable.

        ``requests[i]`` is a tuple of ``(bank, address)`` reads channel
        ``i`` needs this cycle (or None when idle).  Returns the granted
        channel indices.  Call once per cycle — parity advances.
        """
        if len(requests) != self.num_channels:
            raise ConfigError(
                f"expected {self.num_channels} request slots, got {len(requests)}")
        claimed: dict[int, int] = {}   # bank -> address
        granted: list[int] = []

        def try_grant(i: int, unconditional: bool) -> bool:
            reads = requests[i]
            if reads is None:
                return False
            for bank, addr in reads:
                if not unconditional and bank in claimed and claimed[bank] != addr:
                    return False
            for bank, addr in reads:
                claimed[bank] = addr
            granted.append(i)
            return True

        # Priority parity first: these channels never see a conflict
        # among themselves (adjacent channels have opposite parity).
        for i in range(self.parity, self.num_channels, 2):
            try_grant(i, unconditional=True)
        # The other parity defers to already-claimed banks.
        for i in range(1 - self.parity, self.num_channels, 2):
            if requests[i] is not None and not try_grant(i, unconditional=False):
                self.deferrals += 1

        self.parity ^= 1
        self.grants += len(granted)
        return granted


class GreedyClaimArbiter:
    """Centralized greedy arbitration (the GraphDynS-style counterpart).

    Scans channels from a rotating start, granting each whose
    ``(bank, address)`` reads don't collide with already-claimed banks.
    This models the "delicate arbitration in reading Offset Array" that
    caps the baseline's front-end channel count (paper §5.1): the scan
    is a serial priority chain across *all* channels, which is exactly
    the design centralization the paper criticizes.

    ``merge_same_address`` defaults to False: broadcast reads of a
    shared (bank, address) are the §4.1 odd–even arbiter's trick; the
    plain crossbar-arbitrated baseline claims a bank port exclusively.
    """

    def __init__(self, num_channels: int, merge_same_address: bool = False) -> None:
        if num_channels < 1:
            raise ConfigError("arbiter needs at least one channel")
        self.num_channels = num_channels
        self.merge_same_address = merge_same_address
        self._start = 0
        self.grants = 0
        self.deferrals = 0

    def arbitrate(self, requests: list[tuple[tuple[int, int], ...] | None]) -> list[int]:
        if len(requests) != self.num_channels:
            raise ConfigError(
                f"expected {self.num_channels} request slots, got {len(requests)}")
        claimed: dict[int, int] = {}
        granted: list[int] = []
        for off in range(self.num_channels):
            i = (self._start + off) % self.num_channels
            reads = requests[i]
            if reads is None:
                continue
            if self.merge_same_address:
                ok = all(claimed.get(bank, addr) == addr for bank, addr in reads)
            else:
                ok = all(bank not in claimed for bank, addr in reads)
            if ok:
                for bank, addr in reads:
                    claimed[bank] = addr
                granted.append(i)
            else:
                self.deferrals += 1
        self._start = (self._start + 1) % self.num_channels
        self.grants += len(granted)
        return granted
