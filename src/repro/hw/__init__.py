"""Hardware primitives: FIFOs, arbiters, crossbars, banked SRAM, and the
calibrated timing / area / power models."""

from repro.hw.arbiter import GreedyClaimArbiter, OddEvenArbiter, RoundRobinArbiter
from repro.hw.crossbar import ArbitratedCrossbar
from repro.hw.fifo import Fifo, MultiWriteFifo
from repro.hw.sram import BankedMemory
from repro.hw.timing import (
    FIG4_PORT_SWEEP,
    TARGET_FREQUENCY_GHZ,
    crossbar_critical_path_ns,
    crossbar_frequency_ghz,
    design_frequency_ghz,
    fig4_rows,
    mdp_critical_path_ns,
    mdp_frequency_ghz,
)
from repro.hw.power import (
    crossbar_area_mm2,
    crossbar_power_mw,
    mdp_area_mm2,
    mdp_power_mw,
    sec54_rows,
)

__all__ = [
    "Fifo",
    "MultiWriteFifo",
    "RoundRobinArbiter",
    "OddEvenArbiter",
    "GreedyClaimArbiter",
    "ArbitratedCrossbar",
    "BankedMemory",
    "FIG4_PORT_SWEEP",
    "TARGET_FREQUENCY_GHZ",
    "crossbar_critical_path_ns",
    "crossbar_frequency_ghz",
    "mdp_critical_path_ns",
    "mdp_frequency_ghz",
    "design_frequency_ghz",
    "fig4_rows",
    "mdp_area_mm2",
    "mdp_power_mw",
    "crossbar_area_mm2",
    "crossbar_power_mw",
    "sec54_rows",
]
