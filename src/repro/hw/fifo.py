"""Cycle-level FIFO models, including the paper's nW1R FIFO.

An ``nW1R`` FIFO (n-Write-1-Read) "can input n datums and output one
datum in each cycle" (paper §3.1).  The paper's criticism of scaling n —
"the FIFO can accept data only when the remaining capacity is not less
than n" — is modelled by :meth:`MultiWriteFifo.ready`, which is exactly
the conservative full-signal a hardware nW1R FIFO exposes to its
writers.  MDP-network keeps n small (the radix), which is the whole
point of the design.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError, FifoOverflowError


class Fifo:
    """Bounded FIFO with occupancy statistics.

    The simulator calls :meth:`push`/:meth:`pop` at most once per
    element per cycle; scheduling order guarantees single-cycle flow
    semantics, so no explicit two-phase commit is needed here.
    """

    __slots__ = ("capacity", "_items", "peak_occupancy", "total_pushes")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"FIFO capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self.peak_occupancy = 0
        self.total_pushes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item) -> None:
        if self.full:
            raise FifoOverflowError(
                f"push to full FIFO (writer ignored backpressure): "
                f"occupancy {len(self._items)}/{self.capacity}")
        self._items.append(item)
        self.total_pushes += 1
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)

    def pop(self):
        return self._items.popleft()

    def peek(self):
        return self._items[0]

    def tail(self):
        """Most recently pushed item (for tail-combining logic)."""
        return self._items[-1]

    def replace_tail(self, item) -> None:
        """Overwrite the most recently pushed item in place."""
        self._items[-1] = item

    def clear(self) -> None:
        """Empty the FIFO *and* reset its statistics.

        ``clear()`` models a reset pulse between independent runs, so a
        reused FIFO must not leak the previous run's ``peak_occupancy``
        / ``total_pushes`` into the next one's accounting.
        """
        self._items.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the occupancy statistics without touching the contents."""
        self.peak_occupancy = 0
        self.total_pushes = 0

    def __iter__(self):
        return iter(self._items)


class MultiWriteFifo(Fifo):
    """The paper's nW1R FIFO: up to ``write_ports`` pushes per cycle.

    :meth:`ready` implements the conservative acceptance rule from §3.1:
    writers may only push when ``free >= write_ports``, because the FIFO
    cannot know how many of its ports will fire this cycle.  This is the
    source of the "large requirement and low utilization of buffer
    capacity" the paper attributes to large-n nW1R FIFOs — and of the
    buffer-efficiency advantage of radix-2 MDP stages.
    """

    __slots__ = ("write_ports",)

    def __init__(self, capacity: int, write_ports: int) -> None:
        if write_ports < 1:
            raise ConfigError(f"write_ports must be >= 1, got {write_ports}")
        if capacity < write_ports:
            raise ConfigError(
                f"nW1R FIFO needs capacity >= write ports ({capacity} < {write_ports})")
        super().__init__(capacity)
        self.write_ports = write_ports

    @property
    def ready(self) -> bool:
        """True when all ``write_ports`` writers may push this cycle."""
        return self.free >= self.write_ports

    def push_many(self, items) -> None:
        items = list(items)
        if len(items) > self.write_ports:
            raise FifoOverflowError(
                f"{len(items)} pushes exceed {self.write_ports} write ports "
                f"(capacity {self.capacity}, occupancy {len(self._items)})")
        if len(items) > self.free:
            raise FifoOverflowError(
                f"multi-write overflow (writers ignored ready): {len(items)} "
                f"pushes into {self.free} free slots (capacity "
                f"{self.capacity}, occupancy {len(self._items)}, "
                f"{self.write_ports} write ports)")
        for item in items:
            self.push(item)
