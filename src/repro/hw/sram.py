"""Interleaved banked on-chip memory model.

"To meet the requirement of data-access throughput in such a design,
the buffer for each data array is divided into several parts and
organized in the fashion of interleaving." (§2.2)

Each bank serves one address per cycle; concurrent reads of the *same*
address on the same bank merge (a broadcast read — the paper's odd-even
arbiter explicitly allows issuing when "their target addresses are the
same with those who have occupied the read channels").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class BankedMemory:
    """A numpy-backed data array interleaved across ``num_banks`` parts.

    The owning pipeline stage drives arbitration; this class enforces the
    one-address-per-bank-per-cycle port limit and keeps utilization
    statistics.  Call :meth:`begin_cycle` once per simulated cycle.
    """

    def __init__(self, data: np.ndarray, num_banks: int, name: str = "mem") -> None:
        if num_banks < 1:
            raise ConfigError(f"{name}: need at least one bank")
        self.data = data
        self.num_banks = num_banks
        self.name = name
        self._claims: dict[int, int] = {}   # bank -> address claimed this cycle
        self.cycles = 0
        self.reads = 0
        self.merged_reads = 0
        self.busy_bank_cycles = 0

    def bank_of(self, addr: int) -> int:
        return addr % self.num_banks

    def begin_cycle(self) -> None:
        self.busy_bank_cycles += len(self._claims)
        self._claims.clear()
        self.cycles += 1

    def try_read(self, addr: int):
        """Read ``data[addr]`` if the bank port is free (or address-shared).

        Returns the value, or None when the bank is already claimed for a
        different address this cycle.
        """
        bank = addr % self.num_banks
        claimed = self._claims.get(bank)
        if claimed is None:
            self._claims[bank] = addr
            self.reads += 1
            return self.data[addr]
        if claimed == addr:
            self.merged_reads += 1
            return self.data[addr]
        return None

    def read_granted(self, addr: int):
        """Read after external arbitration already granted the port.

        Used by stages whose arbiter (odd-even / greedy claim) resolved
        bank conflicts beforehand; still records port statistics.
        """
        self._claims[addr % self.num_banks] = addr
        self.reads += 1
        return self.data[addr]

    @property
    def utilization(self) -> float:
        """Mean fraction of banks busy per cycle (post begin_cycle accounting)."""
        if self.cycles == 0:
            return 0.0
        return self.busy_bank_cycles / (self.cycles * self.num_banks)
