"""Whole-phase structural windows: record one scatter phase, replay its twins.

The batched engine's strongest fast-forward rests on one invariant of
the simulated machine: **no control-flow decision in a scatter phase
reads a property value**.  Routing digits, arbitration winners, queue
capacities, vertex-combining probes (vertex-id equality), window
conflicts and convergence checks are all pure functions of the graph
structure, the presented ActiveVertex list, and the engine's
persistent arbiter state.  Float immediates only *ride along*.

For an all-active algorithm (PageRank) every iteration presents the
same ActiveVertex list, so when the arbiter state also matches a
previously simulated phase, the entire cycle evolution is provably
identical — the whole phase is one verified window.  The engine then:

* advances every ``SimStats`` counter and every conflict counter by
  the recorded per-phase delta (closed form, zero cycles ticked);
* restores the recorded end-of-phase arbiter state;
* re-executes only the *value plane*: leaf immediates are produced in
  one vectorized pass (``Process_Edge`` over the recorded edge ids),
  then the recorded vertex-combining merge log and delivery log replay
  the exact float-reduction tree of the simulated hardware, in the
  exact order — so tProperty comes out byte-identical.

Recording piggybacks on the first simulation of a phase at near-zero
cost: immediates are replaced by integer *slot ids* and the
``Reduce`` callable by a logging shim (merges append ``(a, b)`` and
keep the tail's slot, exactly like the hardware's in-FIFO combining;
deliveries — recognized because the tProperty accumulator is the
``None`` sentinel — append the delivered slot).  The value pass that
closes the recording also fills the caller's tProperty, so iteration
one needs no second simulation.

If any of this reasoning were wrong for some configuration, the
differential suite and the perf probe's built-in ``stats_identical``
check would fail loudly — the memo never silently changes results.
"""

from __future__ import annotations

import numpy as np


class PhaseProgram:
    """One recorded scatter phase: structure log + counter deltas."""

    __slots__ = ("active", "news_e", "merge_a", "merge_b",
                 "deliver_slots", "deliver_dv", "leaf_u",
                 "stat_deltas", "counter_deltas", "end_state", "cycles")

    def __init__(self, active: np.ndarray) -> None:
        self.active = active
        self.news_e: list = []          # leaf slot -> edge index
        self.merge_a: list = []         # combining log: tail slots
        self.merge_b: list = []         # combining log: merged-in slots
        self.deliver_slots: list = []   # delivery log, in delivery order
        self.deliver_dv: list = []      # destination vertex per delivery
        self.leaf_u: np.ndarray | None = None   # source vertex per leaf
        self.stat_deltas: dict = {}
        self.counter_deltas: dict = {}
        self.end_state: tuple = ()
        self.cycles = 0

    # ------------------------------------------------------------------
    def finalize(self, offsets: np.ndarray, dst: np.ndarray) -> None:
        """Derive the structural arrays the value pass needs."""
        e = np.asarray(self.news_e, dtype=np.int64)
        self.news_e = e
        # the CSR row containing edge e is its source vertex
        self.leaf_u = np.searchsorted(offsets, e, side="right") - 1
        slots = np.asarray(self.deliver_slots, dtype=np.int64)
        self.deliver_slots = slots.tolist()
        self.deliver_dv = dst[e[slots]].tolist() if len(slots) else []

    # ------------------------------------------------------------------
    def value_pass(self, algorithm, sprop_all: np.ndarray,
                   weights: np.ndarray, tprop: list) -> None:
        """Re-execute the float plane of the recorded phase.

        Leaves are vectorized; the merge and delivery loops replay the
        recorded reduction tree node for node, so every float op runs
        with the same operands in the same order as the simulated
        hardware's vPEs and combining units.
        """
        e = self.news_e
        if len(e) == 0:
            return
        leaf = sprop_all[self.leaf_u]
        if not algorithm.process_is_identity:
            leaf = algorithm.process_edge_vec(leaf, weights[e])
        vals = leaf.tolist()
        reduce_fn = algorithm.scalar_reduce_fn()
        for a, b in zip(self.merge_a, self.merge_b):
            vals[a] = reduce_fn(vals[a], vals[b])
        for dv, s in zip(self.deliver_dv, self.deliver_slots):
            tprop[dv] = reduce_fn(tprop[dv], vals[s])


class PhaseMemo:
    """Arbiter-state-keyed store of recorded phases for one engine.

    One recorded phase that is never replayed is pure overhead, and a
    first miss proves the arbiter state does not return to its start
    (the phase map is deterministic, so later phases will keep missing
    the same way) — after a miss no further phases are recorded.
    """

    __slots__ = ("programs", "missed")

    def __init__(self) -> None:
        self.programs: dict = {}
        self.missed = False

    def lookup(self, state_key: tuple, active: np.ndarray):
        prog = self.programs.get(state_key)
        if prog is not None and np.array_equal(prog.active, active):
            return prog
        if self.programs:
            self.missed = True
        return None

    def can_record(self, state_key: tuple) -> bool:
        return not self.missed and state_key not in self.programs

    def store(self, state_key: tuple, prog: PhaseProgram) -> None:
        self.programs[state_key] = prog


class PhaseRecorder:
    """Live logging shims for the phase being recorded."""

    __slots__ = ("prog", "news_e", "merge_a", "merge_b", "deliver")

    def __init__(self, prog: PhaseProgram) -> None:
        self.prog = prog
        self.news_e = prog.news_e
        self.merge_a = prog.merge_a
        self.merge_b = prog.merge_b
        self.deliver = prog.deliver_slots

    def reduce(self, a, b):
        """Stand-in for ``Reduce`` while immediates are slot ids.

        A merge keeps the tail's slot (the hardware folds the mover
        into the FIFO tail); a delivery — the accumulator is the
        ``None`` sentinel the recorder put in tProperty — logs the
        delivered slot and leaves the sentinel in place.
        """
        if a is None:
            self.deliver.append(b)
            return None
        self.merge_a.append(a)
        self.merge_b.append(b)
        return a
