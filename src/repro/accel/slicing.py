"""Large-graph execution via slicing + double buffering (§5.3 Discussion).

"For the large graph processing, the graph can be partitioned into small
slices, so that each slice is processed on chip.  Therefore, our
optimizations can improve throughput in large-scale graph analytics.
Besides, the time consumed in the replacement of slices can be
overlapped using double buffer design."

Each slice owns a destination-vertex interval and all edges into it.
One VCPM iteration scatters the active list once per slice (tProperty
accumulates across slices, since Reduce is commutative/associative) and
applies once.  Slice replacement traffic is modelled as
``slice_bytes / offchip_bytes_per_cycle`` and, with double buffering,
only the part of a load not hidden behind the previous slice's compute
is charged to the run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.accel.accelerator import APPLY_PIPELINE_LATENCY, AcceleratorSim, SimResult
from repro.accel.config import (
    DESIGN_ID_BITS,
    DESIGN_WEIGHT_BITS,
    AcceleratorConfig,
)
from repro.accel.stats import SimStats
from repro.algorithms.base import Algorithm
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.partition import GraphSlice, partition_for_budget


def slice_load_cycles(num_edges: int, offchip_bytes_per_cycle: float) -> int:
    """Cycles to stream one slice's edge data from off-chip memory.

    A zero-edge slice costs nothing; a negative edge count or a
    non-positive / non-finite bandwidth is a configuration error, not a
    cycle count of 0 or ``inf``.
    """
    if num_edges < 0:
        raise ConfigError(f"num_edges must be >= 0, got {num_edges}")
    if not math.isfinite(offchip_bytes_per_cycle) or offchip_bytes_per_cycle <= 0:
        raise ConfigError(
            f"offchip_bytes_per_cycle must be a positive finite number, "
            f"got {offchip_bytes_per_cycle}")
    if num_edges == 0:
        return 0
    bits_per_edge = DESIGN_ID_BITS + DESIGN_WEIGHT_BITS
    bytes_needed = num_edges * bits_per_edge / 8
    return int(np.ceil(bytes_needed / offchip_bytes_per_cycle))


class SlicedAcceleratorSim:
    """Drives one :class:`AcceleratorSim` per slice, double-buffered."""

    def __init__(self, config: AcceleratorConfig, graph: CSRGraph,
                 algorithm: Algorithm,
                 slices: list[GraphSlice] | None = None,
                 offchip_bytes_per_cycle: float = 64.0,
                 engine: str | None = None) -> None:
        if not math.isfinite(offchip_bytes_per_cycle) or offchip_bytes_per_cycle <= 0:
            raise ConfigError("offchip_bytes_per_cycle must be positive and finite")
        self.config = config
        self.graph = graph
        self.algorithm = algorithm
        self.offchip_bytes_per_cycle = offchip_bytes_per_cycle
        self.slices = slices if slices is not None else partition_for_budget(
            graph, config.onchip_memory_bytes, id_bits=DESIGN_ID_BITS)
        self.slice_sims = [AcceleratorSim(config, s.graph, algorithm,
                                          engine=engine)
                           for s in self.slices]
        self.out_degree = graph.out_degree()

    # ------------------------------------------------------------------
    def run(self, source: int = 0, max_iterations: int | None = None) -> SimResult:
        graph, alg = self.graph, self.algorithm
        v = graph.num_vertices
        stats = SimStats(config_name=self.config.name, algorithm=alg.name,
                         graph_name=graph.name,
                         frequency_ghz=self.config.frequency_ghz())
        stats.slices = len(self.slices)
        if v == 0:
            return SimResult(stats, np.empty(0, dtype=np.float64))

        prop = alg.init_prop(graph, source)
        active = alg.initial_active(graph, source)
        if max_iterations is None:
            max_iterations = (alg.default_iterations if alg.all_active else v + 1)
        identity = alg.identity()
        m = self.config.back_channels
        loads = [slice_load_cycles(s.num_edges, self.offchip_bytes_per_cycle)
                 for s in self.slices]

        iteration = 0
        while active.size and iteration < max_iterations:
            sprop_all = alg.scatter_value(prop, self.out_degree)
            tprop_list = [identity] * v
            # scatter once per slice; measure per-slice compute cycles
            compute_cycles = []
            for sim in self.slice_sims:
                before = stats.scatter_cycles
                sim._scatter(active, sprop_all, tprop_list, stats)
                compute_cycles.append(stats.scatter_cycles - before)
            stats.slice_load_cycles += _exposed_load_cycles(loads, compute_cycles)

            tprop = np.asarray(tprop_list, dtype=np.float64)
            new_prop = alg.apply(prop, tprop, graph)
            changed = alg.activation_mask(prop, new_prop)
            stats.apply_cycles += -(-v // m) + APPLY_PIPELINE_LATENCY
            stats.iterations += 1
            stats.active_vertices_total += int(active.size)
            prop = new_prop
            active = np.nonzero(changed)[0].astype(np.int64)
            iteration += 1

        return SimResult(stats, prop)


def _exposed_load_cycles(loads: list[int], computes: list[int]) -> int:
    """Slice-replacement time not hidden by double buffering.

    The first slice's load is always exposed; afterwards slice ``i+1``
    streams in while slice ``i`` computes, so only
    ``max(0, load - compute)`` leaks into the critical path.
    """
    if not loads:
        return 0
    exposed = loads[0]
    for nxt_load, cur_compute in zip(loads[1:], computes[:-1]):
        exposed += max(0, nxt_load - cur_compute)
    return exposed
