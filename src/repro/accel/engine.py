"""Scatter-phase simulation engines — the ``SimEngine`` seam.

Every figure, sweep and report bottoms out in the scatter-phase cycle
loop, so it exists in two interchangeable implementations:

* ``reference`` — the original cycle-by-cycle loop driving the
  component models in :mod:`repro.accel.frontend`,
  :mod:`repro.accel.edge_access` and :mod:`repro.accel.backend`.  It is
  the golden engine: deliberately literal, one method call per
  component per cycle, and the only engine the pipeline tracer can
  sample.
* ``batched`` — a specialized re-implementation of the same cycle
  semantics built for wall-clock speed:

  - per-iteration setup (active-part distribution, scatter-value
    extraction) is vectorized with numpy;
  - queue banks carry occupancy counts so idle subsystems cost one
    integer check per cycle instead of a full scan;
  - routing digits are precomputed into flat ``table[stage][pos][dest]``
    arrays, and records travel as flat tuples with the vertex-combining
    merge inlined, replacing the reference's per-hop divmod + nested
    tuple churn;
  - the per-edge ``Process_Edge`` and per-record ``Reduce`` kernels are
    resolved to C builtins (or hoisted out of the edge loop entirely)
    when the algorithm declares a closed form — bit-identical,
    including tie resolution (``Algorithm.reduce_op`` /
    ``Algorithm.process_op``);
  - an **event-driven no-backpressure window** is proven per cycle and
    per network with one compare: with at most ``fifo_depth - radix``
    records in flight, no FIFO can be over the block line, so no
    stall, park or rejected offer is possible and the networks run
    probe-free variants of ``advance``/``offer`` inside the window;
  - provably contention-free multi-cycle regions are fast-forwarded in
    bulk: once the front end has retired every vertex and the ePE
    queues are empty, the records still in flight can only march down
    the propagation network — a lone record warps straight to the final
    stage, and a final-stage-only population drains in closed form
    (``cycles = max queue length``), advancing the cycle/starvation
    counters without ticking;
  - for all-active algorithms, **whole scatter phases become structural
    windows**: control flow never reads a property value, so a phase
    whose ActiveVertex list and arbiter state match a recorded one is
    replayed in closed form — counters advance by the recorded deltas
    and only the float value plane re-executes (vectorized leaves plus
    the recorded combining/delivery log; see
    :mod:`repro.accel.phase_memo`).  :data:`FFWD_TELEMETRY` counts the
    windows, fast-forwarded cycles and replayed events for the perf
    probe.

**Equivalence contract**: both engines must produce *identical*
:class:`~repro.accel.stats.SimStats` — every counter, not just totals —
and identical result properties for every configuration, graph and
algorithm.  The differential test suite
(``tests/test_engine_differential.py``) enforces this over the tier-1
config x graph x algorithm matrix plus randomized rmat/ER/star/grid
graphs.  Because the engines are equivalent, they share result-cache
entries: :func:`engine_cache_token` returns the *equivalence class*
both engines belong to, and that token — not the engine name — enters
:meth:`repro.sweep.jobs.SweepJob.cache_key`.  If the batched engine is
ever changed in a way that has not been re-verified, bump
``_EQUIVALENCE_CLASS`` so its results stop aliasing reference ones.
"""

from __future__ import annotations

import os
from collections import deque

from repro.accel.backend import make_propagation, make_vertex_combiner
from repro.accel.edge_access import _compatible_radix, make_edge_stage
from repro.accel.frontend import make_frontend
from repro.accel.phase_memo import PhaseMemo, PhaseProgram, PhaseRecorder
from repro.errors import ConfigError, SimulationError
from repro.hw.fifo import Fifo
from repro.mdp.generator import generate_network
from repro.mdp.replay import split_request

#: Engine registry, in documentation order.
ENGINES = ("reference", "batched")

#: Engine used when neither the caller nor the environment picks one.
DEFAULT_ENGINE = "batched"

#: Environment override honoured by :func:`resolve_engine` (and hence by
#: the CLI, the benchmark suite and every sweep worker).
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Cache-sharing version: engines carrying the same class string have
#: been verified cycle-exact against each other, so their results may
#: share cache entries.  Bump on any batched-engine change that has not
#: yet been re-verified by the differential suite.
_EQUIVALENCE_CLASS = "cycle-exact-v1"

#: Process-wide event-driven fast-forward telemetry (diagnostics only —
#: never part of :class:`~repro.accel.stats.SimStats`).  ``windows`` /
#: ``cycles_fast_forwarded`` / ``events`` count whole-phase structural
#: windows replayed in closed form and the value-plane ops that replaced
#: them; ``cycles_simulated`` counts cycles actually marched.  The perf
#: probe resets and snapshots this around a run (see
#: :func:`reset_ffwd_telemetry`).  Being module-level, it aggregates
#: across every engine in *this* process and sees nothing from sweep
#: worker processes — callers that need attribution must read the
#: per-engine ``ffwd_windows``/``ffwd_cycles``/``ffwd_events`` counters
#: instead (the perf probe runs its jobs serially in-process precisely
#: so this snapshot is exact; simulation results are never affected).
FFWD_TELEMETRY = {"windows": 0, "cycles_fast_forwarded": 0,
                  "cycles_simulated": 0, "events": 0}


def reset_ffwd_telemetry() -> dict:
    """Zero the fast-forward telemetry and return the live dict."""
    for key in FFWD_TELEMETRY:
        FFWD_TELEMETRY[key] = 0
    return FFWD_TELEMETRY

_ENGINE_EQUIVALENCE = {
    "reference": _EQUIVALENCE_CLASS,
    "batched": _EQUIVALENCE_CLASS,
}


def resolve_engine(name: str | None = None) -> str:
    """Normalize an engine request: explicit name > $REPRO_ENGINE > default."""
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    key = str(name).strip().lower()
    if key not in ENGINES:
        raise ConfigError(
            f"unknown engine {name!r}; expected one of {ENGINES} "
            f"(or unset, which means ${ENGINE_ENV_VAR} then {DEFAULT_ENGINE!r})")
    return key


def engine_cache_token(name: str | None = None) -> str:
    """Cache-key contribution of an engine choice.

    Verified-equivalent engines map to the same token, so a sweep run
    with either engine warms the cache for both.
    """
    return _ENGINE_EQUIVALENCE[resolve_engine(name)]


def make_engine(name: str, sim):
    """Build the scatter engine ``name`` bound to one simulator."""
    if name == "reference":
        return ReferenceEngine(sim)
    return BatchedEngine(sim)


# ======================================================================
# Reference engine (golden)
# ======================================================================

class ReferenceEngine:
    """The original component-model cycle loop (golden engine).

    Owns nothing itself: it instantiates the conflict-site components on
    the simulator (``sim.frontend`` / ``sim.edge_stage`` /
    ``sim.propagation`` / the shared queues), where the pipeline tracer
    expects to find them.
    """

    name = "reference"

    def __init__(self, sim) -> None:
        self.sim = sim
        config = sim.config
        n, m = config.front_channels, config.back_channels
        sim.frontend = make_frontend(config, sim.graph.offsets)
        sim.edge_stage = make_edge_stage(config, sim._dst, sim._weights)
        combine_fn = (make_vertex_combiner(sim.algorithm.reduce)
                      if config.vertex_combining else None)
        sim.propagation = make_propagation(config, combine_fn)
        sim.active_parts = [deque() for _ in range(n)]
        sim.fe_out = [Fifo(config.fe_out_depth) for _ in range(n)]
        sim.epe_in = [deque() for _ in range(m)]

    # ------------------------------------------------------------------
    def scatter(self, active, sprop_all, tprop: list, stats) -> None:
        """Simulate one scatter phase cycle by cycle."""
        sim = self.sim
        cfg = sim.config
        n, m = cfg.front_channels, cfg.back_channels
        parts, fe_out, epe_in = sim.active_parts, sim.fe_out, sim.epe_in
        frontend, edge_stage, propagation = (sim.frontend, sim.edge_stage,
                                             sim.propagation)
        reduce_fn = sim.algorithm.reduce
        process_fn = sim.algorithm.process_edge

        sprops = sprop_all[active].tolist()
        actives = active.tolist()
        for i, (u, sp) in enumerate(zip(actives, sprops)):
            parts[i % n].append((u, sp))

        expected = int(sim.out_degree[active].sum())
        fe_pending = len(actives)
        reduces = 0
        cycles = 0
        starved = 0
        limit = 4 * expected + 8 * fe_pending + 10_000

        while fe_pending > 0 or reduces < expected:
            cycles += 1
            if cycles > limit:
                raise SimulationError(
                    f"scatter did not converge within {limit} cycles "
                    f"({reduces}/{expected} reduces, {fe_pending} vertices "
                    f"pending) — queue sizing bug?")
            # 1. propagation delivers; vPEs reduce into tProperty banks.
            #    A record is (v, imm, count): `count` edges may have been
            #    coalesced into it on the way here.
            delivered = propagation.tick_deliver()
            for _, (dv, imm, cnt) in delivered:
                tprop[dv] = reduce_fn(tprop[dv], imm)
                reduces += cnt
            got = len(delivered)
            starved += m - got
            stats.vpe_busy_cycles += got
            # 2. ePEs: Process_Edge, one record per channel per cycle
            for k in range(m):
                q = epe_in[k]
                if q:
                    dstv, w, sp = q[0]
                    if propagation.offer(k, dstv % m,
                                         (dstv, process_fn(sp, w), 1)):
                        q.popleft()
            # 3. Edge Array access (site ②)
            edge_stage.tick(fe_out, epe_in)
            # 4. Offset Array access + ActiveVertex fetch (site ①)
            fe_pending -= frontend.tick(parts, fe_out)
            if sim.tracer is not None:
                sim.tracer.sample(sim, cycles, got)

        stats.scatter_cycles += cycles
        stats.vpe_starvation_cycles += starved
        stats.edges_processed += reduces

    # ------------------------------------------------------------------
    def harvest(self, stats) -> None:
        sim = self.sim
        stats.offset_deferrals = sim.frontend.deferrals
        stats.edge_conflicts = sim.edge_stage.conflicts
        stats.propagation_conflicts = sim.propagation.conflicts


# ======================================================================
# Batched engine internals
# ======================================================================
#
# Shared conventions:
#
# * queue banks are lists of deques with an occupancy *count* per stage
#   (or per bank group), so an idle subsystem costs one integer check
#   per cycle; occupied banks are scanned in ascending position order —
#   the same order as the reference's `range()` loops, which is what
#   keeps arbitration, stall and combining decisions cycle-exact;
# * routing is precomputed into `table[stage][pos][dest] -> target`;
# * records are flat tuples: propagation `(dest, v, imm, count)`,
#   frontend routing `(dest, u, sprop)`, edge pieces `(off, len, sprop)`;
# * only counters that feed SimStats are maintained.


def _routing_tables(plan) -> list[list[list[int]]]:
    """``table[stage][pos][dest] -> target position`` for one plan."""
    tables = []
    radix = plan.radix
    channels = plan.channels
    for stage in plan.stages:
        divisor = radix ** stage.digit_index
        per_pos: list = [None] * channels
        for module in stage.modules:
            ports = module.channels
            targets = [ports[(dest // divisor) % radix]
                       for dest in range(channels)]
            for p in ports:
                per_pos[p] = targets
        tables.append(per_pos)
    return tables


class _FastMdpNet:
    """MDP network with occupancy bitmasks — cf. ``MdpNetworkSim``.

    Items are flat tuples whose first element is the destination.  With
    ``combining`` enabled (propagation site), items are
    ``(dest, v, imm, count)`` and a mover whose vertex matches the
    target FIFO's tail merges via ``reduce_fn`` — the inlined
    equivalent of :func:`repro.accel.backend.make_vertex_combiner`.

    The event-driven fast path is picked per cycle by a one-compare
    window proof: with ``count <= block_len`` records in flight no FIFO
    can be over the block line (a FIFO's length is bounded by the
    total), so neither a stall nor a rejected offer is possible and
    ``advance`` runs a probe-free no-backpressure variant.
    """

    __slots__ = ("channels", "radix", "depth", "num_stages", "queues",
                 "counts", "count", "table", "stall_events",
                 "rejected_offers", "combining", "reduce_fn",
                 "block_len")

    def __init__(self, channels: int, radix: int, fifo_depth: int,
                 combining: bool = False, reduce_fn=None) -> None:
        if fifo_depth < radix:
            raise ConfigError(
                f"fifo_depth {fifo_depth} must be >= radix {radix} "
                "(nW1R FIFO never ready otherwise)")
        plan = generate_network(channels, radix)
        self.channels = plan.channels
        self.radix = plan.radix
        self.depth = fifo_depth
        self.num_stages = plan.num_stages
        self.queues = [[deque() for _ in range(self.channels)]
                       for _ in range(self.num_stages)]
        self.counts = [0] * self.num_stages
        self.count = 0
        self.table = _routing_tables(plan)
        self.stall_events = 0
        self.rejected_offers = 0
        self.combining = combining
        self.reduce_fn = reduce_fn
        #: a FIFO longer than this cannot accept a full radix burst
        self.block_len = fifo_depth - radix

    # ------------------------------------------------------------------
    def offer(self, channel: int, item) -> bool:
        """Inject ``item`` (``item[0]`` is the destination) at stage 0."""
        tq = self.queues[0][self.table[0][channel][item[0]]]
        if tq:
            if self.combining and tq[-1][1] == item[1]:
                tail = tq[-1]
                tq[-1] = (tail[0], tail[1],
                          self.reduce_fn(tail[2], item[2]), tail[3] + item[3])
                return True
            if len(tq) > self.block_len:
                self.rejected_offers += 1
                return False
        tq.append(item)
        self.counts[0] += 1
        self.count += 1
        return True

    def advance(self) -> None:
        """Move heads one stage forward, last stage first.

        With ``count <= block_len`` records in flight no FIFO can be
        over the block line (a FIFO's length is bounded by the total),
        so no stall, park or threshold crossing is possible and the
        no-backpressure variant below runs probe-free.
        """
        if self.count <= self.block_len:
            self._advance_nobackpressure()
        else:
            self._advance_checked()

    def _advance_nobackpressure(self) -> None:
        counts = self.counts
        queues = self.queues
        table = self.table
        combining = self.combining
        reduce_fn = self.reduce_fn
        combined = 0
        for s in range(self.num_stages - 1, 0, -1):
            total = counts[s - 1]
            if not total:
                continue
            cur = queues[s]
            tbl = table[s]
            popped = 0
            moved = 0
            seen = 0
            for p, queue in enumerate(queues[s - 1]):
                if not queue:
                    continue
                seen += 1
                item = queue[0]
                tq = cur[tbl[p][item[0]]]
                if tq and combining and tq[-1][1] == item[1]:
                    tail = tq[-1]
                    tq[-1] = (tail[0], tail[1],
                              reduce_fn(tail[2], item[2]),
                              tail[3] + item[3])
                    queue.popleft()
                    combined += 1
                else:
                    tq.append(queue.popleft())
                    moved += 1
                popped += 1
                if seen == total:
                    break
            counts[s - 1] -= popped
            counts[s] += moved
        if combined:
            self.count -= combined

    def _advance_checked(self) -> None:
        counts = self.counts
        queues = self.queues
        table = self.table
        block_len = self.block_len
        combining = self.combining
        reduce_fn = self.reduce_fn
        combined = 0
        stalled = 0
        for s in range(self.num_stages - 1, 0, -1):
            total = counts[s - 1]
            if not total:
                continue
            cur = queues[s]
            tbl = table[s]
            cprev = total
            moved = 0
            seen = 0
            for p, queue in enumerate(queues[s - 1]):
                if not queue:
                    continue
                seen += 1
                item = queue[0]
                tq = cur[tbl[p][item[0]]]
                if tq:
                    if combining and tq[-1][1] == item[1]:
                        tail = tq[-1]
                        tq[-1] = (tail[0], tail[1],
                                  reduce_fn(tail[2], item[2]),
                                  tail[3] + item[3])
                        queue.popleft()
                        cprev -= 1
                        combined += 1
                        if seen == total:
                            break
                        continue
                    if len(tq) > block_len:
                        stalled += 1
                        if seen == total:
                            break
                        continue
                tq.append(queue.popleft())
                cprev -= 1
                moved += 1
                # every occupied position holds >= 1 item, so once `seen`
                # equals the stage's item count the rest must be empty
                if seen == total:
                    break
            counts[s - 1] = cprev
            counts[s] += moved
        if combined:
            self.count -= combined
        if stalled:
            self.stall_events += stalled

    def deliver_reduce(self, tprop: list) -> tuple[int, int]:
        """Pop one record per occupied final-stage FIFO straight into the
        vPEs' Reduce; returns ``(records, edges)`` delivered."""
        last = self.num_stages - 1
        total = self.counts[last]
        if not total:
            return 0, 0
        reduce_fn = self.reduce_fn
        got = 0
        reduces = 0
        for queue in self.queues[last]:
            if queue:
                _, dv, imm, cnt = queue.popleft()
                tprop[dv] = reduce_fn(tprop[dv], imm)
                reduces += cnt
                got += 1
                if got == total:
                    break
        self.counts[last] -= got
        self.count -= got
        return got, reduces

    def deliver_into(self, sinks: list, sink_depth: int) -> int:
        """Pop one item per occupied final-stage FIFO into per-position
        ``sinks`` honouring ``sink_depth``; returns items popped."""
        last = self.num_stages - 1
        total = self.counts[last]
        if not total:
            return 0
        popped = 0
        seen = 0
        for p, queue in enumerate(self.queues[last]):
            if queue:
                seen += 1
                sink = sinks[p]
                if len(sink) < sink_depth:
                    sink.append(queue.popleft())
                    popped += 1
                if seen == total:
                    break
        self.counts[last] -= popped
        self.count -= popped
        return popped

    # -- fast-forward helpers ------------------------------------------
    def warp_single(self) -> int:
        """Advance the lone in-flight record straight to the final stage.

        With one record in flight nothing can stall or combine, so ``k``
        advances just move it ``k`` stages along its deterministic
        route.  Returns the cycles skipped (0 if already there).
        """
        last = self.num_stages - 1
        for s, c in enumerate(self.counts):
            if c:
                break
        if s == last:
            return 0
        queues = self.queues[s]
        for p in range(self.channels):
            if queues[p]:
                item = queues[p].popleft()
                break
        self.counts[s] = 0
        self.queues[last][item[0]].append(item)
        self.counts[last] = 1
        return last - s

    def drain_reduce(self, tprop: list) -> tuple[int, int, int]:
        """Run the network to empty with sinks always ready and no new
        offers; returns ``(cycles, records, edges)`` delivered.

        Equivalent to ticking deliver+advance until drained: no stall or
        combining decision differs because nothing is injected.  Two
        bulk shortcuts apply — a lone record warps stage-to-stage in one
        step, and a final-stage-only population drains in closed form
        (per-FIFO pops preserve same-vertex Reduce order; records in
        different FIFOs touch different tProperty entries).
        """
        cycles = 0
        got_total = 0
        reduces = 0
        last = self.num_stages - 1
        while self.count:
            if self.counts[last] == self.count:
                reduce_fn = self.reduce_fn
                longest = 0
                for queue in self.queues[last]:
                    if queue:
                        length = len(queue)
                        if length > longest:
                            longest = length
                        while queue:
                            _, dv, imm, cnt = queue.popleft()
                            tprop[dv] = reduce_fn(tprop[dv], imm)
                            reduces += cnt
                got_total += self.count
                cycles += longest
                self.counts[last] = 0
                self.count = 0
                break
            if self.count == 1:
                cycles += self.warp_single()
                continue
            got, red = self.deliver_reduce(tprop)
            self.advance()
            cycles += 1
            got_total += got
            reduces += red
        return cycles, got_total, reduces


class _FastXbar:
    """Arbitrated crossbar with occupancy counts — cf. ArbitratedCrossbar.

    Items are flat tuples whose first element is the destination; with
    ``combining`` (propagation site) they are ``(dest, v, imm, count)``
    and merge with an input FIFO's tail when the vertex matches.
    """

    __slots__ = ("num_inputs", "num_outputs", "depth", "inputs", "count",
                 "rr", "conflicts", "combining", "reduce_fn")

    def __init__(self, num_inputs: int, num_outputs: int, fifo_depth: int,
                 combining: bool = False, reduce_fn=None) -> None:
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.depth = fifo_depth
        self.inputs = [deque() for _ in range(num_inputs)]
        self.count = 0
        self.rr = [0] * num_outputs
        self.conflicts = 0
        self.combining = combining
        self.reduce_fn = reduce_fn

    def offer(self, i: int, item) -> bool:
        fifo = self.inputs[i]
        if fifo:
            if self.combining and fifo[-1][1] == item[1]:
                tail = fifo[-1]
                fifo[-1] = (tail[0], tail[1],
                            self.reduce_fn(tail[2], item[2]),
                            tail[3] + item[3])
                return True
            if len(fifo) >= self.depth:
                return False
        fifo.append(item)
        self.count += 1
        return True

    def tick_unit(self) -> list:
        """One arbitration cycle with every output accepting one item.

        Single pass over the occupied inputs: the round-robin winner per
        destination is tracked incrementally (the requester closest
        after the rotating pointer wins, exactly as sorting all
        requesters by ``(i - ptr) % n`` and taking the first would).
        """
        total = self.count
        if not total:
            return ()
        inputs = self.inputs
        num = self.num_inputs
        rr = self.rr
        winner: dict[int, int] = {}
        conflicts = 0
        seen = 0
        for i, fifo in enumerate(inputs):
            if not fifo:
                continue
            seen += 1
            dest = fifo[0][0]
            w = winner.get(dest)
            if w is None:
                winner[dest] = i
            else:
                conflicts += 1
                ptr = rr[dest]
                if (i - ptr) % num < (w - ptr) % num:
                    winner[dest] = i
            if seen == total:
                break
        self.conflicts += conflicts
        out: list = []
        for dest, i in winner.items():
            q = inputs[i]
            out.append(q.popleft())
            rr[dest] = (i + 1) % num
        self.count -= len(out)
        return out

    def tick_budget(self, budget: list[int]) -> list:
        """One arbitration cycle with a per-output acceptance budget."""
        total = self.count
        if not total:
            return ()
        inputs = self.inputs
        num = self.num_inputs
        rr = self.rr
        winner: dict[int, int] = {}
        conflicts = 0
        seen = 0
        for i, fifo in enumerate(inputs):
            if not fifo:
                continue
            seen += 1
            dest = fifo[0][0]
            if budget[dest] <= 0:
                conflicts += 1      # every requester of a full output loses
            else:
                w = winner.get(dest)
                if w is None:
                    winner[dest] = i
                else:
                    conflicts += 1
                    ptr = rr[dest]
                    if (i - ptr) % num < (w - ptr) % num:
                        winner[dest] = i
            if seen == total:
                break
        self.conflicts += conflicts
        out: list = []
        for dest, i in winner.items():
            q = inputs[i]
            out.append(q.popleft())
            rr[dest] = (i + 1) % num
        self.count -= len(out)
        return out


class _FastRangeNet:
    """Range-splitting network with counts — cf. RangeSplitNetwork.

    The same one-compare no-backpressure window proof as in
    :class:`_FastMdpNet` selects a probe-free ``advance`` / ``offer``
    variant whenever the total in-flight count fits under the block
    line (no combining exists at this site, so the light path is a
    pure move/split engine).
    """

    __slots__ = ("banks", "num_dispatchers", "group_width", "radix",
                 "depth", "num_stages", "queues", "counts", "count",
                 "stage_block", "stage_ports", "stall_events",
                 "rejected_offers", "block_len")

    def __init__(self, banks: int, num_dispatchers: int, radix: int,
                 fifo_depth: int) -> None:
        plan = generate_network(num_dispatchers, radix)
        self.banks = banks
        self.num_dispatchers = num_dispatchers
        self.group_width = banks // num_dispatchers
        self.radix = radix
        self.depth = fifo_depth
        self.num_stages = plan.num_stages
        self.queues = [[deque() for _ in range(num_dispatchers)]
                       for _ in range(self.num_stages)]
        self.counts = [0] * self.num_stages
        self.count = 0
        self.stage_block: list[int] = []
        self.stage_ports: list[list[tuple[int, ...]]] = []
        for stage in plan.stages:
            self.stage_block.append(self.group_width * radix ** stage.digit_index)
            ports: list = [None] * num_dispatchers
            for module in stage.modules:
                for p in module.channels:
                    ports[p] = module.channels
            self.stage_ports.append(ports)
        self.stall_events = 0
        self.rejected_offers = 0
        self.block_len = fifo_depth - radix

    # ------------------------------------------------------------------
    def _try_insert(self, stage: int, entry_pos: int, off: int, length: int,
                    payload) -> bool:
        block = self.stage_block[stage]
        ports = self.stage_ports[stage][entry_pos]
        radix = self.radix
        block_len = self.block_len
        queues = self.queues[stage]
        # split at block-aligned bank boundaries (cf. split_by_blocks)
        start_bank = off % self.banks
        rel = start_bank % block
        if rel + length <= block:       # common case: the piece fits one block
            q = queues[ports[(start_bank // block) % radix]]
            if len(q) > block_len:
                return False
            q.append((off, length, payload))
            self.counts[stage] += 1
            self.count += 1
            return True
        targets: list[tuple[int, int, int]] = []
        while length > 0:
            room = block - (start_bank % block)
            take = length if length < room else room
            t = ports[(start_bank // block) % radix]
            if len(queues[t]) > block_len:
                return False        # bail before building the whole split
            targets.append((t, off, take))
            off += take
            start_bank += take
            length -= take
        for t, s_off, s_len in targets:
            queues[t].append((s_off, s_len, payload))
        added = len(targets)
        self.counts[stage] += added
        self.count += added
        return True

    def _insert_light(self, stage: int, entry_pos: int, off: int,
                      length: int, payload) -> None:
        """``_try_insert`` when no FIFO can be full (count under line)."""
        block = self.stage_block[stage]
        ports = self.stage_ports[stage][entry_pos]
        radix = self.radix
        queues = self.queues[stage]
        start_bank = off % self.banks
        rel = start_bank % block
        if rel + length <= block:
            queues[ports[(start_bank // block) % radix]].append(
                (off, length, payload))
            self.counts[stage] += 1
            self.count += 1
            return
        added = 0
        while length > 0:
            room = block - (start_bank % block)
            take = length if length < room else room
            queues[ports[(start_bank // block) % radix]].append(
                (off, take, payload))
            off += take
            start_bank += take
            length -= take
            added += 1
        self.counts[stage] += added
        self.count += added

    def offer(self, channel: int, off: int, length: int, payload) -> bool:
        if self.count <= self.block_len:
            self._insert_light(0, channel, off, length, payload)
            return True
        if self._try_insert(0, channel, off, length, payload):
            return True
        self.rejected_offers += 1
        return False

    def advance(self) -> None:
        if self.count <= self.block_len:
            self._advance_nobackpressure()
        else:
            self._advance_checked()

    def _advance_nobackpressure(self) -> None:
        counts = self.counts
        queues = self.queues
        banks = self.banks
        radix = self.radix
        for s in range(self.num_stages - 1, 0, -1):
            total = counts[s - 1]
            if not total:
                continue
            cur = queues[s]
            block = self.stage_block[s]
            ports = self.stage_ports[s]
            seen = 0
            moved = 0
            for p, queue in enumerate(queues[s - 1]):
                if not queue:
                    continue
                seen += 1
                item = queue[0]
                start_bank = item[0] % banks
                rel = start_bank % block
                if rel + item[1] <= block:      # fits one block: plain move
                    cur[ports[p][(start_bank // block) % radix]].append(
                        queue.popleft())
                    moved += 1
                else:
                    self._insert_light(s, p, item[0], item[1], item[2])
                    queue.popleft()
                    counts[s - 1] -= 1
                    self.count -= 1
                if seen == total:
                    break
            if moved:
                counts[s - 1] -= moved
                counts[s] += moved

    def _advance_checked(self) -> None:
        counts = self.counts
        queues = self.queues
        banks = self.banks
        radix = self.radix
        block_len = self.block_len
        for s in range(self.num_stages - 1, 0, -1):
            total = counts[s - 1]
            if not total:
                continue
            cur = queues[s]
            block = self.stage_block[s]
            ports = self.stage_ports[s]
            seen = 0
            moved = 0
            stalled = 0
            for p, queue in enumerate(queues[s - 1]):
                if not queue:
                    continue
                seen += 1
                item = queue[0]
                start_bank = item[0] % banks
                rel = start_bank % block
                if rel + item[1] <= block:      # fits one block: plain move
                    tq = cur[ports[p][(start_bank // block) % radix]]
                    if len(tq) > block_len:
                        stalled += 1
                    else:
                        tq.append(queue.popleft())
                        moved += 1
                elif self._try_insert(s, p, item[0], item[1], item[2]):
                    queue.popleft()
                    counts[s - 1] -= 1
                    self.count -= 1
                else:
                    stalled += 1
                if seen == total:
                    break
            if moved:
                counts[s - 1] -= moved
                counts[s] += moved
            if stalled:
                self.stall_events += stalled


# ======================================================================
# Batched propagation sites
# ======================================================================

class _BatchedMdpPropagation:
    """Site ③, MDP-network — batched counterpart of MdpPropagation."""

    kind = "mdp"

    def __init__(self, config, reduce_fn) -> None:
        self.m = config.back_channels
        self.net = _FastMdpNet(self.m, config.radix, config.fifo_depth,
                               combining=config.vertex_combining,
                               reduce_fn=reduce_fn)

    @property
    def count(self) -> int:
        return self.net.count

    def deliver_reduce(self, tprop: list) -> tuple[int, int]:
        net = self.net
        got = net.deliver_reduce(tprop)
        if net.count:
            net.advance()
        return got

    def offer(self, channel: int, item) -> bool:
        return self.net.offer(channel, item)

    def drain_reduce(self, tprop: list) -> tuple[int, int, int]:
        return self.net.drain_reduce(tprop)

    @property
    def conflicts(self) -> int:
        return self.net.stall_events + self.net.rejected_offers


class _BatchedXbarPropagation:
    """Site ③, arbitrated crossbar — batched CrossbarPropagation."""

    kind = "xbar"

    def __init__(self, config, reduce_fn) -> None:
        self.m = config.back_channels
        self.reduce_fn = reduce_fn
        self.xbar = _FastXbar(self.m, self.m, config.fifo_depth,
                              combining=config.vertex_combining,
                              reduce_fn=reduce_fn)

    @property
    def count(self) -> int:
        return self.xbar.count

    def deliver_reduce(self, tprop: list) -> tuple[int, int]:
        delivered = self.xbar.tick_unit()
        if not delivered:
            return 0, 0
        reduce_fn = self.reduce_fn
        reduces = 0
        for _, dv, imm, cnt in delivered:
            tprop[dv] = reduce_fn(tprop[dv], imm)
            reduces += cnt
        return len(delivered), reduces

    def offer(self, channel: int, item) -> bool:
        return self.xbar.offer(channel, item)

    def drain_reduce(self, tprop: list) -> tuple[int, int, int]:
        """Tick to empty (no new offers; per-dest arbitration still runs)."""
        cycles = 0
        got_total = 0
        reduces = 0
        while self.xbar.count:
            got, red = self.deliver_reduce(tprop)
            cycles += 1
            got_total += got
            reduces += red
        return cycles, got_total, reduces

    @property
    def conflicts(self) -> int:
        return self.xbar.conflicts


# ======================================================================
# Batched engine
# ======================================================================

class BatchedEngine:
    """Cycle-exact batched scatter engine (see module docstring).

    The orchestration per cycle is identical to the reference loop —
    propagation deliver, ePE offers, edge-stage tick, frontend tick —
    with occupancy counts gating each step and bulk fast-forwards for
    the contention-free drain regions.
    """

    name = "batched"

    def __init__(self, sim) -> None:
        config = sim.config
        self.config = config
        self.n = config.front_channels
        self.m = config.back_channels
        alg = sim.algorithm
        self.reduce_fn = alg.scalar_reduce_fn()
        self.process_fn = alg.process_edge
        #: per-edge kernel shape: 0 identity, 1 weight-independent
        #: (hoistable per request), 2 ``payload + w``, 3 ``min``, 4 call
        if alg.process_is_identity:
            self._proc = 0
        elif not alg.uses_weights:
            self._proc = 1
        elif alg.process_op == "add":
            self._proc = 2
        elif alg.process_op == "min":
            self._proc = 3
        else:
            self._proc = 4
        self.out_degree = sim.out_degree
        self.dst = sim._dst
        self.weights = sim._weights
        n, m = self.n, self.m
        # per-edge destination channel (dst % m), hoisted out of the
        # dispatcher hot loop; one vectorized pass per engine, reused
        # every iteration
        self.dst_mod = (sim.graph.dst % m).tolist()

        if config.propagation_site == "mdp":
            self.prop = _BatchedMdpPropagation(config, self.reduce_fn)
        else:
            self.prop = _BatchedXbarPropagation(config, self.reduce_fn)

        # ActiveVertex parts: per-channel flat rings (lists + head index),
        # rebuilt from numpy slices at the top of every scatter phase.
        # `parts_alive` lists the channels still holding vertices, in
        # ascending order (offer order must match the reference scan).
        self.parts_u: list[list] = [[] for _ in range(n)]
        self.parts_sp: list[list] = [[] for _ in range(n)]
        self.parts_head = [0] * n
        self.parts_alive: list[int] = []

        self.fe_out = [deque() for _ in range(n)]   # (off, len, sprop)
        self.fe_count = 0
        self.fe_depth = config.fe_out_depth
        self.epe_q = [deque() for _ in range(m)]    # (dst % m, dst, imm, 1)
        self.epe_count = 0
        self.epe_depth = config.epe_queue_depth
        #: event-driven fast-forward telemetry (not part of SimStats)
        self.ffwd_windows = 0
        self.ffwd_cycles = 0
        self.ffwd_events = 0
        #: whole-phase structural windows (see repro.accel.phase_memo):
        #: only all-active algorithms re-present identical frontiers
        self.phase_memo = PhaseMemo() if alg.all_active else None
        self.algorithm = alg
        self._true_reduce = self.reduce_fn
        self._rec_news: list | None = None
        self._offsets_np = sim.graph.offsets
        self._dst_np = sim.graph.dst
        self._weights_np = sim.graph.weights
        self.num_vertices = sim.graph.num_vertices

        # -- frontend (site ①) -----------------------------------------
        self.offsets = sim.graph.offsets.tolist()
        self.issue_q = [deque() for _ in range(n)]  # (u % n, u, sprop)
        self.issue_count = 0
        self.issue_depth = config.issue_queue_depth
        self.deferrals = 0
        if config.offset_site == "mdp":
            self.fnet = _FastMdpNet(n, config.radix, config.fifo_depth)
            self.parity = 0
            self._frontend_tick = self._frontend_tick_mdp
        else:
            self.fxbar = _FastXbar(n, n, config.fifo_depth)
            self.fstart = 0
            self._frontend_tick = self._frontend_tick_xbar

        # -- edge stage (site ②) ---------------------------------------
        self.edge_is_mdp = config.edge_site == "mdp"
        if self.edge_is_mdp:
            w = config.num_dispatchers
            self.w = w
            self.disp_q = [deque() for _ in range(w)]   # (off, len, sprop)
            self.disp_count = 0
            self.disp_depth = config.dispatcher_queue_depth
            self.disp_blocked = 0
            #: per-dispatcher memo of the full ePE bank that blocked the
            #: head last cycle (-1: none).  Banks are private to one
            #: dispatcher and the head cannot change while blocked, so
            #: a still-full memoized bank proves the head stays blocked
            #: without rescanning its whole bank window.
            self.disp_stall = [-1] * w
            net_radix = _compatible_radix(w, config.radix)
            self.rnet = (_FastRangeNet(m, w, net_radix, config.fifo_depth)
                         if net_radix is not None else None)
            self.replay_depth = config.replay_queue_depth
            self.rp_pending = [deque() for _ in range(n)]  # (off, len, sprop)
            self.rp_pieces = [deque() for _ in range(n)]
            self.rp_busy_total = 0
            self._position_of = [(ch * w) // n if n <= w else ch % w
                                 for ch in range(n)]
            self._channels_at: list[list[int]] = [[] for _ in range(w)]
            for ch, pos in enumerate(self._position_of):
                self._channels_at[pos].append(ch)
            self._busy_at = [0] * w
            self.rp_rr = [0] * w
            self._edge_tick = self._edge_tick_mdp
        else:
            self.ce_queue: deque = deque()              # (off, len, sprop)
            self.ce_capacity = config.fe_out_depth * config.front_channels
            self.ce_issue_limit = config.issue_limit
            self.window_conflicts = 0
            #: (off, len, bank) of a head window blocked on a full ePE
            #: bank with nothing issued that cycle — while the head and
            #: the bank's fullness persist, the whole window pass is a
            #: provable no-op
            self.ce_stall: tuple | None = None
            self._edge_tick = self._edge_tick_central
        self._build_memo_sites()

    # ------------------------------------------------------------------
    # Whole-phase structural windows (see repro.accel.phase_memo)
    # ------------------------------------------------------------------
    def _arb_state(self) -> tuple:
        """Persistent control state a phase's cycle evolution depends on.

        Everything else (queues, parts, per-phase counters) is empty or
        fresh at phase boundaries; parked-offer masks are provably zero
        once a phase drains, but they join the key anyway so a bug here
        could only ever *miss* a window, never corrupt one.
        """
        if self.config.offset_site == "mdp":
            front: tuple = (self.parity,)
        else:
            front = (self.fstart, tuple(self.fxbar.rr))
        if self.edge_is_mdp:
            edge: tuple = (tuple(self.disp_stall), tuple(self.rp_rr))
        else:
            edge = (self.ce_stall,)
        if self.config.propagation_site == "mdp":
            prop: tuple = ()
        else:
            prop = (tuple(self.prop.xbar.rr),)
        return (front, edge, prop)

    def _restore_arb_state(self, state: tuple) -> None:
        front, edge, prop = state
        if self.config.offset_site == "mdp":
            (self.parity,) = front
        else:
            self.fstart = front[0]
            self.fxbar.rr[:] = front[1]
        if self.edge_is_mdp:
            self.disp_stall[:] = edge[0]
            self.rp_rr[:] = edge[1]
        else:
            (self.ce_stall,) = edge
        if self.config.propagation_site != "mdp":
            self.prop.xbar.rr[:] = prop[0]

    def _build_memo_sites(self) -> None:
        """Counter and Reduce locations the record/replay pass touches."""
        sites: list = [(self, "deferrals")]
        if self.config.offset_site == "mdp":
            sites += [(self.fnet, "stall_events"),
                      (self.fnet, "rejected_offers")]
        else:
            sites += [(self.fxbar, "conflicts")]
        if self.edge_is_mdp:
            sites += [(self, "disp_blocked")]
            if self.rnet is not None:
                sites += [(self.rnet, "stall_events"),
                          (self.rnet, "rejected_offers")]
        else:
            sites += [(self, "window_conflicts")]
        if self.config.propagation_site == "mdp":
            sites += [(self.prop.net, "stall_events"),
                      (self.prop.net, "rejected_offers")]
        else:
            sites += [(self.prop.xbar, "conflicts")]
        self._counter_sites = sites
        reduce_sites: list = [(self, "reduce_fn")]
        if self.config.propagation_site == "mdp":
            reduce_sites += [(self.prop.net, "reduce_fn")]
        else:
            reduce_sites += [(self.prop, "reduce_fn"),
                             (self.prop.xbar, "reduce_fn")]
        self._reduce_sites = reduce_sites

    def _replay_phase(self, prog, sprop_all, tprop: list, stats) -> None:
        """Fast-forward one proven-identical phase in closed form."""
        d = prog.stat_deltas
        stats.scatter_cycles += d["scatter_cycles"]
        stats.vpe_starvation_cycles += d["vpe_starvation_cycles"]
        stats.vpe_busy_cycles += d["vpe_busy_cycles"]
        stats.edges_processed += d["edges_processed"]
        for (obj, attr), delta in zip(self._counter_sites,
                                      prog.counter_deltas):
            if delta:
                setattr(obj, attr, getattr(obj, attr) + delta)
        self._restore_arb_state(prog.end_state)
        prog.value_pass(self.algorithm, sprop_all, self._weights_np, tprop)
        events = (len(prog.news_e) + len(prog.merge_a)
                  + len(prog.deliver_slots))
        self.ffwd_windows += 1
        self.ffwd_cycles += prog.cycles
        self.ffwd_events += events
        FFWD_TELEMETRY["windows"] += 1
        FFWD_TELEMETRY["cycles_fast_forwarded"] += prog.cycles
        FFWD_TELEMETRY["events"] += events

    def _finish_recording(self, key: tuple, prog, counters0: list,
                          cycles: int, starved: int, busy: int,
                          reduces: int, sprop_all, tprop: list) -> None:
        for obj, attr in self._reduce_sites:
            setattr(obj, attr, self._true_reduce)
        self._rec_news = None
        prog.stat_deltas = {"scatter_cycles": cycles,
                            "vpe_starvation_cycles": starved,
                            "vpe_busy_cycles": busy,
                            "edges_processed": reduces}
        prog.counter_deltas = [getattr(obj, attr) - before
                               for (obj, attr), before
                               in zip(self._counter_sites, counters0)]
        prog.end_state = self._arb_state()
        prog.cycles = cycles
        prog.finalize(self._offsets_np, self._dst_np)
        prog.value_pass(self.algorithm, sprop_all, self._weights_np, tprop)
        self.phase_memo.store(key, prog)

    # ------------------------------------------------------------------
    # Scatter phase
    # ------------------------------------------------------------------
    def scatter(self, active, sprop_all, tprop: list, stats) -> None:
        recorder = None
        memo = self.phase_memo
        if memo is not None:
            key = self._arb_state()
            prog = memo.lookup(key, active)
            if prog is not None:
                self._replay_phase(prog, sprop_all, tprop, stats)
                return
            if memo.can_record(key):
                prog = PhaseProgram(active.copy())
                recorder = PhaseRecorder(prog)
                caller_tprop = tprop
                tprop = [None] * self.num_vertices
                self._rec_news = recorder.news_e
                for obj, attr in self._reduce_sites:
                    setattr(obj, attr, recorder.reduce)
                counters0 = [getattr(obj, attr)
                             for obj, attr in self._counter_sites]
        n, m = self.n, self.m
        size = int(active.size)
        if size:
            if size < 4 * n:
                # tiny frontier: a python loop beats 2n numpy slices
                us = active.tolist()
                sps = sprop_all[active].tolist()
                pu: list[list] = [[] for _ in range(n)]
                psp: list[list] = [[] for _ in range(n)]
                for i, u in enumerate(us):
                    pu[i % n].append(u)
                    psp[i % n].append(sps[i])
            else:
                sel = sprop_all[active]
                pu = [active[ch::n].tolist() for ch in range(n)]
                psp = [sel[ch::n].tolist() for ch in range(n)]
            self.parts_u = pu
            self.parts_sp = psp
            self.parts_head = [0] * n
            self.parts_alive = [p for p in range(n) if pu[p]]

        expected = int(self.out_degree[active].sum())
        fe_pending = size
        reduces = 0
        cycles = 0
        starved = 0
        busy = 0
        limit = 4 * expected + 8 * fe_pending + 10_000

        prop = self.prop
        frontend_tick = self._frontend_tick
        edge_tick = self._edge_tick
        edge_active = self._edge_active
        deliver_reduce = prop.deliver_reduce
        epe_q = self.epe_q
        prop_is_mdp = prop.kind == "mdp"
        if prop_is_mdp:
            pnet = prop.net
            table0 = pnet.table[0]
            queues0 = pnet.queues[0]
            combining = pnet.combining
            p_block = pnet.block_len
            reduce_fn = self.reduce_fn
            pnet_deliver = pnet.deliver_reduce
            pnet_advance = pnet.advance
        else:
            xbar_offer = prop.xbar.offer

        while fe_pending > 0 or reduces < expected:
            # -- bulk fast-forward: the front end has retired everything
            #    and the edge pipeline + ePE queues are empty, so the
            #    records still in flight can only drain from the
            #    propagation site — no new offers, no contention ahead.
            if (fe_pending == 0 and not self.epe_count and prop.count
                    and not edge_active()):
                cyc, got_total, red = prop.drain_reduce(tprop)
                cycles += cyc
                if cycles > limit:
                    break               # converges to the error below
                starved += cyc * m - got_total
                busy += got_total
                reduces += red
                self._arbiter_skip(cyc)
                continue                # loop condition now decides
            cycles += 1
            if cycles > limit:
                raise SimulationError(
                    f"scatter did not converge within {limit} cycles "
                    f"({reduces}/{expected} reduces, {fe_pending} vertices "
                    f"pending) — queue sizing bug?")
            # 1. propagation delivers; vPEs reduce into tProperty banks
            if prop_is_mdp:
                got, red = pnet_deliver(tprop)
                if pnet.count:
                    pnet_advance()
            else:
                got, red = deliver_reduce(tprop)
            starved += m - got
            busy += got
            reduces += red
            # 2. ePEs: Process_Edge, one record per channel per cycle
            total = self.epe_count
            if total and prop_is_mdp:
                # inlined _FastMdpNet.offer, minus the per-record call
                consumed = 0
                added = 0
                seen = 0
                for k, q in enumerate(epe_q):
                    if q:
                        seen += 1
                        item = q[0]
                        tq = queues0[table0[k][item[0]]]
                        if tq:
                            if combining and tq[-1][1] == item[1]:
                                tail = tq[-1]
                                tq[-1] = (tail[0], tail[1],
                                          reduce_fn(tail[2], item[2]),
                                          tail[3] + item[3])
                                q.popleft()
                                consumed += 1
                            elif len(tq) > p_block:
                                pnet.rejected_offers += 1
                            else:
                                tq.append(item)
                                added += 1
                                q.popleft()
                                consumed += 1
                        else:
                            tq.append(item)
                            added += 1
                            q.popleft()
                            consumed += 1
                        if seen == total:
                            break
                self.epe_count -= consumed
                pnet.counts[0] += added
                pnet.count += added
            elif total:
                consumed = 0
                seen = 0
                for k, q in enumerate(epe_q):
                    if q:
                        seen += 1
                        if xbar_offer(k, q[0]):
                            q.popleft()
                            consumed += 1
                        if seen == total:
                            break
                self.epe_count -= consumed
            # 3. Edge Array access (site ②)
            edge_tick()
            # 4. Offset Array access + ActiveVertex fetch (site ①)
            fe_pending -= frontend_tick()
        else:
            stats.scatter_cycles += cycles
            stats.vpe_starvation_cycles += starved
            stats.vpe_busy_cycles += busy
            stats.edges_processed += reduces
            FFWD_TELEMETRY["cycles_simulated"] += cycles
            if recorder is not None:
                self._finish_recording(key, recorder.prog, counters0,
                                       cycles, starved, busy, reduces,
                                       sprop_all, caller_tprop)
            return
        raise SimulationError(
            f"scatter did not converge within {limit} cycles "
            f"({reduces}/{expected} reduces, {fe_pending} vertices "
            f"pending) — queue sizing bug?")

    # ------------------------------------------------------------------
    def harvest(self, stats) -> None:
        stats.offset_deferrals = self.deferrals
        if self.edge_is_mdp:
            stats.edge_conflicts = self.disp_blocked + (
                self.rnet.stall_events + self.rnet.rejected_offers
                if self.rnet is not None else 0)
        else:
            stats.edge_conflicts = self.window_conflicts
        stats.propagation_conflicts = self.prop.conflicts

    # ------------------------------------------------------------------
    # Frontend variants (site ①)
    # ------------------------------------------------------------------
    def _arbiter_skip(self, k: int) -> None:
        """Advance per-cycle arbiter state across ``k`` idle cycles."""
        if self.config.offset_site == "mdp":
            self.parity ^= k & 1
        else:
            self.fstart = (self.fstart + k) % self.n

    def _retire(self, ch: int) -> int:
        """Pop the granted head and emit its {Off, Len} request."""
        q = self.issue_q[ch]
        _, u, sprop = q.popleft()
        self.issue_count -= 1
        offsets = self.offsets
        off = offsets[u]
        length = offsets[u + 1] - off
        if length > 0:
            self.fe_out[ch].append((off, length, sprop))
            self.fe_count += 1
        return 1

    def _inject_parts(self, offer) -> None:
        """Offer one head per non-empty ActiveVertex part to the router."""
        n = self.n
        parts_u, parts_sp, heads = self.parts_u, self.parts_sp, self.parts_head
        exhausted = 0
        for p in self.parts_alive:
            lst = parts_u[p]
            h = heads[p]
            u = lst[h]
            if offer(p, (u % n, u, parts_sp[p][h])):
                h += 1
                heads[p] = h
                if h == len(lst):
                    exhausted += 1
        if exhausted:
            self.parts_alive = [p for p in self.parts_alive
                                if heads[p] < len(parts_u[p])]

    def _inject_parts_mdp(self) -> None:
        """`_inject_parts` with the MDP stage-0 offer inlined."""
        net = self.fnet
        n = self.n
        table0 = net.table[0]
        queues0 = net.queues[0]
        block_len = net.block_len
        parts_u, parts_sp, heads = self.parts_u, self.parts_sp, self.parts_head
        exhausted = 0
        added = 0
        for p in self.parts_alive:
            lst = parts_u[p]
            h = heads[p]
            u = lst[h]
            tq = queues0[table0[p][u % n]]
            if tq and len(tq) > block_len:
                net.rejected_offers += 1
                continue
            tq.append((u % n, u, parts_sp[p][h]))
            added += 1
            h += 1
            heads[p] = h
            if h == len(lst):
                exhausted += 1
        if added:
            net.counts[0] += added
            net.count += added
        if exhausted:
            self.parts_alive = [p for p in self.parts_alive
                                if heads[p] < len(parts_u[p])]

    def _frontend_tick_mdp(self) -> int:
        n = self.n
        net = self.fnet
        retired = 0
        # -- issue: §4.1 odd-even arbitration over the request heads
        if self.issue_count:
            fe_out = self.fe_out
            fe_depth = self.fe_depth
            issue_q = self.issue_q
            parity = self.parity
            claimed: dict[int, int] | None = None
            for ch in range(parity, n, 2):      # priority parity: grant
                q = issue_q[ch]
                if q and len(fe_out[ch]) < fe_depth:
                    u = q[0][1]
                    if claimed is None:
                        claimed = {}
                    claimed[u % n] = u
                    claimed[(u + 1) % n] = u + 1
                    retired += self._retire(ch)
            for ch in range(1 - parity, n, 2):  # defer to claimed banks
                q = issue_q[ch]
                if q and len(fe_out[ch]) < fe_depth:
                    u = q[0][1]
                    a2 = u + 1
                    if claimed is None:
                        claimed = {u % n: u, a2 % n: a2}
                        retired += self._retire(ch)
                    elif (claimed.get(u % n, u) == u
                          and claimed.get(a2 % n, a2) == a2):
                        claimed[u % n] = u
                        claimed[a2 % n] = a2
                        retired += self._retire(ch)
                    else:
                        self.deferrals += 1
        self.parity ^= 1
        # -- route: deliver into issue queues, advance, inject parts
        if net.counts[net.num_stages - 1]:
            self.issue_count += net.deliver_into(self.issue_q,
                                                 self.issue_depth)
        if net.count:
            net.advance()
        if self.parts_alive:
            self._inject_parts_mdp()
        return retired

    def _frontend_tick_xbar(self) -> int:
        n = self.n
        retired = 0
        # -- issue: centralized greedy claim arbitration (rotating scan)
        if self.issue_count:
            fe_out = self.fe_out
            fe_depth = self.fe_depth
            issue_q = self.issue_q
            start = self.fstart
            claimed: set[int] = set()
            for k in range(n):
                ch = (start + k) % n
                q = issue_q[ch]
                if q and len(fe_out[ch]) < fe_depth:
                    u = q[0][1]
                    b1, b2 = u % n, (u + 1) % n
                    if b1 in claimed or b2 in claimed:
                        self.deferrals += 1
                    else:
                        claimed.add(b1)
                        claimed.add(b2)
                        retired += self._retire(ch)
        self.fstart = (self.fstart + 1) % n
        # -- route: crossbar tick under issue-queue budgets, then inject
        xbar = self.fxbar
        if xbar.count:
            issue_q = self.issue_q
            budget = [self.issue_depth - len(q) for q in issue_q]
            delivered = xbar.tick_budget(budget)
            for item in delivered:
                issue_q[item[0]].append(item)
            self.issue_count += len(delivered)
        if self.parts_alive:
            self._inject_parts(xbar.offer)
        return retired

    # ------------------------------------------------------------------
    # Edge-stage variants (site ②)
    # ------------------------------------------------------------------
    def _edge_active(self) -> bool:
        if self.edge_is_mdp:
            return bool(self.disp_count or self.fe_count or self.rp_busy_total
                        or (self.rnet is not None and self.rnet.count))
        return bool(self.ce_queue or self.fe_count)

    def _edge_tick_mdp(self) -> None:
        m = self.m
        # 1. dispatchers issue bank reads into the ePE queues
        if self.disp_count:
            epe_q = self.epe_q
            epe_depth = self.epe_depth
            dst = self.dst
            dst_mod = self.dst_mod
            weights = self.weights
            process = self.process_fn
            proc = self._proc
            rec_news = self._rec_news
            disp_stall = self.disp_stall
            issued = 0
            for d, q in enumerate(self.disp_q):
                if not q:
                    continue
                sb = disp_stall[d]
                if sb >= 0:
                    if len(epe_q[sb]) >= epe_depth:
                        self.disp_blocked += 1
                        continue
                    disp_stall[d] = -1
                off, length, payload = q[0]
                # replay pieces never wrap the bank space, so the banks
                # are the consecutive range starting at off % m
                bank = off % m
                blocked = False
                for b in range(bank, bank + length):
                    if len(epe_q[b]) >= epe_depth:
                        disp_stall[d] = b
                        blocked = True
                        break
                if blocked:
                    self.disp_blocked += 1
                    continue
                q.popleft()
                issued += 1
                if rec_news is not None:
                    # recording: immediates are slot ids (phase_memo)
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx],
                                            len(rec_news), 1))
                        rec_news.append(eidx)
                        bank += 1
                elif proc == 0:                 # identity kernel
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx], payload, 1))
                        bank += 1
                elif proc == 2:                 # payload + weight
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx],
                                            payload + weights[eidx], 1))
                        bank += 1
                elif proc == 3:                 # min(payload, weight)
                    for eidx in range(off, off + length):
                        w = weights[eidx]
                        epe_q[bank].append((dst_mod[eidx], dst[eidx],
                                            payload if payload < w else w, 1))
                        bank += 1
                elif proc == 1:                 # weight-independent kernel
                    pv = process(payload, 0)
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx], pv, 1))
                        bank += 1
                else:
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx],
                                            process(payload, weights[eidx]), 1))
                        bank += 1
                self.epe_count += length
            self.disp_count -= issued
        # 2. network delivers pieces to dispatchers
        rnet = self.rnet
        if rnet is not None and rnet.count:
            last = rnet.num_stages - 1
            if rnet.counts[last]:
                disp_q = self.disp_q
                disp_depth = self.disp_depth
                popped = 0
                for d, queue in enumerate(rnet.queues[last]):
                    if queue and len(disp_q[d]) < disp_depth:
                        disp_q[d].append(queue.popleft())
                        popped += 1
                rnet.counts[last] -= popped
                rnet.count -= popped
                self.disp_count += popped
            if rnet.count:
                rnet.advance()
        # 3. replay engines emit one piece per network input position
        if self.rp_busy_total:
            busy_at = self._busy_at
            rp_rr = self.rp_rr
            for pos, channels in enumerate(self._channels_at):
                if not busy_at[pos]:
                    continue
                num = len(channels)
                rr = rp_rr[pos]
                for k in range(num):
                    idx = (rr + k) % num
                    piece = self._replay_emit(channels[idx])
                    if piece is None:
                        continue
                    off, length, payload = piece
                    if rnet is not None:
                        accepted = rnet.offer(pos, off, length, payload)
                    else:
                        accepted = self._disp_accept(0, off, length, payload)
                    if accepted:
                        self._replay_consume(channels[idx], pos)
                        rp_rr[pos] = (idx + 1) % num
                    break
        # 4. replay engines pull new {Off, Len} requests from the front end
        if self.fe_count:
            rp_pending = self.rp_pending
            rp_pieces = self.rp_pieces
            replay_depth = self.replay_depth
            pulled = 0
            for ch, src in enumerate(self.fe_out):
                if not src:
                    continue
                pending = rp_pending[ch]
                if len(pending) < replay_depth:
                    if not pending and not rp_pieces[ch]:
                        self._busy_at[self._position_of[ch]] += 1
                        self.rp_busy_total += 1
                    pending.append(src.popleft())
                    pulled += 1
            self.fe_count -= pulled

    def _replay_emit(self, ch: int):
        pieces = self.rp_pieces[ch]
        if not pieces:
            pending = self.rp_pending[ch]
            if not pending:
                return None
            req = pending.popleft()
            off, length, payload = req
            m = self.m
            if length <= m - off % m:   # common case: one non-wrapping piece
                pieces.append(req)
            else:
                for p_off, p_len in split_request(off, length, m, m):
                    pieces.append((p_off, p_len, payload))
        return pieces[0]

    def _replay_consume(self, ch: int, pos: int) -> None:
        pieces = self.rp_pieces[ch]
        pieces.popleft()
        if not pieces and not self.rp_pending[ch]:
            self._busy_at[pos] -= 1
            self.rp_busy_total -= 1

    def _disp_accept(self, d: int, off: int, length: int, payload) -> bool:
        q = self.disp_q[d]
        if len(q) >= self.disp_depth:
            return False
        q.append((off, length, payload))
        self.disp_count += 1
        return True

    def _edge_tick_central(self) -> None:
        m = self.m
        queue = self.ce_queue
        # 1. in-order greedy window issue
        st = self.ce_stall
        issue_blocked = False
        if st is not None:
            if (queue and queue[0][0] == st[0] and queue[0][1] == st[1]
                    and len(self.epe_q[st[2]]) >= self.epe_depth):
                issue_blocked = True     # head still blocked: provable no-op
            else:
                self.ce_stall = None
        if queue and not issue_blocked:
            epe_q = self.epe_q
            epe_depth = self.epe_depth
            dst = self.dst
            dst_mod = self.dst_mod
            weights = self.weights
            process = self.process_fn
            proc = self._proc
            rec_news = self._rec_news
            claimed: set[int] = set()
            issued_requests = 0
            while queue and issued_requests < self.ce_issue_limit:
                off, length, payload = queue[0]
                k = length if length < m else m
                if claimed:              # first window can never conflict
                    conflict = False
                    for j in range(k):
                        if (off + j) % m in claimed:
                            conflict = True
                            break
                    if conflict:
                        self.window_conflicts += 1
                        break            # strict in-order: head blocks the rest
                full = False
                for j in range(k):
                    if len(epe_q[(off + j) % m]) >= epe_depth:
                        full = True
                        break
                if full:
                    if not claimed:      # nothing issued: memoize the block
                        self.ce_stall = (off, length, (off + j) % m)
                    break
                if rec_news is not None:
                    # recording: immediates are slot ids (phase_memo)
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx],
                                         len(rec_news), 1))
                        rec_news.append(eidx)
                        claimed.add(b)
                elif proc == 0:                 # identity kernel
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx], payload, 1))
                        claimed.add(b)
                elif proc == 2:                 # payload + weight
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx],
                                         payload + weights[eidx], 1))
                        claimed.add(b)
                elif proc == 3:                 # min(payload, weight)
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        w = weights[eidx]
                        epe_q[b].append((dst_mod[eidx], dst[eidx],
                                         payload if payload < w else w, 1))
                        claimed.add(b)
                elif proc == 1:                 # weight-independent kernel
                    pv = process(payload, 0)
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx], pv, 1))
                        claimed.add(b)
                else:
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx],
                                         process(payload, weights[eidx]), 1))
                        claimed.add(b)
                self.epe_count += k
                if k == length:
                    queue.popleft()
                    issued_requests += 1
                else:
                    queue[0] = (off + k, length - k, payload)
                    break                # the window already spans all banks
        # 2. merge front-end requests in channel order
        if self.fe_count:
            capacity = self.ce_capacity
            pulled = 0
            for src in self.fe_out:
                if len(queue) >= capacity:
                    break
                if src:
                    queue.append(src.popleft())
                    pulled += 1
            self.fe_count -= pulled
