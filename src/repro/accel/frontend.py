"""Front-end: ActiveVertex fetch + Offset Array access (conflict site ①).

The access pattern is **one-to-two** (§4.1): a source vertex ``u`` needs
``OffsetArray[u]`` and ``OffsetArray[u+1]``, which live in two
consecutive interleaved banks (``u mod n`` and ``(u+1) mod n``).

Two implementations:

* :class:`MdpOffsetFrontend` (HiGraph) — an MDP-network first guides
  each vertex to output channel ``u mod n``, so a vertex only ever
  conflicts with its *neighbour* channels; the §4.1 odd–even arbiter
  resolves those by alternating parity priority.
* :class:`CrossbarOffsetFrontend` (GraphDynS) — an arbitrated crossbar
  routes vertices and a centralized greedy claim arbiter resolves bank
  conflicts across **all** channels; this serial arbitration chain is
  the structure whose frequency collapses beyond a few channels.

Both emit ``(Off, Len, sprop)`` requests into per-channel ``fe_out``
queues and silently retire vertices with no outgoing edges.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.accel.config import AcceleratorConfig
from repro.hw.arbiter import GreedyClaimArbiter, OddEvenArbiter
from repro.hw.crossbar import ArbitratedCrossbar
from repro.mdp.network import MdpNetworkSim


class _OffsetFrontendBase:
    """Shared machinery: issue queues, offset reads, retirement count."""

    def __init__(self, config: AcceleratorConfig, offsets: np.ndarray) -> None:
        self.n = config.front_channels
        self.offsets = offsets
        self.issue_depth = config.issue_queue_depth
        self.issue_q: list[deque] = [deque() for _ in range(self.n)]
        self.retired = 0            # vertices that left the front end
        self.deferrals = 0          # lost bank-arbitration attempts

    # -- subclass hooks -------------------------------------------------
    def _route(self, active_parts) -> None:
        raise NotImplementedError

    def _arbitrate(self, requests):
        raise NotImplementedError

    # -- per-cycle protocol --------------------------------------------
    def tick(self, active_parts: list[deque], fe_out: list) -> int:
        """One cycle; returns vertices retired this cycle."""
        retired = self._issue(fe_out)
        self._route(active_parts)
        return retired

    def _issue(self, fe_out) -> int:
        """Arbitrate offset-bank reads for the issue-queue heads."""
        n = self.n
        requests: list = [None] * n
        for ch in range(n):
            q = self.issue_q[ch]
            if q and not fe_out[ch].full:
                u = q[0][0]
                requests[ch] = ((u % n, u), ((u + 1) % n, u + 1))
        granted = self._arbitrate(requests)
        retired = 0
        for ch in granted:
            u, sprop = self.issue_q[ch].popleft()
            off = int(self.offsets[u])
            length = int(self.offsets[u + 1]) - off
            if length > 0:
                fe_out[ch].push((off, length, sprop))
            retired += 1
        self.retired += retired
        return retired

    @property
    def issue_occupancy(self) -> int:
        return sum(len(q) for q in self.issue_q)


class MdpOffsetFrontend(_OffsetFrontendBase):
    """HiGraph front end: MDP-network routing + odd–even arbiter."""

    def __init__(self, config: AcceleratorConfig, offsets: np.ndarray) -> None:
        super().__init__(config, offsets)
        self.net = MdpNetworkSim(self.n, config.radix, config.fifo_depth)
        self.arbiter = OddEvenArbiter(self.n)

    def _arbitrate(self, requests):
        granted = self.arbiter.arbitrate(requests)
        self.deferrals = self.arbiter.deferrals
        return granted

    def _route(self, active_parts) -> None:
        # deliver routed vertices into issue queues, then advance, then
        # inject new vertices from the ActiveVertex parts
        ready = [len(q) < self.issue_depth for q in self.issue_q]
        for ch, item in self.net.deliver(ready):
            self.issue_q[ch].append(item)
        self.net.advance()
        for p in range(self.n):
            part = active_parts[p]
            if part:
                u, sprop = part[0]
                if self.net.offer(p, u % self.n, (u, sprop)):
                    part.popleft()

    @property
    def drained(self) -> bool:
        return self.net.drained and self.issue_occupancy == 0


class CrossbarOffsetFrontend(_OffsetFrontendBase):
    """GraphDynS front end: crossbar routing + centralized greedy arbiter."""

    def __init__(self, config: AcceleratorConfig, offsets: np.ndarray) -> None:
        super().__init__(config, offsets)
        self.net = ArbitratedCrossbar(self.n, self.n, config.fifo_depth)
        self.arbiter = GreedyClaimArbiter(self.n)

    def _arbitrate(self, requests):
        granted = self.arbiter.arbitrate(requests)
        self.deferrals = self.arbiter.deferrals
        return granted

    def _route(self, active_parts) -> None:
        budget = [self.issue_depth - len(q) for q in self.issue_q]
        for ch, item in self.net.tick(budget):
            self.issue_q[ch].append(item)
        for p in range(self.n):
            part = active_parts[p]
            if part:
                u, sprop = part[0]
                if self.net.offer(p, u % self.n, (u, sprop)):
                    part.popleft()

    @property
    def drained(self) -> bool:
        return self.net.drained and self.issue_occupancy == 0


def make_frontend(config: AcceleratorConfig, offsets: np.ndarray):
    if config.offset_site == "mdp":
        return MdpOffsetFrontend(config, offsets)
    return CrossbarOffsetFrontend(config, offsets)
