"""Accelerator simulators: HiGraph, HiGraph-mini, GraphDynS, ablations."""

from repro.accel.accelerator import AcceleratorSim, SimResult, simulate
from repro.accel.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINES,
    engine_cache_token,
    resolve_engine,
)
from repro.accel.config import (
    DESIGN_ID_BITS,
    DESIGN_MAX_EDGES,
    DESIGN_MAX_VERTICES,
    AcceleratorConfig,
    ablation,
    fig7_layout,
    graphdyns,
    higraph,
    higraph_mini,
)
from repro.accel.slicing import SlicedAcceleratorSim, slice_load_cycles
from repro.accel.stats import SimStats
from repro.accel.trace import PipelineTrace, PipelineTracer

__all__ = [
    "AcceleratorSim",
    "SimResult",
    "simulate",
    "ENGINES",
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "resolve_engine",
    "engine_cache_token",
    "AcceleratorConfig",
    "higraph",
    "higraph_mini",
    "graphdyns",
    "ablation",
    "fig7_layout",
    "DESIGN_ID_BITS",
    "DESIGN_MAX_VERTICES",
    "DESIGN_MAX_EDGES",
    "SlicedAcceleratorSim",
    "slice_load_cycles",
    "SimStats",
    "PipelineTrace",
    "PipelineTracer",
]
