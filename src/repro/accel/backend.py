"""Back-end dataflow propagation (conflict site ③) and the PE arrays.

After an ePE computes ``Imm = Process_Edge(u.prop, e.weight)``, the
``(v.ID, Imm)`` record must reach vPE ``v mod m``, which owns the
tProperty bank.  The paper deploys the original MDP-network here
(§4.3); GraphDynS uses an arbitrated crossbar.  Both are wrapped in a
common per-cycle protocol:

* ``tick_deliver()`` — pop at most one record per vPE (the vPE always
  consumes: `Reduce` is single-cycle into its own bank), advancing the
  network's internal stages.
* ``offer(channel, dest, payload)`` — an ePE injects a record.
"""

from __future__ import annotations

from repro.accel.config import AcceleratorConfig
from repro.hw.crossbar import ArbitratedCrossbar
from repro.mdp.network import MdpNetworkSim

# The always-ready sink vector and the unit acceptance budget are
# per-instance immutable tuples.  They used to be module-level shared
# *mutable* lists keyed by m — any consumer mutation (or future
# threaded use) would have corrupted every other live simulator with
# the same back-end width.


class MdpPropagation:
    """HiGraph site ③: the original MDP-network (§4.3).

    When vertex combining is enabled, same-vertex ``(v, Imm, count)``
    records merge in FIFO tails at *every* stage — combining compounds
    multiplicatively along the path to a hot vPE.
    """

    def __init__(self, config: AcceleratorConfig, combine_fn=None) -> None:
        self.m = config.back_channels
        self.net = MdpNetworkSim(self.m, config.radix, config.fifo_depth,
                                 combine_fn=combine_fn)
        #: per-instance, immutable: the vPEs always consume (Reduce is
        #: single-cycle into a private bank)
        self.sink_ready = (True,) * self.m

    def tick_deliver(self):
        delivered = self.net.deliver(self.sink_ready)
        self.net.advance()
        return delivered

    def can_offer(self, channel: int, dest: int) -> bool:
        return self.net.can_offer(channel, dest)

    def offer(self, channel: int, dest: int, payload) -> bool:
        return self.net.offer(channel, dest, payload)

    @property
    def conflicts(self) -> int:
        return self.net.stall_events + self.net.rejected_offers

    @property
    def occupancy(self) -> int:
        return self.net.occupancy

    @property
    def drained(self) -> bool:
        return self.net.drained


class CrossbarPropagation:
    """GraphDynS site ③: FIFO-plus-crossbar with per-output arbitration.

    Vertex combining (GraphDynS has an explicit coalescing unit) merges
    same-vertex records at the input FIFO tails — a single combining
    point, unlike the MDP-network's per-stage compounding.
    """

    def __init__(self, config: AcceleratorConfig, combine_fn=None) -> None:
        self.m = config.back_channels
        self.xbar = ArbitratedCrossbar(self.m, self.m, config.fifo_depth,
                                       combine_fn=combine_fn)
        #: per-instance, immutable: every vPE accepts one record per cycle
        self.unit_budget = (1,) * self.m

    def tick_deliver(self):
        return self.xbar.tick(self.unit_budget)

    def can_offer(self, channel: int, dest: int) -> bool:
        return not self.xbar.inputs[channel].full

    def offer(self, channel: int, dest: int, payload) -> bool:
        return self.xbar.offer(channel, dest, payload)

    @property
    def conflicts(self) -> int:
        return self.xbar.conflicts

    @property
    def occupancy(self) -> int:
        return self.xbar.occupancy

    @property
    def drained(self) -> bool:
        return self.xbar.drained


def make_propagation(config: AcceleratorConfig, combine_fn=None):
    if config.propagation_site == "mdp":
        return MdpPropagation(config, combine_fn)
    return CrossbarPropagation(config, combine_fn)


def make_vertex_combiner(reduce_fn):
    """Coalesce two ``(v, imm, count)`` records of the same vertex."""
    def combine(a, b):
        if a[0] != b[0]:
            return None
        return (a[0], reduce_fn(a[1], b[1]), a[2] + b[2])
    return combine
