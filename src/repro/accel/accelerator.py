"""Cycle-level accelerator simulator: scatter/apply orchestration (Fig. 6).

One :class:`AcceleratorSim` wires the three conflict-site
implementations selected by the configuration and executes the VCPM
iteration loop:

* **Scatter**: ActiveVertex parts -> offset access (site ①) ->
  ``{Off, Len}`` requests -> edge access (site ②) -> ePEs
  (``Process_Edge``) -> dataflow propagation (site ③) -> vPEs
  (``Reduce`` into tProperty banks).  Simulated cycle by cycle,
  sink-to-source, with every queue capacity and bank port enforced.
* **Apply**: a vectorized pass over the Property Array
  (``ceil(V / m)`` cycles — m-parallel streaming), which also builds
  the next iteration's ActiveVertex parts (round-robin in activation
  order, so PageRank's all-active list maps onto channels in order).

The simulated result must equal the functional golden model
(:func:`repro.algorithms.run_reference`) exactly — integration tests
enforce it — while the cycle counts expose the datapath conflicts the
paper measures.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.accel.backend import make_propagation, make_vertex_combiner
from repro.accel.config import AcceleratorConfig
from repro.accel.edge_access import make_edge_stage
from repro.accel.frontend import make_frontend
from repro.accel.stats import SimStats
from repro.algorithms.base import Algorithm
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.hw.fifo import Fifo

#: Streaming latency constant added per apply pass (pipeline fill/drain).
APPLY_PIPELINE_LATENCY = 4


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    stats: SimStats
    properties: np.ndarray

    @property
    def gteps(self) -> float:
        return self.stats.gteps


class AcceleratorSim:
    """Simulates one accelerator configuration on one graph + algorithm."""

    def __init__(self, config: AcceleratorConfig, graph: CSRGraph,
                 algorithm: Algorithm, tracer=None) -> None:
        algorithm.validate_graph(graph)
        self.config = config
        self.graph = graph
        self.algorithm = algorithm
        self.tracer = tracer        # optional repro.accel.trace.PipelineTracer
        self.out_degree = graph.out_degree()
        # plain Python lists make the per-edge hot path ~5x faster than
        # numpy scalar indexing
        self._dst = graph.dst.tolist()
        self._weights = graph.weights.tolist()

        n, m = config.front_channels, config.back_channels
        self.frontend = make_frontend(config, graph.offsets)
        self.edge_stage = make_edge_stage(config, self._dst, self._weights)
        combine_fn = (make_vertex_combiner(algorithm.reduce)
                      if config.vertex_combining else None)
        self.propagation = make_propagation(config, combine_fn)
        self.active_parts: list[deque] = [deque() for _ in range(n)]
        self.fe_out = [Fifo(config.fe_out_depth) for _ in range(n)]
        self.epe_in: list[deque] = [deque() for _ in range(m)]

    # ------------------------------------------------------------------
    def run(self, source: int = 0, max_iterations: int | None = None) -> SimResult:
        """Execute the algorithm to convergence (or the iteration bound)."""
        graph, alg = self.graph, self.algorithm
        v = graph.num_vertices
        stats = SimStats(config_name=self.config.name, algorithm=alg.name,
                         graph_name=graph.name,
                         frequency_ghz=self.config.frequency_ghz())
        if v == 0:
            return SimResult(stats, np.empty(0, dtype=np.float64))
        if not 0 <= source < v:
            raise SimulationError(f"source {source} out of range [0, {v})")

        prop = alg.init_prop(graph, source)
        active = alg.initial_active(graph, source)
        if max_iterations is None:
            max_iterations = (alg.default_iterations if alg.all_active else v + 1)
        identity = alg.identity()
        m = self.config.back_channels

        iteration = 0
        while active.size and iteration < max_iterations:
            sprop_all = alg.scatter_value(prop, self.out_degree)
            tprop_list = [identity] * v
            self._scatter(active, sprop_all, tprop_list, stats)
            tprop = np.asarray(tprop_list, dtype=np.float64)
            new_prop = alg.apply(prop, tprop, graph)
            changed = alg.activation_mask(prop, new_prop)
            stats.apply_cycles += -(-v // m) + APPLY_PIPELINE_LATENCY
            stats.iterations += 1
            stats.active_vertices_total += int(active.size)
            prop = new_prop
            active = np.nonzero(changed)[0].astype(np.int64)
            iteration += 1

        self._harvest_site_stats(stats)
        return SimResult(stats, prop)

    # ------------------------------------------------------------------
    def _scatter(self, active: np.ndarray, sprop_all: np.ndarray,
                 tprop: list, stats: SimStats) -> None:
        """Simulate one scatter phase cycle by cycle."""
        cfg = self.config
        n, m = cfg.front_channels, cfg.back_channels
        parts, fe_out, epe_in = self.active_parts, self.fe_out, self.epe_in
        frontend, edge_stage, propagation = (self.frontend, self.edge_stage,
                                             self.propagation)
        reduce_fn = self.algorithm.reduce
        process_fn = self.algorithm.process_edge

        sprops = sprop_all[active].tolist()
        actives = active.tolist()
        for i, (u, sp) in enumerate(zip(actives, sprops)):
            parts[i % n].append((u, sp))

        expected = int(self.out_degree[active].sum())
        fe_pending = len(actives)
        reduces = 0
        cycles = 0
        starved = 0
        limit = 4 * expected + 8 * fe_pending + 10_000

        while fe_pending > 0 or reduces < expected:
            cycles += 1
            if cycles > limit:
                raise SimulationError(
                    f"scatter did not converge within {limit} cycles "
                    f"({reduces}/{expected} reduces, {fe_pending} vertices "
                    f"pending) — queue sizing bug?")
            # 1. propagation delivers; vPEs reduce into tProperty banks.
            #    A record is (v, imm, count): `count` edges may have been
            #    coalesced into it on the way here.
            delivered = propagation.tick_deliver()
            for _, (dv, imm, cnt) in delivered:
                tprop[dv] = reduce_fn(tprop[dv], imm)
                reduces += cnt
            got = len(delivered)
            starved += m - got
            stats.vpe_busy_cycles += got
            # 2. ePEs: Process_Edge, one record per channel per cycle
            for k in range(m):
                q = epe_in[k]
                if q:
                    dstv, w, sp = q[0]
                    if propagation.offer(k, dstv % m,
                                         (dstv, process_fn(sp, w), 1)):
                        q.popleft()
            # 3. Edge Array access (site ②)
            edge_stage.tick(fe_out, epe_in)
            # 4. Offset Array access + ActiveVertex fetch (site ①)
            fe_pending -= frontend.tick(parts, fe_out)
            if self.tracer is not None:
                self.tracer.sample(self, cycles, got)

        stats.scatter_cycles += cycles
        stats.vpe_starvation_cycles += starved
        stats.edges_processed += reduces

    # ------------------------------------------------------------------
    def _harvest_site_stats(self, stats: SimStats) -> None:
        stats.offset_deferrals = self.frontend.deferrals
        stats.edge_conflicts = self.edge_stage.conflicts
        stats.propagation_conflicts = self.propagation.conflicts


def simulate(config: AcceleratorConfig, graph: CSRGraph, algorithm: Algorithm,
             source: int = 0, max_iterations: int | None = None) -> SimResult:
    """One-shot convenience wrapper: build the simulator and run it."""
    return AcceleratorSim(config, graph, algorithm).run(source, max_iterations)
