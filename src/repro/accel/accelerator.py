"""Cycle-level accelerator simulator: scatter/apply orchestration (Fig. 6).

One :class:`AcceleratorSim` executes the VCPM iteration loop:

* **Scatter**: ActiveVertex parts -> offset access (site ①) ->
  ``{Off, Len}`` requests -> edge access (site ②) -> ePEs
  (``Process_Edge``) -> dataflow propagation (site ③) -> vPEs
  (``Reduce`` into tProperty banks).  Simulated cycle by cycle,
  sink-to-source, with every queue capacity and bank port enforced.
  The cycle loop itself is pluggable — see :mod:`repro.accel.engine`
  for the ``reference`` (golden) and ``batched`` (fast, cycle-exact)
  scatter engines.
* **Apply**: a vectorized pass over the Property Array
  (``ceil(V / m)`` cycles — m-parallel streaming), which also builds
  the next iteration's ActiveVertex parts (round-robin in activation
  order, so PageRank's all-active list maps onto channels in order).

The simulated result must equal the functional golden model
(:func:`repro.algorithms.run_reference`) exactly — integration tests
enforce it — while the cycle counts expose the datapath conflicts the
paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.config import AcceleratorConfig
from repro.accel.engine import make_engine, resolve_engine
from repro.accel.stats import SimStats
from repro.algorithms.base import Algorithm
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph

#: Streaming latency constant added per apply pass (pipeline fill/drain).
APPLY_PIPELINE_LATENCY = 4


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    stats: SimStats
    properties: np.ndarray

    @property
    def gteps(self) -> float:
        return self.stats.gteps


class AcceleratorSim:
    """Simulates one accelerator configuration on one graph + algorithm.

    ``engine`` selects the scatter-phase implementation (``reference``
    or ``batched``; default: ``$REPRO_ENGINE``, then the package
    default).  Both engines produce identical :class:`SimStats`.
    Pipeline tracing samples live component state, which only the
    reference engine has, so a ``tracer`` forces (and requires) it.
    """

    def __init__(self, config: AcceleratorConfig, graph: CSRGraph,
                 algorithm: Algorithm, tracer=None,
                 engine: str | None = None) -> None:
        algorithm.validate_graph(graph)
        self.config = config
        self.graph = graph
        self.algorithm = algorithm
        self.tracer = tracer        # optional repro.accel.trace.PipelineTracer
        self.out_degree = graph.out_degree()
        # plain Python lists make the per-edge hot path ~5x faster than
        # numpy scalar indexing
        self._dst = graph.dst.tolist()
        self._weights = graph.weights.tolist()

        if tracer is not None:
            if engine is not None and resolve_engine(engine) != "reference":
                raise SimulationError(
                    "pipeline tracing samples live component queues, which "
                    "only the reference engine has; drop the tracer or pass "
                    "engine='reference'")
            self.engine_name = "reference"
        else:
            self.engine_name = resolve_engine(engine)
        self.engine = make_engine(self.engine_name, self)

    # ------------------------------------------------------------------
    def run(self, source: int = 0, max_iterations: int | None = None) -> SimResult:
        """Execute the algorithm to convergence (or the iteration bound)."""
        graph, alg = self.graph, self.algorithm
        v = graph.num_vertices
        stats = SimStats(config_name=self.config.name, algorithm=alg.name,
                         graph_name=graph.name,
                         frequency_ghz=self.config.frequency_ghz())
        if v == 0:
            return SimResult(stats, np.empty(0, dtype=np.float64))
        if not 0 <= source < v:
            raise SimulationError(f"source {source} out of range [0, {v})")

        prop = alg.init_prop(graph, source)
        active = alg.initial_active(graph, source)
        if max_iterations is None:
            max_iterations = (alg.default_iterations if alg.all_active else v + 1)
        identity = alg.identity()
        m = self.config.back_channels

        iteration = 0
        while active.size and iteration < max_iterations:
            sprop_all = alg.scatter_value(prop, self.out_degree)
            tprop = self.engine.scatter_phase(active, sprop_all, identity,
                                              stats)
            new_prop = alg.apply(prop, tprop, graph)
            changed = alg.activation_mask(prop, new_prop)
            stats.apply_cycles += -(-v // m) + APPLY_PIPELINE_LATENCY
            stats.iterations += 1
            stats.active_vertices_total += int(active.size)
            prop = new_prop
            active = np.nonzero(changed)[0].astype(np.int64)
            iteration += 1

        self.engine.harvest(stats)
        return SimResult(stats, prop)

    # ------------------------------------------------------------------
    def _scatter(self, active: np.ndarray, sprop_all: np.ndarray,
                 tprop: list, stats: SimStats) -> None:
        """Simulate one scatter phase (delegates to the selected engine)."""
        self.engine.scatter(active, sprop_all, tprop, stats)


def simulate(config: AcceleratorConfig, graph: CSRGraph, algorithm: Algorithm,
             source: int = 0, max_iterations: int | None = None,
             engine: str | None = None) -> SimResult:
    """One-shot convenience wrapper: build the simulator and run it."""
    return AcceleratorSim(config, graph, algorithm,
                          engine=engine).run(source, max_iterations)
