"""Per-cycle pipeline tracing for the accelerator simulators.

Attach a :class:`PipelineTracer` to an :class:`~repro.accel.AcceleratorSim`
to sample queue occupancies and delivery rates every ``interval`` cycles.
Traces answer the "where did the cycles go" questions behind the paper's
plots — which site backs up, how deep the propagation FIFOs run, how the
vPE delivery rate breathes with the frontier.

The tracer costs one branch per simulated cycle when attached and nothing
when absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError


@dataclass
class PipelineTrace:
    """Column-oriented samples of one scatter phase (or a whole run)."""

    interval: int
    cycle: list[int] = field(default_factory=list)
    active_backlog: list[int] = field(default_factory=list)     # unfetched vertices
    fe_issue_occupancy: list[int] = field(default_factory=list)  # site-1 queues
    fe_out_occupancy: list[int] = field(default_factory=list)    # {Off, Len} queues
    epe_in_occupancy: list[int] = field(default_factory=list)    # edge records
    propagation_occupancy: list[int] = field(default_factory=list)
    vpe_delivered: list[int] = field(default_factory=list)       # records this cycle

    def __len__(self) -> int:
        return len(self.cycle)

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {name: np.asarray(getattr(self, name))
                for name in ("cycle", "active_backlog", "fe_issue_occupancy",
                             "fe_out_occupancy", "epe_in_occupancy",
                             "propagation_occupancy", "vpe_delivered")}

    def summary(self, back_channels: int) -> dict[str, float]:
        """Aggregate view: mean/peak occupancies and vPE delivery rate."""
        if not self.cycle:
            return {"samples": 0}
        arrays = self.as_arrays()
        return {
            "samples": len(self),
            "mean_propagation_occupancy": float(arrays["propagation_occupancy"].mean()),
            "peak_propagation_occupancy": int(arrays["propagation_occupancy"].max()),
            "mean_epe_in_occupancy": float(arrays["epe_in_occupancy"].mean()),
            "mean_fe_out_occupancy": float(arrays["fe_out_occupancy"].mean()),
            "mean_vpe_rate": float(arrays["vpe_delivered"].mean()) / back_channels,
        }


class PipelineTracer:
    """Samples an :class:`AcceleratorSim`'s queues during scatter.

    Parameters
    ----------
    interval:
        Sample every N-th scatter cycle (1 = every cycle).
    """

    def __init__(self, interval: int = 1) -> None:
        if interval < 1:
            raise ConfigError(f"interval must be >= 1, got {interval}")
        self.trace = PipelineTrace(interval=interval)
        self._interval = interval
        self._countdown = 0

    def sample(self, sim, cycle: int, delivered: int) -> None:
        """Called by the simulator once per scatter cycle."""
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._interval
        t = self.trace
        t.cycle.append(cycle)
        t.active_backlog.append(sum(len(p) for p in sim.active_parts))
        t.fe_issue_occupancy.append(sim.frontend.issue_occupancy)
        t.fe_out_occupancy.append(sum(len(f) for f in sim.fe_out))
        t.epe_in_occupancy.append(sum(len(q) for q in sim.epe_in))
        t.propagation_occupancy.append(sim.propagation.occupancy)
        t.vpe_delivered.append(delivered)
