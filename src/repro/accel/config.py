"""Accelerator configurations (paper Table 1) and ablation toggles.

=================  ========  ============  =========
(Table 1)          HiGraph   HiGraph-mini  GraphDynS
=================  ========  ============  =========
Frequency          1 GHz     1 GHz         1 GHz
Front-end channels 32        4             4
Back-end channels  32        32            32
On-chip memory     16 MB     16 MB         32 MB
=================  ========  ============  =========

GraphDynS keeps four front-end channels because "a larger number would
give rise to frequency decline due to the delicate arbitration in
reading Offset Array" (§5.1); HiGraph's MDP-network removes that limit.

The three conflict sites are individually selectable so the Fig. 10
ablation (Opt-O / Opt-E / Opt-D) falls out of the same machinery:

* ``offset_site``:      "crossbar" (baseline) or "mdp" (Opt-O)
* ``edge_site``:        "central"  (baseline) or "mdp" (Opt-E)
* ``propagation_site``: "crossbar" (baseline) or "mdp" (Opt-D)
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields, replace

from repro.errors import ConfigError
from repro.hw.timing import design_frequency_ghz

#: Fig. 7 design capacity: vertex ids are 19 bits, so the Property /
#: tProperty / ActiveVertex arrays are provisioned for 2**19 vertices,
#: and the Edge Array for 2**22 edges (9.5 MB at 19 bits/entry).
DESIGN_MAX_VERTICES = 1 << 19
DESIGN_MAX_EDGES = 1 << 22
DESIGN_ID_BITS = 19
DESIGN_WEIGHT_BITS = 4
DESIGN_OFFSET_BITS = 22

MB = 1 << 20

_OFFSET_SITES = ("crossbar", "mdp")
_EDGE_SITES = ("central", "mdp")
_PROPAGATION_SITES = ("crossbar", "mdp")


@dataclass(frozen=True)
class AcceleratorConfig:
    """Structural parameters of one simulated accelerator."""

    name: str = "HiGraph"
    front_channels: int = 32            # n: ActiveVertex / Offset Array parts
    back_channels: int = 32             # m: Edge / tProperty parts, ePE/vPE count
    offset_site: str = "mdp"
    edge_site: str = "mdp"
    propagation_site: str = "mdp"
    radix: int = 2                      # MDP-network FIFO write-port count (§5.4)
    fifo_depth: int = 160               # per-channel buffer entries (Fig. 12)
    issue_queue_depth: int = 4          # per-channel offset issue queue
    fe_out_depth: int = 8               # {Off, Len} queue per front-end channel
    dispatcher_group: int = 4           # consecutive banks per Dispatcher (Fig. 6)
    dispatcher_queue_depth: int = 8
    epe_queue_depth: int = 8            # per-ePE input records
    replay_queue_depth: int = 4
    central_issue_limit: int | None = None   # defaults to front_channels
    #: Coalesce same-vertex (v, Imm) records in propagation-site FIFO
    #: tails.  GraphDynS ships an explicit coalescing unit, so both the
    #: baseline and HiGraph get the feature; disable for the ablation.
    vertex_combining: bool = True
    onchip_memory_bytes: int = 16 * MB
    target_frequency_ghz: float = 1.0

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.offset_site not in _OFFSET_SITES:
            raise ConfigError(f"offset_site must be one of {_OFFSET_SITES}")
        if self.edge_site not in _EDGE_SITES:
            raise ConfigError(f"edge_site must be one of {_EDGE_SITES}")
        if self.propagation_site not in _PROPAGATION_SITES:
            raise ConfigError(f"propagation_site must be one of {_PROPAGATION_SITES}")
        if self.front_channels < 1 or self.back_channels < 1:
            raise ConfigError("channel counts must be >= 1")
        if self.radix < 2:
            raise ConfigError("radix must be >= 2")
        if self.fifo_depth < self.radix:
            raise ConfigError("fifo_depth must be >= radix")
        if self.dispatcher_group < 1:
            raise ConfigError(
                f"dispatcher_group must be >= 1, got {self.dispatcher_group}")
        if self.back_channels % self.dispatcher_group:
            raise ConfigError(
                f"back_channels {self.back_channels} not divisible by "
                f"dispatcher_group {self.dispatcher_group}")
        for attr in ("issue_queue_depth", "fe_out_depth", "dispatcher_queue_depth",
                     "epe_queue_depth", "replay_queue_depth"):
            if getattr(self, attr) < 1:
                raise ConfigError(f"{attr} must be >= 1")
        if self.central_issue_limit is not None and self.central_issue_limit < 1:
            raise ConfigError(
                f"central_issue_limit must be >= 1 or None, "
                f"got {self.central_issue_limit}")
        if self.onchip_memory_bytes < 1:
            raise ConfigError("onchip_memory_bytes must be >= 1")
        if not math.isfinite(self.target_frequency_ghz) or self.target_frequency_ghz <= 0:
            raise ConfigError("target_frequency_ghz must be positive and finite")
        if self.offset_site == "mdp":
            _require_power(self.front_channels, self.radix, "front_channels")
        if self.propagation_site == "mdp":
            _require_power(self.back_channels, self.radix, "back_channels")

    # ------------------------------------------------------------------
    @property
    def num_dispatchers(self) -> int:
        return self.back_channels // self.dispatcher_group

    @property
    def issue_limit(self) -> int:
        return self.central_issue_limit or self.front_channels

    def frequency_ghz(self) -> float:
        """Design frequency: slowest interconnect structure, capped at
        the 1 GHz target (see :mod:`repro.hw.timing`)."""
        crossbar_ports = 0
        if self.offset_site == "crossbar":
            crossbar_ports = max(crossbar_ports, self.front_channels)
        if self.propagation_site == "crossbar":
            crossbar_ports = max(crossbar_ports, self.back_channels)
        if self.edge_site == "central":
            # the in-order window allocator spans all back-end banks
            crossbar_ports = max(crossbar_ports, self.back_channels)
        mdp_channels = 0
        if self.offset_site == "mdp":
            mdp_channels = max(mdp_channels, self.front_channels)
        if self.propagation_site == "mdp":
            mdp_channels = max(mdp_channels, self.back_channels)
        if self.edge_site == "mdp":
            mdp_channels = max(mdp_channels, self.num_dispatchers)
        return design_frequency_ghz(
            crossbar_ports=crossbar_ports if crossbar_ports >= 2 else None,
            mdp_channels=mdp_channels if mdp_channels >= 2 else None,
            mdp_radix=self.radix,
            target_ghz=self.target_frequency_ghz,
        )

    def ideal_gteps(self) -> float:
        """One edge per back-end channel per cycle (paper: 32 GTEPS)."""
        return self.back_channels * self.frequency_ghz()

    def with_(self, **kwargs) -> "AcceleratorConfig":
        """Functional update (convenience wrapper over dataclasses.replace)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """All fields as a plain JSON-serializable dict, in field order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def config_hash(self) -> str:
        """Stable content hash of the full configuration.

        Every field participates — including ``name``, because cached
        :class:`~repro.accel.stats.SimStats` carry ``config_name`` and a
        rename must not resurface stats under the old label.  The hash is
        stable across processes and Python versions (canonical JSON, not
        ``hash()``, which is salted per interpreter run).
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _require_power(value: int, base: int, what: str) -> None:
    v = value
    while v > 1 and v % base == 0:
        v //= base
    if v != 1:
        raise ConfigError(
            f"{what}={value} must be a power of radix {base} for an MDP site")


# ----------------------------------------------------------------------
# Table 1 presets
# ----------------------------------------------------------------------

def higraph(back_channels: int = 32, **overrides) -> AcceleratorConfig:
    """HiGraph: 32 front-end channels, MDP-network at all three sites."""
    return AcceleratorConfig(name="HiGraph", front_channels=32,
                             back_channels=back_channels,
                             onchip_memory_bytes=16 * MB).with_(**overrides)


def higraph_mini(**overrides) -> AcceleratorConfig:
    """HiGraph-mini: HiGraph with GraphDynS's four front-end channels."""
    return AcceleratorConfig(name="HiGraph-mini", front_channels=4,
                             back_channels=32,
                             onchip_memory_bytes=16 * MB).with_(**overrides)


def graphdyns(back_channels: int = 32, **overrides) -> AcceleratorConfig:
    """GraphDynS baseline: centralized arbitration at every site.

    Four front-end channels ("a larger number would give rise to
    frequency decline"), in-order window allocation for the Edge Array,
    arbitrated crossbar for dataflow propagation, 32 MB on-chip memory.
    """
    return AcceleratorConfig(name="GraphDynS", front_channels=4,
                             back_channels=back_channels,
                             offset_site="crossbar", edge_site="central",
                             propagation_site="crossbar",
                             onchip_memory_bytes=32 * MB).with_(**overrides)


def ablation(opt_o: bool = False, opt_e: bool = False, opt_d: bool = False,
             front_channels: int = 32, back_channels: int = 32,
             **overrides) -> AcceleratorConfig:
    """Fig. 10 ablation configs.

    The baseline is the HiGraph pipeline with **no** MDP-networks
    (centralized arbitration everywhere, frequency held at the 1 GHz
    target for the cycle-count comparison, as in the paper's Fig. 10);
    Opt-O / Opt-E / Opt-D switch the three sites to MDP one by one.
    """
    parts = []
    if opt_o:
        parts.append("O")
    if opt_e:
        parts.append("E")
    if opt_d:
        parts.append("D")
    name = "Baseline" if not parts else "OPT-" + "+".join(parts)
    return AcceleratorConfig(
        name=name,
        front_channels=front_channels,
        back_channels=back_channels,
        offset_site="mdp" if opt_o else "crossbar",
        edge_site="mdp" if opt_e else "central",
        propagation_site="mdp" if opt_d else "crossbar",
        # the ablation compares cycle counts at the paper's 1 GHz target
        target_frequency_ghz=1.0,
    ).with_(**overrides)


def fig7_layout(config: AcceleratorConfig | None = None) -> list[dict]:
    """Paper Fig. 7 on-chip layout: array capacities of the design.

    Computed from the 19-bit design point (2**19 vertices, 2**22 edges):
    Edge Array 9.5 MB, Edge Info ~2 MB, Offset ~1.4 MB, Property
    ~1.2 MB, ActiveVertex + tProperty ~2.4 MB.
    """
    v, e = DESIGN_MAX_VERTICES, DESIGN_MAX_EDGES

    def mb(bits: int) -> float:
        return bits / 8 / MB

    rows = [
        {"array": "Edge Array", "paper_mb": 9.5,
         "model_mb": mb(e * DESIGN_ID_BITS)},
        {"array": "Edge Info Array", "paper_mb": 2.0,
         "model_mb": mb(e * DESIGN_WEIGHT_BITS)},
        {"array": "Offset Array", "paper_mb": 1.4,
         "model_mb": mb(v * DESIGN_OFFSET_BITS)},
        {"array": "Property Array", "paper_mb": 1.2,
         "model_mb": mb(v * DESIGN_ID_BITS)},
        # ActiveVertex (19-bit ids) + tProperty (19-bit values): 2 x 1.19 MB
        {"array": "ActiveVertex + tProperty Array", "paper_mb": 2.4,
         "model_mb": mb(v * DESIGN_ID_BITS) + mb(v * DESIGN_ID_BITS)},
    ]
    return rows
