"""Back-end Edge Array access (conflict site ②).

The access pattern is **one-to-multiple** (§4.2): one ``{Off, Len}``
request reads several consecutive interleaved banks.

* :class:`MdpEdgeStage` (HiGraph): per-channel Replay Engines divide
  ``{Off, nOff}`` into bounded, non-wrapping ``{Off, Len}`` pieces; the
  range-splitting MDP-network propagates them, halving the target range
  (and splitting lengths) each stage; Dispatchers issue the final
  consecutive-bank reads.  Independent dispatchers serve disjoint bank
  groups concurrently and out of order across requests.
* :class:`CentralEdgeStage` (GraphDynS): a single in-order window
  allocator claims bank windows for the oldest requests first; a
  request whose window overlaps an already-claimed bank blocks itself
  *and everything behind it* — the datapath conflict of Fig. 3 ②.

Both stages push ``(dst, weight, sprop)`` edge records into the
per-bank ePE input queues.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.accel.config import AcceleratorConfig
from repro.mdp.dispatcher import Dispatcher
from repro.mdp.range_network import RangeSplitNetwork
from repro.mdp.replay import ReplayEngine, split_request


class MdpEdgeStage:
    """Replay Engines -> range-splitting MDP-network -> Dispatchers.

    The range network spans ``num_dispatchers`` positions; when that
    count is not a power of the configured radix (e.g. 16 dispatchers
    with radix 8), the network falls back to the largest compatible
    radix — the radix knob of §5.4 primarily studies the offset and
    propagation networks, whose geometry always matches.
    """

    def __init__(self, config: AcceleratorConfig, dst: np.ndarray,
                 weights: np.ndarray) -> None:
        self.m = config.back_channels
        self.dst = dst
        self.weights = weights
        self.epe_depth = config.epe_queue_depth
        n = config.front_channels
        w = config.num_dispatchers
        self.replays = [ReplayEngine(self.m, max_len=self.m,
                                     queue_depth=config.replay_queue_depth)
                        for _ in range(n)]
        self.dispatchers = [Dispatcher(i, self.m, config.dispatcher_group,
                                       config.dispatcher_queue_depth)
                            for i in range(w)]
        net_radix = _compatible_radix(w, config.radix)
        self.net = (RangeSplitNetwork(self.m, w, net_radix, config.fifo_depth)
                    if net_radix is not None else None)
        # spread the n replay engines over the w network input positions
        self._position_of = [(ch * w) // n if n <= w else ch % w for ch in range(n)]
        self._channels_at: list[list[int]] = [[] for _ in range(w)]
        for ch, pos in enumerate(self._position_of):
            self._channels_at[pos].append(ch)
        self._rr = [0] * w
        self.stalled_cycles = 0

    # ------------------------------------------------------------------
    def tick(self, fe_out: list, epe_in: list[deque]) -> None:
        # 1. dispatchers issue bank reads into the ePE queues
        depth = self.epe_depth
        for disp in self.dispatchers:
            reads = disp.issue(lambda b: len(epe_in[b]) < depth)
            for bank, eidx, sprop in reads:
                epe_in[bank].append((int(self.dst[eidx]),
                                     int(self.weights[eidx]), sprop))
        # 2. network delivers pieces to dispatchers
        if self.net is not None:
            ready = [d.can_accept for d in self.dispatchers]
            for d_idx, (off, length, sprop) in self.net.deliver(ready):
                self.dispatchers[d_idx].accept(off, length, sprop)
            self.net.advance()
        # 3. replay engines emit one piece per network input position
        for pos, channels in enumerate(self._channels_at):
            if not channels:
                continue
            rr = self._rr[pos]
            for k in range(len(channels)):
                ch = channels[(rr + k) % len(channels)]
                piece = self.replays[ch].emit()
                if piece is None:
                    continue
                off, length, sprop = piece
                if self.net is not None:
                    accepted = self.net.offer(pos, off, length, sprop)
                else:
                    accepted = self.dispatchers[0].accept(off, length, sprop)
                if accepted:
                    self.replays[ch].consume()
                    self._rr[pos] = (channels.index(ch) + 1) % len(channels)
                break
        # 4. replay engines pull new {Off, Len} requests from the front end
        for ch, replay in enumerate(self.replays):
            src = fe_out[ch]
            if not src.empty and replay.can_accept:
                off, length, sprop = src.pop()
                replay.accept(off, length, sprop)

    # ------------------------------------------------------------------
    @property
    def conflicts(self) -> int:
        blocked = sum(d.blocked_cycles for d in self.dispatchers)
        stalls = self.net.stall_events + self.net.rejected_offers if self.net else 0
        return blocked + stalls

    @property
    def drained(self) -> bool:
        if any(r.busy for r in self.replays):
            return False
        if self.net is not None and not self.net.drained:
            return False
        return all(d.queue.empty for d in self.dispatchers)


class CentralEdgeStage:
    """GraphDynS-style in-order window allocator over all banks."""

    def __init__(self, config: AcceleratorConfig, dst: np.ndarray,
                 weights: np.ndarray) -> None:
        self.m = config.back_channels
        self.dst = dst
        self.weights = weights
        self.epe_depth = config.epe_queue_depth
        self.issue_limit = config.issue_limit
        self.queue: deque = deque()      # in-order {Off, Len, sprop}
        self.queue_capacity = config.fe_out_depth * config.front_channels
        self.window_conflicts = 0
        self.issued_reads = 0

    def tick(self, fe_out: list, epe_in: list[deque]) -> None:
        # 1. in-order greedy window issue
        m = self.m
        claimed: set[int] = set()
        issued_requests = 0
        while self.queue and issued_requests < self.issue_limit:
            off, length, sprop = self.queue[0]
            k = min(length, m)
            banks = [(off + j) % m for j in range(k)]
            if any(b in claimed for b in banks):
                self.window_conflicts += 1
                break                    # strict in-order: head blocks the rest
            if any(len(epe_in[b]) >= self.epe_depth for b in banks):
                break
            for j, b in enumerate(banks):
                eidx = off + j
                epe_in[b].append((int(self.dst[eidx]),
                                  int(self.weights[eidx]), sprop))
            self.issued_reads += k
            claimed.update(banks)
            if k == length:
                self.queue.popleft()
                issued_requests += 1
            else:
                self.queue[0] = (off + k, length - k, sprop)
                break                    # the window already spans all banks
        # 2. merge front-end requests in channel order (round-robin pull)
        for src in fe_out:
            if not src.empty and len(self.queue) < self.queue_capacity:
                self.queue.append(src.pop())

    @property
    def conflicts(self) -> int:
        return self.window_conflicts

    @property
    def drained(self) -> bool:
        return not self.queue


def _compatible_radix(positions: int, radix: int) -> int | None:
    """Largest r <= radix for which ``positions`` is an exact power.

    Returns None when positions < 2 (a single dispatcher needs no
    network at all).
    """
    if positions < 2:
        return None
    for r in range(min(radix, positions), 1, -1):
        v = positions
        while v > 1 and v % r == 0:
            v //= r
        if v == 1:
            return r
    return 2


def make_edge_stage(config: AcceleratorConfig, dst: np.ndarray,
                    weights: np.ndarray):
    if config.edge_site == "mdp":
        return MdpEdgeStage(config, dst, weights)
    return CentralEdgeStage(config, dst, weights)
