"""Engine registry, selection and fast-forward telemetry.

This module is the *only* place engine names, the cache-equivalence
class and the process-wide fast-forward telemetry live; every other
layer (CLI, sweep, benchmarks, the perf probe) resolves engines through
it.  The engine implementations themselves are imported lazily by
:func:`make_engine`, so the registry never depends on them at import
time (no cycles: ``reference``/``batched`` import the registry for
telemetry, not the other way around).
"""

from __future__ import annotations

import os
import types

from repro.errors import ConfigError

#: Engine registry, in documentation order.
ENGINES = ("reference", "batched", "soa")

#: Engine used when neither the caller nor the environment picks one.
DEFAULT_ENGINE = "batched"

#: Environment override honoured by :func:`resolve_engine` (and hence by
#: the CLI, the benchmark suite and every sweep worker).
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Cache-sharing version: engines carrying the same class string have
#: been verified cycle-exact against each other, so their results may
#: share cache entries.  Bump on any batched-engine change that has not
#: yet been re-verified by the differential suite.
_EQUIVALENCE_CLASS = "cycle-exact-v1"

#: Process-wide event-driven fast-forward telemetry (diagnostics only —
#: never part of :class:`~repro.accel.stats.SimStats`).  ``windows`` /
#: ``cycles_fast_forwarded`` / ``events`` count whole-phase structural
#: windows replayed in closed form and the value-plane ops that replaced
#: them; ``partial_windows`` counts phases replayed from a recorded
#: program whose *frontend* segment had to be re-simulated (per-
#: subnetwork window keys — see :mod:`repro.accel.engine.windows`), and
#: ``front_cycles_resimulated`` the frontend-only cycles that cost;
#: ``cycles_simulated`` counts cycles actually marched in full;
#: ``c_recorded_phases`` counts phases whose recording ran inside the
#: compiled SoA kernel (instead of the Python batched march), and
#: ``prologue_reuse`` counts phases that reused the resident
#: identity-seeded tProperty buffer instead of reseeding it.
#:
#: The dict is zeroed at the start of every :class:`BatchedEngine`
#: run (engine construction), so after a run it holds exactly that
#: run's numbers and two back-to-back simulations never leak counters
#: into each other.  A :class:`SlicedAcceleratorSim` constructs all of
#: its per-slice engines before the first scatter, so one sliced run
#: still aggregates across its slices.  Callers timing *several* runs
#: (the perf probe) must snapshot and sum per run; callers that need
#: per-engine attribution read the engine's own ``ffwd_*`` counters.
FFWD_TELEMETRY = {"windows": 0, "cycles_fast_forwarded": 0,
                  "cycles_simulated": 0, "events": 0,
                  "partial_windows": 0, "front_cycles_resimulated": 0,
                  "c_recorded_phases": 0, "prologue_reuse": 0}


def reset_ffwd_telemetry() -> dict:
    """Zero the fast-forward telemetry and return the live dict."""
    for key in FFWD_TELEMETRY:
        FFWD_TELEMETRY[key] = 0
    return FFWD_TELEMETRY


#: Read-only: the equivalence map is consulted by every cache-key
#: computation, so mutating it at runtime would silently alias cache
#: entries across unverified engines.
_ENGINE_EQUIVALENCE = types.MappingProxyType({
    "reference": _EQUIVALENCE_CLASS,
    "batched": _EQUIVALENCE_CLASS,
    # soa deliberately JOINS the class: it subclasses the batched engine
    # and swaps only the cycle marcher, and the differential suite plus
    # tests/test_engine_fuzz.py hold it to byte-identical SimStats —
    # so its results may share cache entries with the other two.
    "soa": _EQUIVALENCE_CLASS,
})


def resolve_engine(name: str | None = None) -> str:
    """Normalize an engine request: explicit name > $REPRO_ENGINE > default."""
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    key = str(name).strip().lower()
    if key not in ENGINES:
        raise ConfigError(
            f"unknown engine {name!r}; expected one of {ENGINES} "
            f"(or unset, which means ${ENGINE_ENV_VAR} then {DEFAULT_ENGINE!r})")
    return key


def engine_cache_token(name: str | None = None) -> str:
    """Cache-key contribution of an engine choice.

    Verified-equivalent engines map to the same token, so a sweep run
    with either engine warms the cache for both.
    """
    return _ENGINE_EQUIVALENCE[resolve_engine(name)]


def make_engine(name: str, sim):
    """Build the scatter engine ``name`` bound to one simulator."""
    if name == "reference":
        from repro.accel.engine.reference import ReferenceEngine
        return ReferenceEngine(sim)
    if name == "soa":
        from repro.accel.engine.soa import SoaEngine
        return SoaEngine(sim)
    from repro.accel.engine.batched import BatchedEngine
    return BatchedEngine(sim)
