"""Whole-phase structural windows: record one scatter phase, replay its twins.

The batched engine's strongest fast-forward rests on one invariant of
the simulated machine: **no control-flow decision in a scatter phase
reads a property value**.  Routing digits, arbitration winners, queue
capacities, vertex-combining probes (vertex-id equality), window
conflicts and convergence checks are all pure functions of the graph
structure, the presented ActiveVertex list, and the engine's
persistent arbiter state.  Float immediates only *ride along*.

For an all-active algorithm (PageRank) every iteration presents the
same ActiveVertex list, so when the arbiter state also matches a
previously simulated phase, the entire cycle evolution is provably
identical — the whole phase is one verified window.  The engine then:

* advances every ``SimStats`` counter and every conflict counter by
  the recorded per-phase delta (closed form, zero cycles ticked);
* restores the recorded end-of-phase arbiter state;
* re-executes only the *value plane*: leaf immediates are produced in
  one vectorized pass (``Process_Edge`` over the recorded edge ids),
  then the recorded vertex-combining merge log and delivery log replay
  the exact float-reduction tree of the simulated hardware, in the
  exact order — so tProperty comes out byte-identical.

**Per-subnetwork keys.**  The arbiter state is not one blob: it is
keyed per subnetwork as ``(frontend, edge, propagation)`` (each
segment built by that subnetwork's ``arb_key()``), and the memo holds
one program per distinct composite key, recorded on evidence of
recurrence (see :class:`PhaseMemo`).  Two consequences:

* a run whose arbiter state cycles through a few values (e.g. the
  odd-even parity flips each phase because phases take an odd number
  of cycles) records each recurring state once and replays everything
  after — the old single-program memo missed forever in that case;
* a phase that *partially* repeats — the edge+propagation segments
  match a recorded program but the frontend segment does not — is
  replayed by re-simulating **only the frontend** (a shadow instance
  driven by the recorded pull schedule; see
  :func:`repro.accel.engine.frontends.replay_frontend`).  If the
  shadow's emission stream matches the recording tick for tick, the
  downstream evolution is proven identical: the recorded edge and
  propagation segments replay in closed form, the frontend's counters
  and end state come from the shadow, and a *derived* program is
  stored under the new composite key so the next occurrence replays
  with no simulation at all.  A divergent shadow is discarded — the
  phase falls back to full simulation; a wrong key can only ever miss
  a window, never corrupt one.

In sliced mode (§5.3) every slice owns its own engine and therefore
its own memo — programs are keyed per slice by construction, and each
slice re-presents the same frontier every iteration, so sliced
all-active runs hit replay from iteration 2 onward.

Recording piggybacks on the first simulation of a phase at near-zero
cost: immediates are replaced by integer *slot ids* and the
``Reduce`` callable by a logging shim (merges append ``(a, b)`` and
keep the tail's slot, exactly like the hardware's in-FIFO combining;
deliveries — recognized because the tProperty accumulator is the
``None`` sentinel — append the delivered slot).  The value pass that
closes the recording also fills the caller's tProperty, so iteration
one needs no second simulation.

If any of this reasoning were wrong for some configuration, the
differential suite and the perf probe's built-in ``stats_identical``
check would fail loudly — the memo never silently changes results.
"""

from __future__ import annotations

import numpy as np

from repro.accel.engine.frontends import FrontTrace

#: Phases recorded (with live logging shims) per run — a memory bound,
#: not a heuristic: recording is only attempted for states proven (or
#: strongly expected) to recur, see :meth:`PhaseMemo.can_record`.
MAX_RECORDINGS = 8

#: Phases at the start of a run that record *speculatively* (before
#: any evidence of recurrence).  One: a stable arbiter state — the
#: common HiGraph-mini case — replays from iteration 2 with no wasted
#: work, while drifting runs pay for exactly one unproductive
#: recording, the same cost as the old single-program memo.
SPECULATIVE_PHASES = 1

#: A second-sighted state is recorded only when its recurrence period
#: is at most this many phases — the replay payoff must arrive within
#: a typical all-active run (PageRank defaults to ~10 iterations); a
#: state that recurs every 5+ phases would usually be recorded after
#: its last appearance.
MAX_RECURRENCE_PERIOD = 3

#: Total programs held per memo, recorded + derived.  Derived programs
#: share their structure arrays with the recording they came from, so
#: this bounds key-table growth, not log memory.
MAX_PROGRAMS = 64

#: Shadow-frontend replay attempts that may *fail* per run before the
#: partial-replay path disables itself (each failure costs one
#: frontend-only re-simulation of the phase prefix that matched).
MAX_PARTIAL_FAILURES = 4


class PhaseProgram:
    """One recorded scatter phase: structure log + counter deltas."""

    __slots__ = ("active", "news_e", "merge_a", "merge_b",
                 "deliver_slots", "deliver_dv", "leaf_u",
                 "stat_deltas", "counter_deltas", "end_state", "cycles",
                 "front_trace")

    def __init__(self, active: np.ndarray) -> None:
        self.active = active
        self.news_e: list = []          # leaf slot -> edge index
        self.merge_a: list = []         # combining log: tail slots
        self.merge_b: list = []         # combining log: merged-in slots
        self.deliver_slots: list = []   # delivery log, in delivery order
        self.deliver_dv: list = []      # destination vertex per delivery
        self.leaf_u: np.ndarray | None = None   # source vertex per leaf
        self.stat_deltas: dict = {}
        self.counter_deltas: tuple = ()
        self.end_state: tuple = ()
        self.cycles = 0
        self.front_trace = FrontTrace()  # frontend interface stream

    # ------------------------------------------------------------------
    def finalize(self, offsets: np.ndarray, dst: np.ndarray) -> None:
        """Derive the structural arrays the value pass needs."""
        e = np.asarray(self.news_e, dtype=np.int64)
        self.news_e = e
        # the CSR row containing edge e is its source vertex
        self.leaf_u = np.searchsorted(offsets, e, side="right") - 1
        slots = np.asarray(self.deliver_slots, dtype=np.int64)
        self.deliver_slots = slots.tolist()
        self.deliver_dv = dst[e[slots]].tolist() if len(slots) else []

    # ------------------------------------------------------------------
    def value_pass(self, algorithm, sprop_all: np.ndarray,
                   weights: np.ndarray, tprop: list) -> None:
        """Re-execute the float plane of the recorded phase.

        Leaves are vectorized; the merge and delivery loops replay the
        recorded reduction tree node for node, so every float op runs
        with the same operands in the same order as the simulated
        hardware's vPEs and combining units.
        """
        e = self.news_e
        if len(e) == 0:
            return
        leaf = sprop_all[self.leaf_u]
        if not algorithm.process_is_identity:
            leaf = algorithm.process_edge_vec(leaf, weights[e])
        vals = leaf.tolist()
        reduce_fn = algorithm.scalar_reduce_fn()
        for a, b in zip(self.merge_a, self.merge_b):
            vals[a] = reduce_fn(vals[a], vals[b])
        for dv, s in zip(self.deliver_dv, self.deliver_slots):
            tprop[dv] = reduce_fn(tprop[dv], vals[s])

    # ------------------------------------------------------------------
    def derive(self, front_deltas: tuple, front_end_state: tuple,
               n_front_sites: int) -> "PhaseProgram":
        """A copy of this program with the frontend segment replaced.

        Built after a successful shadow-frontend replay: the structure
        log, downstream deltas and downstream end state are provably
        shared; only the frontend's counter deltas and arbiter end
        state differ.  Structure arrays are shared by reference.
        """
        p = PhaseProgram(self.active)
        p.news_e = self.news_e
        p.merge_a = self.merge_a
        p.merge_b = self.merge_b
        p.deliver_slots = self.deliver_slots
        p.deliver_dv = self.deliver_dv
        p.leaf_u = self.leaf_u
        p.stat_deltas = self.stat_deltas
        p.counter_deltas = (tuple(front_deltas)
                            + tuple(self.counter_deltas[n_front_sites:]))
        p.end_state = (front_end_state, self.end_state[1], self.end_state[2])
        p.cycles = self.cycles
        p.front_trace = self.front_trace
        return p


class PhaseMemo:
    """Subnetwork-keyed store of recorded phases for one engine.

    Keys are ``(front_key, edge_key, prop_key)`` composites.  Full
    matches replay directly; a downstream-only match
    (``by_downstream``) triggers the shadow-frontend partial replay.

    Recording is *evidence-driven*.  For a fixed all-active frontier
    the phase map is deterministic — state ``k+1`` is a function of
    state ``k`` — so the state sequence is a tail leading into a cycle,
    and **any state seen twice is proven to recur forever**.  The memo
    therefore records the very first phase speculatively (a stable
    state replays from iteration 2), then records exactly the states
    it has seen before (second sighting ⇒ in the cycle ⇒ the recording
    will replay every period), plus any state once replay has already
    fired this run.  A run whose state just keeps drifting records one
    phase and nothing more — recording shims are not free, and an
    unreplayed recording is pure overhead.

    Failed partial attempts are remembered so one incompatible
    frontend state is only ever re-simulated once.
    """

    __slots__ = ("programs", "by_downstream", "recordings", "hits",
                 "phases", "seen", "recurring",
                 "partial_failures", "failed_pairs")

    def __init__(self) -> None:
        self.programs: dict = {}
        self.by_downstream: dict = {}
        self.recordings = 0
        self.hits = 0
        self.phases = 0
        self.seen: dict = {}
        self.recurring = False
        self.partial_failures = 0
        self.failed_pairs: set = set()

    def phase_starting(self, key: tuple) -> None:
        """Per-phase bookkeeping: is ``key`` proven to recur, soon?"""
        self.phases += 1
        last = self.seen.get(key)
        self.recurring = (last is not None
                          and self.phases - last <= MAX_RECURRENCE_PERIOD)
        self.seen[key] = self.phases

    def lookup(self, key: tuple, active: np.ndarray):
        prog = self.programs.get(key)
        if prog is not None and np.array_equal(prog.active, active):
            self.hits += 1
            return prog
        return None

    def can_record(self, key: tuple) -> bool:
        if self.recordings >= MAX_RECORDINGS or key in self.programs:
            return False
        return (self.phases <= SPECULATIVE_PHASES   # opening speculation
                or self.recurring                   # proven cycle state
                or self.hits > 0)                   # replay already pays here

    def store(self, key: tuple, prog: PhaseProgram) -> None:
        self.programs[key] = prog
        self.recordings += 1
        self.by_downstream.setdefault(key[1:], prog)

    # -- partial replay ------------------------------------------------
    def partial_candidate(self, key: tuple, active: np.ndarray):
        """A program whose edge+propagation segments match ``key``."""
        if self.partial_failures >= MAX_PARTIAL_FAILURES:
            return None
        prog = self.by_downstream.get(key[1:])
        if prog is None or (key[0], key[1:]) in self.failed_pairs:
            return None
        if not np.array_equal(prog.active, active):
            return None
        return prog

    def partial_failed(self, key: tuple) -> None:
        self.failed_pairs.add((key[0], key[1:]))
        self.partial_failures += 1

    def store_derived(self, key: tuple, prog: PhaseProgram) -> None:
        self.hits += 1      # a successful partial replay is a hit too
        if len(self.programs) < MAX_PROGRAMS:
            self.programs[key] = prog


class PhaseRecorder:
    """Live logging shims for the phase being recorded."""

    __slots__ = ("prog", "news_e", "merge_a", "merge_b", "deliver")

    def __init__(self, prog: PhaseProgram) -> None:
        self.prog = prog
        self.news_e = prog.news_e
        self.merge_a = prog.merge_a
        self.merge_b = prog.merge_b
        self.deliver = prog.deliver_slots

    def reduce(self, a, b):
        """Stand-in for ``Reduce`` while immediates are slot ids.

        A merge keeps the tail's slot (the hardware folds the mover
        into the FIFO tail); a delivery — the accumulator is the
        ``None`` sentinel the recorder put in tProperty — logs the
        delivered slot and leaves the sentinel in place.
        """
        if a is None:
            self.deliver.append(b)
            return None
        self.merge_a.append(a)
        self.merge_b.append(b)
        return a
