"""Build and load the compiled SoA march kernel (``_soa_march.c``).

The kernel ships as C source next to this module and is compiled on
first use with the system C compiler — no build step, no new runtime
dependency.  The shared object is cached under a content hash of the
source, so editing the kernel transparently rebuilds and stale caches
can never be loaded; the cache write is an atomic rename so concurrent
sweep workers race benignly.

Everything here degrades gracefully: no compiler, a failed compile, a
failed dlopen or an ABI mismatch all yield ``None`` from
:func:`load_kernel`, and the ``soa`` engine then falls back to the
(BYTE-IDENTICAL) inherited batched march.  ``REPRO_SOA_KERNEL=off`` is
the explicit kill-switch for the same fallback.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import re
import shutil
import subprocess
import tempfile
from pathlib import Path

#: Environment kill-switch: ``off``/``0``/``no`` disables the compiled
#: kernel (the soa engine still runs, via the inherited batched march).
KERNEL_ENV_VAR = "REPRO_SOA_KERNEL"

#: Environment kill-switch for *in-kernel phase recording* only:
#: ``REPRO_SOA_RECORD=off`` restores the pre-ABI-2 behavior where
#: recording phases fall back to the Python batched march (the compiled
#: kernel still runs replayed and non-recording phases).
RECORD_ENV_VAR = "REPRO_SOA_RECORD"

#: Environment override for the compiled-kernel cache directory.
CACHE_ENV_VAR = "REPRO_SOA_CACHE"

_SOURCE = Path(__file__).with_name("_soa_march.c")

#: memoized load result; ``False`` = not attempted yet
_LIB: ctypes.CDLL | None | bool = False


def kernel_disabled() -> bool:
    return os.environ.get(KERNEL_ENV_VAR, "").strip().lower() in (
        "off", "0", "no", "false")


def record_disabled() -> bool:
    return os.environ.get(RECORD_ENV_VAR, "").strip().lower() in (
        "off", "0", "no", "false")


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "soa"


def _find_compiler() -> str | None:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _expected_abi(source: str) -> int | None:
    m = re.search(r"#define\s+SOA_ABI_VERSION\s+(\d+)", source)
    return int(m.group(1)) if m else None


def _build(source_path: Path, out_path: Path) -> bool:
    cc = _find_compiler()
    if cc is None:
        return False
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(out_path.parent), suffix=".so")
    os.close(fd)
    try:
        # -O2, no -ffast-math: bit-exact IEEE float semantics are the
        # whole differential contract
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(source_path)],
            capture_output=True, timeout=120)
        if proc.returncode != 0:
            return False
        os.replace(tmp, out_path)       # atomic: racing workers converge
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def load_kernel() -> ctypes.CDLL | None:
    """Compile (once, content-hashed) and load the march kernel.

    Returns the loaded library with ``soa_march`` ready to call, or
    ``None`` when the kernel is disabled or unavailable — callers fall
    back to the batched march, never error.
    """
    global _LIB
    if _LIB is not False:
        return _LIB
    _LIB = None
    if kernel_disabled():
        return None
    try:
        source = _SOURCE.read_text()
    except OSError:
        return None
    expected_abi = _expected_abi(source)
    if expected_abi is None:
        return None
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    so_path = _cache_dir() / f"soa_march-{digest}.so"
    if not so_path.exists() and not _build(_SOURCE, so_path):
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
        lib.soa_abi_version.restype = ctypes.c_longlong
        lib.soa_abi_version.argtypes = ()
        if int(lib.soa_abi_version()) != expected_abi:
            return None
        lib.soa_march.restype = ctypes.c_longlong
        lib.soa_march.argtypes = (ctypes.c_void_p,)
    except (OSError, AttributeError):
        return None
    _LIB = lib
    return lib
