"""The batched scatter engine: cycle-exact orchestration, built for speed.

This module holds only the engine *control flow* — per-cycle
orchestration (propagation deliver → ePE offers → edge tick → frontend
tick, identical to the reference loop), the bulk fast-forward of
contention-free drains, and the whole-phase record/replay glue.  The
subnetwork implementations live in their own layers:

* :mod:`repro.accel.engine.fastnets` — the fast network models and
  site-③ propagation adapters;
* :mod:`repro.accel.engine.frontends` — site ① (and the shadow replay
  used for partially-repeating phases);
* :mod:`repro.accel.engine.edgestage` — site ②;
* :mod:`repro.accel.engine.windows` — phase programs and the
  per-subnetwork-keyed memo.

See the package docstring (``repro.accel.engine``) for the equivalence
contract and ``docs/performance.md`` for the invariants each
fast-forward rests on.
"""

from __future__ import annotations

import numpy as np

from repro.accel.engine.edgestage import make_batched_edge_stage
from repro.accel.engine.frontends import make_batched_frontend, replay_frontend
from repro.accel.engine.propagation import (
    _BatchedMdpPropagation,
    _BatchedXbarPropagation,
)
from repro.accel.engine.registry import FFWD_TELEMETRY, reset_ffwd_telemetry
from repro.accel.engine.windows import PhaseMemo, PhaseProgram, PhaseRecorder
from repro.errors import SimulationError


class BatchedEngine:
    """Cycle-exact batched scatter engine (see the package docstring).

    The orchestration per cycle is identical to the reference loop —
    propagation deliver, ePE offers, edge-stage tick, frontend tick —
    with occupancy counts gating each step and bulk fast-forwards for
    the contention-free drain regions.
    """

    name = "batched"

    def __init__(self, sim) -> None:
        # one run == one engine: zeroing here keeps the process-wide
        # telemetry per-run without relying on callers to reset it
        reset_ffwd_telemetry()
        config = sim.config
        self.config = config
        self.n = config.front_channels
        self.m = config.back_channels
        alg = sim.algorithm
        self.reduce_fn = alg.scalar_reduce_fn()
        self.process_fn = alg.process_edge
        #: per-edge kernel shape: 0 identity, 1 weight-independent
        #: (hoistable per request), 2 ``payload + w``, 3 ``min``, 4 call
        if alg.process_is_identity:
            self._proc = 0
        elif not alg.uses_weights:
            self._proc = 1
        elif alg.process_op == "add":
            self._proc = 2
        elif alg.process_op == "min":
            self._proc = 3
        else:
            self._proc = 4
        self.out_degree = sim.out_degree
        n, m = self.n, self.m
        # per-edge destination channel (dst % m), hoisted out of the
        # dispatcher hot loop; one vectorized pass per engine, reused
        # every iteration
        dst_mod = (sim.graph.dst % m).tolist()

        if config.propagation_site == "mdp":
            self.prop = _BatchedMdpPropagation(config, self.reduce_fn)
        else:
            self.prop = _BatchedXbarPropagation(config, self.reduce_fn)
        self.frontend = make_batched_frontend(config,
                                              sim.graph.offsets.tolist())
        self.edge = make_batched_edge_stage(config, self.frontend, sim._dst,
                                            dst_mod, sim._weights,
                                            self._proc, self.process_fn)

        #: event-driven fast-forward telemetry (not part of SimStats)
        self.ffwd_windows = 0
        self.ffwd_cycles = 0
        self.ffwd_events = 0
        self.ffwd_partial_windows = 0
        self.ffwd_front_cycles = 0
        #: whole-phase structural windows (see repro.accel.engine.windows):
        #: only all-active algorithms re-present identical frontiers
        self.phase_memo = PhaseMemo() if alg.all_active else None
        self.algorithm = alg
        self._true_reduce = self.reduce_fn
        self._offsets_np = sim.graph.offsets
        self._dst_np = sim.graph.dst
        self._weights_np = sim.graph.weights
        self.num_vertices = sim.graph.num_vertices

        # counter locations the record/replay pass touches, grouped by
        # subnetwork (the grouping is what makes partial replay possible)
        self._front_sites = self.frontend.counter_sites()
        self._edge_sites = self.edge.counter_sites()
        self._prop_sites = self.prop.counter_sites()
        self._counter_sites = (self._front_sites + self._edge_sites
                               + self._prop_sites)
        self._n_front_sites = len(self._front_sites)
        self._reduce_sites = [(self, "reduce_fn")] + self.prop.reduce_sites()

    # ------------------------------------------------------------------
    # Whole-phase structural windows (see repro.accel.engine.windows)
    # ------------------------------------------------------------------
    def _arb_state(self) -> tuple:
        """Persistent control state a phase's cycle evolution depends on,
        one segment per subnetwork.

        Everything else (queues, parts, per-phase counters) is empty or
        fresh at phase boundaries; parked-offer masks are provably zero
        once a phase drains, but they join the key anyway so a bug here
        could only ever *miss* a window, never corrupt one.
        """
        return (self.frontend.arb_key(), self.edge.arb_key(),
                self.prop.arb_key())

    def _restore_arb_state(self, state: tuple) -> None:
        self.frontend.restore_arb(state[0])
        self.edge.restore_arb(state[1])
        self.prop.restore_arb(state[2])

    def _replay_phase(self, prog, sprop_all, tprop: list, stats) -> None:
        """Fast-forward one proven-identical phase in closed form."""
        d = prog.stat_deltas
        stats.scatter_cycles += d["scatter_cycles"]
        stats.vpe_starvation_cycles += d["vpe_starvation_cycles"]
        stats.vpe_busy_cycles += d["vpe_busy_cycles"]
        stats.edges_processed += d["edges_processed"]
        for (obj, attr), delta in zip(self._counter_sites,
                                      prog.counter_deltas):
            if delta:
                setattr(obj, attr, getattr(obj, attr) + delta)
        self._restore_arb_state(prog.end_state)
        prog.value_pass(self.algorithm, sprop_all, self._weights_np, tprop)
        events = (len(prog.news_e) + len(prog.merge_a)
                  + len(prog.deliver_slots))
        self.ffwd_windows += 1
        self.ffwd_cycles += prog.cycles
        self.ffwd_events += events
        FFWD_TELEMETRY["windows"] += 1
        FFWD_TELEMETRY["cycles_fast_forwarded"] += prog.cycles
        FFWD_TELEMETRY["events"] += events

    def _partial_replay(self, key: tuple, prog, active, sprop_all,
                        tprop: list, stats) -> bool:
        """Replay a phase whose edge+propagation segments match ``prog``
        by re-simulating only the frontend (see windows.py).

        Returns True when the shadow frontend's emission stream matched
        the recording and the phase was committed in closed form.
        """
        shadow = make_batched_frontend(self.config, self.frontend.offsets)
        shadow.restore_arb(key[0])
        pu, psp = self._build_parts(active, sprop_all, int(active.size))
        shadow.load_parts(pu, psp)
        resim = replay_frontend(shadow, prog.front_trace)
        if resim is None:
            self.phase_memo.partial_failed(key)
            return False
        d = prog.stat_deltas
        stats.scatter_cycles += d["scatter_cycles"]
        stats.vpe_starvation_cycles += d["vpe_starvation_cycles"]
        stats.vpe_busy_cycles += d["vpe_busy_cycles"]
        stats.edges_processed += d["edges_processed"]
        # frontend counters come from the shadow (it started from zero)…
        front_deltas = tuple(getattr(obj, attr)
                             for obj, attr in shadow.counter_sites())
        for (obj, attr), delta in zip(self._front_sites, front_deltas):
            if delta:
                setattr(obj, attr, getattr(obj, attr) + delta)
        # …downstream counters and end state from the recorded program
        nf = self._n_front_sites
        for (obj, attr), delta in zip(self._counter_sites[nf:],
                                      prog.counter_deltas[nf:]):
            if delta:
                setattr(obj, attr, getattr(obj, attr) + delta)
        front_end = shadow.arb_key()
        self.frontend.restore_arb(front_end)
        self.edge.restore_arb(prog.end_state[1])
        self.prop.restore_arb(prog.end_state[2])
        prog.value_pass(self.algorithm, sprop_all, self._weights_np, tprop)
        # the verified composite state now replays in closed form
        self.phase_memo.store_derived(key, prog.derive(front_deltas,
                                                       front_end, nf))
        events = (len(prog.news_e) + len(prog.merge_a)
                  + len(prog.deliver_slots))
        self.ffwd_windows += 1
        self.ffwd_partial_windows += 1
        self.ffwd_cycles += prog.cycles
        self.ffwd_front_cycles += resim
        self.ffwd_events += events
        FFWD_TELEMETRY["windows"] += 1
        FFWD_TELEMETRY["partial_windows"] += 1
        FFWD_TELEMETRY["cycles_fast_forwarded"] += prog.cycles
        FFWD_TELEMETRY["front_cycles_resimulated"] += resim
        FFWD_TELEMETRY["events"] += events
        return True

    def _finish_recording(self, key: tuple, prog, counters0: list,
                          cycles: int, starved: int, busy: int,
                          reduces: int, sprop_all, tprop: list) -> None:
        for obj, attr in self._reduce_sites:
            setattr(obj, attr, self._true_reduce)
        self.edge.rec_news = None
        self.frontend.trace = None
        prog.front_trace.finish()
        prog.stat_deltas = {"scatter_cycles": cycles,
                            "vpe_starvation_cycles": starved,
                            "vpe_busy_cycles": busy,
                            "edges_processed": reduces}
        prog.counter_deltas = tuple(
            getattr(obj, attr) - before
            for (obj, attr), before in zip(self._counter_sites, counters0))
        prog.end_state = self._arb_state()
        prog.cycles = cycles
        prog.finalize(self._offsets_np, self._dst_np)
        prog.value_pass(self.algorithm, sprop_all, self._weights_np, tprop)
        self.phase_memo.store(key, prog)

    # ------------------------------------------------------------------
    def _build_parts(self, active, sprop_all, size: int):
        """ActiveVertex parts: per-channel flat lists, round-robin order."""
        n = self.n
        if size < 4 * n:
            # tiny frontier: a python loop beats 2n numpy slices
            us = active.tolist()
            sps = sprop_all[active].tolist()
            pu: list[list] = [[] for _ in range(n)]
            psp: list[list] = [[] for _ in range(n)]
            for i, u in enumerate(us):
                pu[i % n].append(u)
                psp[i % n].append(sps[i])
        else:
            sel = sprop_all[active]
            pu = [active[ch::n].tolist() for ch in range(n)]
            psp = [sel[ch::n].tolist() for ch in range(n)]
        return pu, psp

    # ------------------------------------------------------------------
    # Scatter phase
    # ------------------------------------------------------------------
    def scatter(self, active, sprop_all, tprop: list, stats) -> None:
        """Memo prologue (replay / partial replay / record decision), then
        the cycle march.  The march itself is a separate method so a
        subclassing engine (``soa``) can swap the marcher while reusing
        the whole window machinery unchanged."""
        memo = self.phase_memo
        record_key = None
        if memo is not None:
            key = self._arb_state()
            memo.phase_starting(key)
            prog = memo.lookup(key, active)
            if prog is not None:
                self._replay_phase(prog, sprop_all, tprop, stats)
                return
            prog = memo.partial_candidate(key, active)
            if prog is not None and self._partial_replay(
                    key, prog, active, sprop_all, tprop, stats):
                return
            if memo.can_record(key):
                record_key = key
        self._march(active, sprop_all, tprop, stats, record_key)

    def scatter_phase(self, active, sprop_all, identity: float,
                      stats) -> np.ndarray:
        """One whole scatter phase with a fresh identity-seeded tProperty;
        returns the reduced array.  This is the engine-level seam the
        ``soa`` engine overrides to keep the buffer resident across
        phases (the per-phase marshalling prologue)."""
        tprop = [identity] * self.num_vertices
        self.scatter(active, sprop_all, tprop, stats)
        return np.asarray(tprop, dtype=np.float64)

    def _march(self, active, sprop_all, tprop: list, stats,
               record_key: tuple | None) -> None:
        """Simulate one scatter phase cycle by cycle (recording it when
        ``record_key`` is set)."""
        recorder = None
        rec_trace = None
        fe = self.frontend
        edge = self.edge
        if record_key is not None:
            prog = PhaseProgram(active.copy())
            recorder = PhaseRecorder(prog)
            rec_trace = prog.front_trace
            fe.trace = rec_trace
            caller_tprop = tprop
            tprop = [None] * self.num_vertices
            edge.rec_news = recorder.news_e
            for obj, attr in self._reduce_sites:
                setattr(obj, attr, recorder.reduce)
            counters0 = [getattr(obj, attr)
                         for obj, attr in self._counter_sites]
        n, m = self.n, self.m
        size = int(active.size)
        if size:
            pu, psp = self._build_parts(active, sprop_all, size)
            fe.load_parts(pu, psp)

        expected = int(self.out_degree[active].sum())
        fe_pending = size
        reduces = 0
        cycles = 0
        starved = 0
        busy = 0
        limit = 4 * expected + 8 * fe_pending + 10_000

        prop = self.prop
        frontend_tick = fe.tick
        edge_tick = edge.tick
        edge_active = edge.active
        deliver_reduce = prop.deliver_reduce
        epe_q = edge.epe_q
        prop_is_mdp = prop.kind == "mdp"
        if prop_is_mdp:
            pnet = prop.net
            table0 = pnet.table[0]
            queues0 = pnet.queues[0]
            combining = pnet.combining
            p_block = pnet.block_len
            reduce_fn = self.reduce_fn
            pnet_deliver = pnet.deliver_reduce
            pnet_advance = pnet.advance
        else:
            xbar_offer = prop.xbar.offer

        while fe_pending > 0 or reduces < expected:
            # -- bulk fast-forward: the front end has retired everything
            #    and the edge pipeline + ePE queues are empty, so the
            #    records still in flight can only drain from the
            #    propagation site — no new offers, no contention ahead.
            if (fe_pending == 0 and not edge.epe_count and prop.count
                    and not edge_active()):
                cyc, got_total, red = prop.drain_reduce(tprop)
                cycles += cyc
                if cycles > limit:
                    break               # converges to the error below
                starved += cyc * m - got_total
                busy += got_total
                reduces += red
                fe.skip(cyc)
                if rec_trace is not None:
                    rec_trace.record_skip(cyc)
                continue                # loop condition now decides
            cycles += 1
            if cycles > limit:
                raise SimulationError(
                    f"scatter did not converge within {limit} cycles "
                    f"({reduces}/{expected} reduces, {fe_pending} vertices "
                    f"pending) — queue sizing bug?")
            if rec_trace is not None:
                rec_trace.begin_cycle()
            # 1. propagation delivers; vPEs reduce into tProperty banks
            if prop_is_mdp:
                got, red = pnet_deliver(tprop)
                if pnet.count:
                    pnet_advance()
            else:
                got, red = deliver_reduce(tprop)
            starved += m - got
            busy += got
            reduces += red
            # 2. ePEs: Process_Edge, one record per channel per cycle
            total = edge.epe_count
            if total and prop_is_mdp:
                # inlined _FastMdpNet.offer, minus the per-record call
                consumed = 0
                added = 0
                seen = 0
                for k, q in enumerate(epe_q):
                    if q:
                        seen += 1
                        item = q[0]
                        tq = queues0[table0[k][item[0]]]
                        if tq:
                            if combining and tq[-1][1] == item[1]:
                                tail = tq[-1]
                                tq[-1] = (tail[0], tail[1],
                                          reduce_fn(tail[2], item[2]),
                                          tail[3] + item[3])
                                q.popleft()
                                consumed += 1
                            elif len(tq) > p_block:
                                pnet.rejected_offers += 1
                            else:
                                tq.append(item)
                                added += 1
                                q.popleft()
                                consumed += 1
                        else:
                            tq.append(item)
                            added += 1
                            q.popleft()
                            consumed += 1
                        if seen == total:
                            break
                edge.epe_count -= consumed
                pnet.counts[0] += added
                pnet.count += added
            elif total:
                consumed = 0
                seen = 0
                for k, q in enumerate(epe_q):
                    if q:
                        seen += 1
                        if xbar_offer(k, q[0]):
                            q.popleft()
                            consumed += 1
                        if seen == total:
                            break
                edge.epe_count -= consumed
            # 3. Edge Array access (site ②)
            edge_tick()
            # 4. Offset Array access + ActiveVertex fetch (site ①)
            fe_pending -= frontend_tick()
        else:
            stats.scatter_cycles += cycles
            stats.vpe_starvation_cycles += starved
            stats.vpe_busy_cycles += busy
            stats.edges_processed += reduces
            FFWD_TELEMETRY["cycles_simulated"] += cycles
            if recorder is not None:
                self._finish_recording(record_key, recorder.prog, counters0,
                                       cycles, starved, busy, reduces,
                                       sprop_all, caller_tprop)
            return
        raise SimulationError(
            f"scatter did not converge within {limit} cycles "
            f"({reduces}/{expected} reduces, {fe_pending} vertices "
            f"pending) — queue sizing bug?")

    # ------------------------------------------------------------------
    def harvest(self, stats) -> None:
        stats.offset_deferrals = self.frontend.deferrals
        stats.edge_conflicts = self.edge.edge_conflicts()
        stats.propagation_conflicts = self.prop.conflicts
