"""Scatter-phase simulation engines — the ``SimEngine`` seam.

Every figure, sweep and report bottoms out in the scatter-phase cycle
loop, so it exists in two interchangeable implementations:

* ``reference`` — the original cycle-by-cycle loop driving the
  component models in :mod:`repro.accel.frontend`,
  :mod:`repro.accel.edge_access` and :mod:`repro.accel.backend`.  It is
  the golden engine: deliberately literal, one method call per
  component per cycle, and the only engine the pipeline tracer can
  sample.
* ``batched`` — a specialized re-implementation of the same cycle
  semantics built for wall-clock speed: numpy-vectorized iteration
  setup, occupancy-counted queue banks, precomputed routing tables,
  flat record tuples with inlined vertex-combining, closed-form scalar
  kernels, per-cycle no-backpressure window proofs, bulk fast-forwards
  of contention-free drains, and whole-phase structural windows with
  per-subnetwork keys (partially-repeating and sliced phases replay
  too).  ``docs/performance.md`` documents every invariant.
* ``soa`` — the batched engine with its cycle marcher swapped for a
  compiled structure-of-arrays kernel (``_soa_march.c``): FIFO banks as
  preallocated int64/float64 rings with head/occupancy vectors, routing
  as flat ``table[stage][pos][dest]`` tensors, one C call per scatter
  phase.  Recording phases march in C too — the kernel logs the window
  memo's structure stream in companion buffers while computing real
  float values (``$REPRO_SOA_RECORD=off`` restores the Python-recording
  fallback) — and tProperty stays resident across phases, reseeded only
  at the delivered vertices.  Undeclared value-plane kernels fall back
  to the inherited batched march; no compiler means the whole engine
  degrades to batched semantics (still byte-identical).

The package mirrors the decomposition the paper argues for in
hardware — no central blob, one module per concern:

=================  ====================================================
``registry.py``    engine names, selection (``$REPRO_ENGINE``), the
                   cache-equivalence class, fast-forward telemetry
``reference.py``   the golden component-model cycle loop
``batched.py``     the batched engine's control flow (cycle loop, bulk
                   drains, record/replay glue) — and nothing else
``fastnets.py``    fast network models (``_FastMdpNet`` / ``_FastXbar``
                   / ``_FastRangeNet``) and routing tables
``frontends.py``   site-① frontend subnetworks + the shadow replay
                   driver for partially-repeating phases
``edgestage.py``   site-② edge-access stages
``propagation.py`` site-③ propagation adapters over the fast networks
``soa.py``         the soa engine: SoA state marshalling + the C seam
``soakernel.py``   compile/cache/load of ``_soa_march.c`` (kill-switches
                   ``$REPRO_SOA_KERNEL=off``, ``$REPRO_SOA_RECORD=off``)
``windows.py``     whole-phase structural windows: phase programs, the
                   per-subnetwork-keyed memo, recording shims
=================  ====================================================

**Equivalence contract**: both engines must produce *identical*
:class:`~repro.accel.stats.SimStats` — every counter, not just totals —
and identical result properties for every configuration, graph and
algorithm.  The differential test suite
(``tests/test_engine_differential.py``) enforces this over the tier-1
config x graph x algorithm matrix plus randomized rmat/ER/star/grid
graphs, partial-repeat and sliced-replay adversarial cases.  Because
the engines are equivalent, they share result-cache entries:
:func:`engine_cache_token` returns the *equivalence class* both
engines belong to, and that token — not the engine name — enters
:meth:`repro.sweep.jobs.SweepJob.cache_key`.  If the batched engine is
ever changed in a way that has not been re-verified, bump
``_EQUIVALENCE_CLASS`` (in ``registry.py``) so its results stop
aliasing reference ones.

This package replaced the former ``repro/accel/engine.py`` monolith
(and absorbed ``repro/accel/phase_memo.py``); every public name is
re-exported here, so ``from repro.accel.engine import ...`` keeps
working unchanged.
"""

from repro.accel.engine.batched import BatchedEngine
from repro.accel.engine.fastnets import (
    _FastMdpNet,
    _FastRangeNet,
    _FastXbar,
)
from repro.accel.engine.reference import ReferenceEngine
from repro.accel.engine.registry import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINES,
    FFWD_TELEMETRY,
    _EQUIVALENCE_CLASS,
    engine_cache_token,
    make_engine,
    reset_ffwd_telemetry,
    resolve_engine,
)
from repro.accel.engine.soa import SoaEngine
from repro.accel.engine.windows import PhaseMemo, PhaseProgram, PhaseRecorder

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "FFWD_TELEMETRY",
    "reset_ffwd_telemetry",
    "resolve_engine",
    "engine_cache_token",
    "make_engine",
    "ReferenceEngine",
    "BatchedEngine",
    "SoaEngine",
    "PhaseMemo",
    "PhaseProgram",
    "PhaseRecorder",
]
