"""Site ① frontend subnetworks for the batched engine.

The frontend (ActiveVertex parts → routing network → issue queues →
odd-even / rotating-scan arbitration → ``{Off, Len}`` requests in the
``fe_out`` queues) is its own class here, with one implementation per
offset-site design.  Two consumers exist:

* the live :class:`~repro.accel.engine.batched.BatchedEngine`, which
  ticks the frontend once per simulated cycle; and
* the **shadow replay** of partially-repeating phases (see
  :mod:`repro.accel.engine.windows`): when a recorded phase matches the
  current edge+propagation arbiter state but not the frontend's, only
  the frontend is re-simulated — against the recorded per-cycle pull
  schedule — and its emission stream is verified against the recording.
  A verified match proves the downstream evolution is identical, so the
  recorded edge/propagation segments replay in closed form.

The frontend's interface to the rest of the engine is exactly two
streams, both captured by :class:`FrontTrace` during recording:

* **retires** — per cycle, the ``(channel, vertex)`` pairs whose
  ``{Off, Len}`` request entered ``fe_out`` (zero-degree vertices
  retire without emitting; they are still part of the stream);
* **pulls** — per cycle, the channels the edge stage popped from
  ``fe_out`` *before* the frontend ticked (the scatter loop runs the
  edge stage first each cycle).

Everything else the frontend reads (``fe_out`` occupancy) or mutates
(parts, issue queues, its router) is private, so identical pulls plus
identical retires imply an identical interface to site ②.
"""

from __future__ import annotations

from collections import deque

from repro.accel.engine.fastnets import _FastMdpNet, _FastXbar


class FrontTrace:
    """Recorded frontend interface stream of one scatter phase.

    ``pulls[t]`` / ``retires[t]`` describe frontend tick ``t``;
    ``skips`` holds ``(t, k)`` pairs — ``k`` frontend-idle cycles (the
    bulk propagation drain) elapsed after tick ``t-1`` and before tick
    ``t``, advancing only per-cycle arbiter state.
    """

    __slots__ = ("pulls", "retires", "skips", "cur_pulls", "cur_retires")

    def __init__(self) -> None:
        self.pulls: list[tuple] = []
        self.retires: list[tuple] = []
        self.skips: list[tuple[int, int]] = []
        self.cur_pulls: list | None = None
        self.cur_retires: list | None = None

    def _flush(self) -> None:
        if self.cur_pulls is not None:
            self.pulls.append(tuple(self.cur_pulls))
            # at most one retire per channel per cycle, and each goes to
            # its own fe_out queue — intra-cycle order across channels is
            # not observable downstream, so the stream is kept (and
            # compared) in channel order
            self.retires.append(tuple(sorted(self.cur_retires)))
            self.cur_pulls = None
            self.cur_retires = None

    def begin_cycle(self) -> None:
        self._flush()
        self.cur_pulls = []
        self.cur_retires = []

    def record_skip(self, k: int) -> None:
        self._flush()
        self.skips.append((len(self.pulls), k))

    def finish(self) -> None:
        self._flush()


class _RetireLog:
    """Minimal retire sink for a shadow frontend (no pull recording)."""

    __slots__ = ("cur_retires",)

    def __init__(self) -> None:
        self.cur_retires: list = []


class _MdpFrontend:
    """Site ①, MDP offset network + §4.1 odd-even issue arbitration."""

    kind = "mdp"

    __slots__ = ("n", "offsets", "net", "parity",
                 "parts_u", "parts_sp", "parts_head", "parts_alive",
                 "issue_q", "issue_count", "issue_depth",
                 "fe_out", "fe_count", "fe_depth", "deferrals", "trace")

    def __init__(self, config, offsets: list) -> None:
        n = config.front_channels
        self.n = n
        self.offsets = offsets
        self.net = _FastMdpNet(n, config.radix, config.fifo_depth)
        self.parity = 0
        self.parts_u: list[list] = [[] for _ in range(n)]
        self.parts_sp: list[list] = [[] for _ in range(n)]
        self.parts_head = [0] * n
        self.parts_alive: list[int] = []
        self.issue_q = [deque() for _ in range(n)]  # (u % n, u, sprop)
        self.issue_count = 0
        self.issue_depth = config.issue_queue_depth
        self.fe_out = [deque() for _ in range(n)]   # (off, len, sprop)
        self.fe_count = 0
        self.fe_depth = config.fe_out_depth
        self.deferrals = 0
        self.trace = None       # FrontTrace (recording) or _RetireLog (shadow)

    # -- phase-window plumbing -----------------------------------------
    def arb_key(self) -> tuple:
        return (self.parity,)

    def restore_arb(self, key: tuple) -> None:
        (self.parity,) = key

    def skip(self, k: int) -> None:
        """Advance per-cycle arbiter state across ``k`` idle cycles."""
        self.parity ^= k & 1

    def counter_sites(self) -> list:
        return [(self, "deferrals"), (self.net, "stall_events"),
                (self.net, "rejected_offers")]

    # ------------------------------------------------------------------
    def load_parts(self, pu: list[list], psp: list[list]) -> None:
        self.parts_u = pu
        self.parts_sp = psp
        self.parts_head = [0] * self.n
        self.parts_alive = [p for p in range(self.n) if pu[p]]

    def _retire(self, ch: int) -> int:
        """Pop the granted head and emit its {Off, Len} request."""
        q = self.issue_q[ch]
        _, u, sprop = q.popleft()
        self.issue_count -= 1
        if self.trace is not None:
            self.trace.cur_retires.append((ch, u))
        offsets = self.offsets
        off = offsets[u]
        length = offsets[u + 1] - off
        if length > 0:
            self.fe_out[ch].append((off, length, sprop))
            self.fe_count += 1
        return 1

    def _inject_parts(self) -> None:
        """Offer one head per non-empty ActiveVertex part, stage-0 offer
        inlined."""
        net = self.net
        n = self.n
        table0 = net.table[0]
        queues0 = net.queues[0]
        block_len = net.block_len
        parts_u, parts_sp, heads = self.parts_u, self.parts_sp, self.parts_head
        exhausted = 0
        added = 0
        for p in self.parts_alive:
            lst = parts_u[p]
            h = heads[p]
            u = lst[h]
            tq = queues0[table0[p][u % n]]
            if tq and len(tq) > block_len:
                net.rejected_offers += 1
                continue
            tq.append((u % n, u, parts_sp[p][h]))
            added += 1
            h += 1
            heads[p] = h
            if h == len(lst):
                exhausted += 1
        if added:
            net.counts[0] += added
            net.count += added
        if exhausted:
            self.parts_alive = [p for p in self.parts_alive
                                if heads[p] < len(parts_u[p])]

    def tick(self) -> int:
        n = self.n
        net = self.net
        retired = 0
        # -- issue: §4.1 odd-even arbitration over the request heads
        if self.issue_count:
            fe_out = self.fe_out
            fe_depth = self.fe_depth
            issue_q = self.issue_q
            parity = self.parity
            claimed: dict[int, int] | None = None
            for ch in range(parity, n, 2):      # priority parity: grant
                q = issue_q[ch]
                if q and len(fe_out[ch]) < fe_depth:
                    u = q[0][1]
                    if claimed is None:
                        claimed = {}
                    claimed[u % n] = u
                    claimed[(u + 1) % n] = u + 1
                    retired += self._retire(ch)
            for ch in range(1 - parity, n, 2):  # defer to claimed banks
                q = issue_q[ch]
                if q and len(fe_out[ch]) < fe_depth:
                    u = q[0][1]
                    a2 = u + 1
                    if claimed is None:
                        claimed = {u % n: u, a2 % n: a2}
                        retired += self._retire(ch)
                    elif (claimed.get(u % n, u) == u
                          and claimed.get(a2 % n, a2) == a2):
                        claimed[u % n] = u
                        claimed[a2 % n] = a2
                        retired += self._retire(ch)
                    else:
                        self.deferrals += 1
        self.parity ^= 1
        # -- route: deliver into issue queues, advance, inject parts
        if net.counts[net.num_stages - 1]:
            self.issue_count += net.deliver_into(self.issue_q,
                                                 self.issue_depth)
        if net.count:
            net.advance()
        if self.parts_alive:
            self._inject_parts()
        return retired


class _XbarFrontend:
    """Site ①, arbitrated crossbar + rotating greedy claim arbitration."""

    kind = "xbar"

    __slots__ = ("n", "offsets", "xbar", "fstart",
                 "parts_u", "parts_sp", "parts_head", "parts_alive",
                 "issue_q", "issue_count", "issue_depth",
                 "fe_out", "fe_count", "fe_depth", "deferrals", "trace")

    def __init__(self, config, offsets: list) -> None:
        n = config.front_channels
        self.n = n
        self.offsets = offsets
        self.xbar = _FastXbar(n, n, config.fifo_depth)
        self.fstart = 0
        self.parts_u: list[list] = [[] for _ in range(n)]
        self.parts_sp: list[list] = [[] for _ in range(n)]
        self.parts_head = [0] * n
        self.parts_alive: list[int] = []
        self.issue_q = [deque() for _ in range(n)]  # (u % n, u, sprop)
        self.issue_count = 0
        self.issue_depth = config.issue_queue_depth
        self.fe_out = [deque() for _ in range(n)]   # (off, len, sprop)
        self.fe_count = 0
        self.fe_depth = config.fe_out_depth
        self.deferrals = 0
        self.trace = None

    # -- phase-window plumbing -----------------------------------------
    def arb_key(self) -> tuple:
        return (self.fstart, tuple(self.xbar.rr))

    def restore_arb(self, key: tuple) -> None:
        self.fstart = key[0]
        self.xbar.rr[:] = key[1]

    def skip(self, k: int) -> None:
        self.fstart = (self.fstart + k) % self.n

    def counter_sites(self) -> list:
        return [(self, "deferrals"), (self.xbar, "conflicts")]

    # ------------------------------------------------------------------
    def load_parts(self, pu: list[list], psp: list[list]) -> None:
        self.parts_u = pu
        self.parts_sp = psp
        self.parts_head = [0] * self.n
        self.parts_alive = [p for p in range(self.n) if pu[p]]

    def _retire(self, ch: int) -> int:
        q = self.issue_q[ch]
        _, u, sprop = q.popleft()
        self.issue_count -= 1
        if self.trace is not None:
            self.trace.cur_retires.append((ch, u))
        offsets = self.offsets
        off = offsets[u]
        length = offsets[u + 1] - off
        if length > 0:
            self.fe_out[ch].append((off, length, sprop))
            self.fe_count += 1
        return 1

    def _inject_parts(self) -> None:
        """Offer one head per non-empty ActiveVertex part to the router."""
        n = self.n
        offer = self.xbar.offer
        parts_u, parts_sp, heads = self.parts_u, self.parts_sp, self.parts_head
        exhausted = 0
        for p in self.parts_alive:
            lst = parts_u[p]
            h = heads[p]
            u = lst[h]
            if offer(p, (u % n, u, parts_sp[p][h])):
                h += 1
                heads[p] = h
                if h == len(lst):
                    exhausted += 1
        if exhausted:
            self.parts_alive = [p for p in self.parts_alive
                                if heads[p] < len(parts_u[p])]

    def tick(self) -> int:
        n = self.n
        retired = 0
        # -- issue: centralized greedy claim arbitration (rotating scan)
        if self.issue_count:
            fe_out = self.fe_out
            fe_depth = self.fe_depth
            issue_q = self.issue_q
            start = self.fstart
            claimed: set[int] = set()
            for k in range(n):
                ch = (start + k) % n
                q = issue_q[ch]
                if q and len(fe_out[ch]) < fe_depth:
                    u = q[0][1]
                    b1, b2 = u % n, (u + 1) % n
                    if b1 in claimed or b2 in claimed:
                        self.deferrals += 1
                    else:
                        claimed.add(b1)
                        claimed.add(b2)
                        retired += self._retire(ch)
        self.fstart = (self.fstart + 1) % n
        # -- route: crossbar tick under issue-queue budgets, then inject
        xbar = self.xbar
        if xbar.count:
            issue_q = self.issue_q
            budget = [self.issue_depth - len(q) for q in issue_q]
            delivered = xbar.tick_budget(budget)
            for item in delivered:
                issue_q[item[0]].append(item)
            self.issue_count += len(delivered)
        if self.parts_alive:
            self._inject_parts()
        return retired


def make_batched_frontend(config, offsets: list):
    """Build the batched frontend for ``config.offset_site``."""
    if config.offset_site == "mdp":
        return _MdpFrontend(config, offsets)
    return _XbarFrontend(config, offsets)


def replay_frontend(fe, trace: FrontTrace) -> int | None:
    """Drive a shadow frontend through a recorded phase's pull schedule.

    Returns the number of frontend cycles re-simulated when the shadow's
    retire stream matches the recording tick for tick — which proves the
    phase's whole downstream evolution is identical to the recorded one
    (see the module docstring) — or ``None`` on the first divergence.
    The shadow is discarded either way; on success the caller commits
    its arbiter end state and counters to the live frontend.
    """
    log = _RetireLog()
    fe.trace = log
    cur = log.cur_retires
    fe_out = fe.fe_out
    retires = trace.retires
    skips = trace.skips
    si = 0
    ns = len(skips)
    tick = fe.tick
    try:
        for t, pulls in enumerate(trace.pulls):
            while si < ns and skips[si][0] == t:
                fe.skip(skips[si][1])
                si += 1
            if pulls:
                for ch in pulls:
                    fe_out[ch].popleft()
                fe.fe_count -= len(pulls)
            tick()
            if tuple(sorted(cur)) != retires[t]:
                return None
            del cur[:]
    except IndexError:
        # a pull hit an empty fe_out queue: the shadow diverged earlier
        # in a way retire comparison alone could not see — treat as miss
        return None
    while si < ns:
        fe.skip(skips[si][1])
        si += 1
    fe.trace = None
    return len(trace.pulls)
