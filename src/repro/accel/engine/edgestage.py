"""Site ② edge-access stages for the batched engine.

One class per edge-site design: the MDP variant (replay engines → range
network → decentralized dispatchers) and the GraphDynS-style central
window engine.  Both pull ``{Off, Len}`` requests from the frontend's
``fe_out`` queues and emit processed edge records into the per-channel
ePE queues the scatter loop offers to the propagation site.

The per-edge ``Process_Edge`` kernel is resolved once at construction
(``proc`` encodes the closed form declared by the algorithm); while a
phase is being recorded for replay (see
:mod:`repro.accel.engine.windows`), ``rec_news`` is a live slot-id list
and the stage emits integer slot ids instead of float immediates.
"""

from __future__ import annotations

from collections import deque

from repro.accel.edge_access import _compatible_radix
from repro.accel.engine.fastnets import _FastRangeNet
from repro.mdp.replay import split_request


class _MdpEdgeStage:
    """Decentralized dispatchers behind a range-splitting network."""

    kind = "mdp"

    __slots__ = ("m", "fe", "epe_q", "epe_count", "epe_depth",
                 "dst", "dst_mod", "weights", "process_fn", "proc",
                 "rec_news", "w", "disp_q", "disp_count", "disp_depth",
                 "disp_blocked", "disp_stall", "rnet", "replay_depth",
                 "rp_pending", "rp_pieces", "rp_busy_total",
                 "_position_of", "_channels_at", "_busy_at", "rp_rr")

    def __init__(self, config, fe, dst: list, dst_mod: list, weights: list,
                 proc: int, process_fn) -> None:
        n, m = config.front_channels, config.back_channels
        self.m = m
        self.fe = fe
        self.epe_q = [deque() for _ in range(m)]    # (dst % m, dst, imm, 1)
        self.epe_count = 0
        self.epe_depth = config.epe_queue_depth
        self.dst = dst
        self.dst_mod = dst_mod
        self.weights = weights
        self.process_fn = process_fn
        self.proc = proc
        self.rec_news: list | None = None
        w = config.num_dispatchers
        self.w = w
        self.disp_q = [deque() for _ in range(w)]   # (off, len, sprop)
        self.disp_count = 0
        self.disp_depth = config.dispatcher_queue_depth
        self.disp_blocked = 0
        #: per-dispatcher memo of the full ePE bank that blocked the
        #: head last cycle (-1: none).  Banks are private to one
        #: dispatcher and the head cannot change while blocked, so
        #: a still-full memoized bank proves the head stays blocked
        #: without rescanning its whole bank window.
        self.disp_stall = [-1] * w
        net_radix = _compatible_radix(w, config.radix)
        self.rnet = (_FastRangeNet(m, w, net_radix, config.fifo_depth)
                     if net_radix is not None else None)
        self.replay_depth = config.replay_queue_depth
        self.rp_pending = [deque() for _ in range(n)]  # (off, len, sprop)
        self.rp_pieces = [deque() for _ in range(n)]
        self.rp_busy_total = 0
        self._position_of = [(ch * w) // n if n <= w else ch % w
                             for ch in range(n)]
        self._channels_at: list[list[int]] = [[] for _ in range(w)]
        for ch, pos in enumerate(self._position_of):
            self._channels_at[pos].append(ch)
        self._busy_at = [0] * w
        self.rp_rr = [0] * w

    # -- phase-window plumbing -----------------------------------------
    def arb_key(self) -> tuple:
        return (tuple(self.disp_stall), tuple(self.rp_rr))

    def restore_arb(self, key: tuple) -> None:
        self.disp_stall[:] = key[0]
        self.rp_rr[:] = key[1]

    def counter_sites(self) -> list:
        sites = [(self, "disp_blocked")]
        if self.rnet is not None:
            sites += [(self.rnet, "stall_events"),
                      (self.rnet, "rejected_offers")]
        return sites

    def edge_conflicts(self) -> int:
        return self.disp_blocked + (
            self.rnet.stall_events + self.rnet.rejected_offers
            if self.rnet is not None else 0)

    def active(self) -> bool:
        return bool(self.disp_count or self.fe.fe_count or self.rp_busy_total
                    or (self.rnet is not None and self.rnet.count))

    # ------------------------------------------------------------------
    def tick(self) -> None:
        m = self.m
        # 1. dispatchers issue bank reads into the ePE queues
        if self.disp_count:
            epe_q = self.epe_q
            epe_depth = self.epe_depth
            dst = self.dst
            dst_mod = self.dst_mod
            weights = self.weights
            process = self.process_fn
            proc = self.proc
            rec_news = self.rec_news
            disp_stall = self.disp_stall
            issued = 0
            for d, q in enumerate(self.disp_q):
                if not q:
                    continue
                sb = disp_stall[d]
                if sb >= 0:
                    if len(epe_q[sb]) >= epe_depth:
                        self.disp_blocked += 1
                        continue
                    disp_stall[d] = -1
                off, length, payload = q[0]
                # replay pieces never wrap the bank space, so the banks
                # are the consecutive range starting at off % m
                bank = off % m
                blocked = False
                for b in range(bank, bank + length):
                    if len(epe_q[b]) >= epe_depth:
                        disp_stall[d] = b
                        blocked = True
                        break
                if blocked:
                    self.disp_blocked += 1
                    continue
                q.popleft()
                issued += 1
                if rec_news is not None:
                    # recording: immediates are slot ids (windows.py)
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx],
                                            len(rec_news), 1))
                        rec_news.append(eidx)
                        bank += 1
                elif proc == 0:                 # identity kernel
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx], payload, 1))
                        bank += 1
                elif proc == 2:                 # payload + weight
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx],
                                            payload + weights[eidx], 1))
                        bank += 1
                elif proc == 3:                 # min(payload, weight)
                    for eidx in range(off, off + length):
                        w = weights[eidx]
                        epe_q[bank].append((dst_mod[eidx], dst[eidx],
                                            payload if payload < w else w, 1))
                        bank += 1
                elif proc == 1:                 # weight-independent kernel
                    pv = process(payload, 0)
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx], pv, 1))
                        bank += 1
                else:
                    for eidx in range(off, off + length):
                        epe_q[bank].append((dst_mod[eidx], dst[eidx],
                                            process(payload, weights[eidx]), 1))
                        bank += 1
                self.epe_count += length
            self.disp_count -= issued
        # 2. network delivers pieces to dispatchers
        rnet = self.rnet
        if rnet is not None and rnet.count:
            last = rnet.num_stages - 1
            if rnet.counts[last]:
                disp_q = self.disp_q
                disp_depth = self.disp_depth
                popped = 0
                for d, queue in enumerate(rnet.queues[last]):
                    if queue and len(disp_q[d]) < disp_depth:
                        disp_q[d].append(queue.popleft())
                        popped += 1
                rnet.counts[last] -= popped
                rnet.count -= popped
                self.disp_count += popped
            if rnet.count:
                rnet.advance()
        # 3. replay engines emit one piece per network input position
        if self.rp_busy_total:
            busy_at = self._busy_at
            rp_rr = self.rp_rr
            for pos, channels in enumerate(self._channels_at):
                if not busy_at[pos]:
                    continue
                num = len(channels)
                rr = rp_rr[pos]
                for k in range(num):
                    idx = (rr + k) % num
                    piece = self._replay_emit(channels[idx])
                    if piece is None:
                        continue
                    off, length, payload = piece
                    if rnet is not None:
                        accepted = rnet.offer(pos, off, length, payload)
                    else:
                        accepted = self._disp_accept(0, off, length, payload)
                    if accepted:
                        self._replay_consume(channels[idx], pos)
                        rp_rr[pos] = (idx + 1) % num
                    break
        # 4. replay engines pull new {Off, Len} requests from the front end
        fe = self.fe
        if fe.fe_count:
            rp_pending = self.rp_pending
            rp_pieces = self.rp_pieces
            replay_depth = self.replay_depth
            trace = fe.trace
            pulled = 0
            for ch, src in enumerate(fe.fe_out):
                if not src:
                    continue
                pending = rp_pending[ch]
                if len(pending) < replay_depth:
                    if not pending and not rp_pieces[ch]:
                        self._busy_at[self._position_of[ch]] += 1
                        self.rp_busy_total += 1
                    pending.append(src.popleft())
                    if trace is not None:
                        trace.cur_pulls.append(ch)
                    pulled += 1
            fe.fe_count -= pulled

    def _replay_emit(self, ch: int):
        pieces = self.rp_pieces[ch]
        if not pieces:
            pending = self.rp_pending[ch]
            if not pending:
                return None
            req = pending.popleft()
            off, length, payload = req
            m = self.m
            if length <= m - off % m:   # common case: one non-wrapping piece
                pieces.append(req)
            else:
                for p_off, p_len in split_request(off, length, m, m):
                    pieces.append((p_off, p_len, payload))
        return pieces[0]

    def _replay_consume(self, ch: int, pos: int) -> None:
        pieces = self.rp_pieces[ch]
        pieces.popleft()
        if not pieces and not self.rp_pending[ch]:
            self._busy_at[pos] -= 1
            self.rp_busy_total -= 1

    def _disp_accept(self, d: int, off: int, length: int, payload) -> bool:
        q = self.disp_q[d]
        if len(q) >= self.disp_depth:
            return False
        q.append((off, length, payload))
        self.disp_count += 1
        return True


class _CentralEdgeStage:
    """Centralized in-order greedy window engine (GraphDynS-style)."""

    kind = "central"

    __slots__ = ("m", "fe", "epe_q", "epe_count", "epe_depth",
                 "dst", "dst_mod", "weights", "process_fn", "proc",
                 "rec_news", "ce_queue", "ce_capacity", "ce_issue_limit",
                 "window_conflicts", "ce_stall")

    def __init__(self, config, fe, dst: list, dst_mod: list, weights: list,
                 proc: int, process_fn) -> None:
        m = config.back_channels
        self.m = m
        self.fe = fe
        self.epe_q = [deque() for _ in range(m)]
        self.epe_count = 0
        self.epe_depth = config.epe_queue_depth
        self.dst = dst
        self.dst_mod = dst_mod
        self.weights = weights
        self.process_fn = process_fn
        self.proc = proc
        self.rec_news: list | None = None
        self.ce_queue: deque = deque()              # (off, len, sprop)
        self.ce_capacity = config.fe_out_depth * config.front_channels
        self.ce_issue_limit = config.issue_limit
        self.window_conflicts = 0
        #: (off, len, bank) of a head window blocked on a full ePE
        #: bank with nothing issued that cycle — while the head and
        #: the bank's fullness persist, the whole window pass is a
        #: provable no-op
        self.ce_stall: tuple | None = None

    # -- phase-window plumbing -----------------------------------------
    def arb_key(self) -> tuple:
        return (self.ce_stall,)

    def restore_arb(self, key: tuple) -> None:
        (self.ce_stall,) = key

    def counter_sites(self) -> list:
        return [(self, "window_conflicts")]

    def edge_conflicts(self) -> int:
        return self.window_conflicts

    def active(self) -> bool:
        return bool(self.ce_queue or self.fe.fe_count)

    # ------------------------------------------------------------------
    def tick(self) -> None:
        m = self.m
        queue = self.ce_queue
        # 1. in-order greedy window issue
        st = self.ce_stall
        issue_blocked = False
        if st is not None:
            if (queue and queue[0][0] == st[0] and queue[0][1] == st[1]
                    and len(self.epe_q[st[2]]) >= self.epe_depth):
                issue_blocked = True     # head still blocked: provable no-op
            else:
                self.ce_stall = None
        if queue and not issue_blocked:
            epe_q = self.epe_q
            epe_depth = self.epe_depth
            dst = self.dst
            dst_mod = self.dst_mod
            weights = self.weights
            process = self.process_fn
            proc = self.proc
            rec_news = self.rec_news
            claimed: set[int] = set()
            issued_requests = 0
            while queue and issued_requests < self.ce_issue_limit:
                off, length, payload = queue[0]
                k = length if length < m else m
                if claimed:              # first window can never conflict
                    conflict = False
                    for j in range(k):
                        if (off + j) % m in claimed:
                            conflict = True
                            break
                    if conflict:
                        self.window_conflicts += 1
                        break            # strict in-order: head blocks the rest
                full = False
                for j in range(k):
                    if len(epe_q[(off + j) % m]) >= epe_depth:
                        full = True
                        break
                if full:
                    if not claimed:      # nothing issued: memoize the block
                        self.ce_stall = (off, length, (off + j) % m)
                    break
                if rec_news is not None:
                    # recording: immediates are slot ids (windows.py)
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx],
                                         len(rec_news), 1))
                        rec_news.append(eidx)
                        claimed.add(b)
                elif proc == 0:                 # identity kernel
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx], payload, 1))
                        claimed.add(b)
                elif proc == 2:                 # payload + weight
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx],
                                         payload + weights[eidx], 1))
                        claimed.add(b)
                elif proc == 3:                 # min(payload, weight)
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        w = weights[eidx]
                        epe_q[b].append((dst_mod[eidx], dst[eidx],
                                         payload if payload < w else w, 1))
                        claimed.add(b)
                elif proc == 1:                 # weight-independent kernel
                    pv = process(payload, 0)
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx], pv, 1))
                        claimed.add(b)
                else:
                    for j in range(k):
                        eidx = off + j
                        b = eidx % m
                        epe_q[b].append((dst_mod[eidx], dst[eidx],
                                         process(payload, weights[eidx]), 1))
                        claimed.add(b)
                self.epe_count += k
                if k == length:
                    queue.popleft()
                    issued_requests += 1
                else:
                    queue[0] = (off + k, length - k, payload)
                    break                # the window already spans all banks
        # 2. merge front-end requests in channel order
        fe = self.fe
        if fe.fe_count:
            capacity = self.ce_capacity
            trace = fe.trace
            pulled = 0
            for ch, src in enumerate(fe.fe_out):
                if len(queue) >= capacity:
                    break
                if src:
                    queue.append(src.popleft())
                    if trace is not None:
                        trace.cur_pulls.append(ch)
                    pulled += 1
            fe.fe_count -= pulled


def make_batched_edge_stage(config, fe, dst: list, dst_mod: list,
                            weights: list, proc: int, process_fn):
    """Build the batched edge stage for ``config.edge_site``."""
    if config.edge_site == "mdp":
        return _MdpEdgeStage(config, fe, dst, dst_mod, weights, proc,
                             process_fn)
    return _CentralEdgeStage(config, fe, dst, dst_mod, weights, proc,
                             process_fn)
