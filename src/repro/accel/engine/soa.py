"""The ``soa`` engine: the batched engine with a compiled SoA marcher.

:class:`SoaEngine` subclasses :class:`~repro.accel.engine.batched.
BatchedEngine` and overrides exactly one seam — :meth:`_march`, the
cycle-by-cycle simulation of a scatter phase.  Everything else (phase
windows, record/replay, harvest, telemetry reset) is inherited
unchanged, which is what keeps the equivalence argument small: the two
engines can only differ inside one well-contained function held to the
byte-identical ``SimStats`` differential contract.

The marcher lives in ``_soa_march.c`` (see its header comment for the
cycle-model equivalence argument) and operates on structure-of-arrays
state: every FIFO bank is a slice of a preallocated int64/float64
numpy array with head/occupancy vectors, the MDP/range-network routing
is the precomputed ``table[stage][pos][dest]`` tensor flattened to an
int64 tensor, and persistent arbiter state (odd-even parity, rotating
scan starts, round-robin pointers, stall memos) is seeded from the
Python subnetwork objects before each phase and written back after —
so phases may freely alternate between the C marcher and the Python
fallback (recording phases, unsupported kernels) mid-run.

Recording phases run in C too (ABI 2): structural decisions never read
property values, so the kernel marches with real float immediates
while logging the structure stream the window memo needs in companion
buffers — slot ids assigned at ePE push, the combining/delivery log in
hardware order, per-tick pull/retire logs, and the delivered-vertex
log.  :meth:`SoaEngine._finish_c_recording` assembles those buffers
into the same :class:`~repro.accel.engine.windows.PhaseProgram` the
Python recorder builds, so C-recorded and Python-recorded programs
replay interchangeably.  ``REPRO_SOA_RECORD=off`` restores the old
batched-fallback behavior for recording phases only.

The engine also keeps tProperty *resident*: :meth:`scatter_phase`
holds an identity-seeded buffer across phases and restores only the
vertices the kernel actually delivered to (``touch_dv``), so sparse
frontiers stop paying full-array seeding per phase.

Fallback rules (always byte-identical, never an error):

* no C compiler / load failure / ``REPRO_SOA_KERNEL=off`` — every
  phase uses the inherited batched march;
* recording phases when ``REPRO_SOA_RECORD=off``, or whose expected
  event counts exceed the preallocated record buffers (duplicate
  actives — never a real frontier) — inherited march;
* algorithms whose ``reduce``/``process_edge`` kernels have no declared
  closed form (custom reductions, weight-dependent kernels beyond
  add/min) — the C kernel cannot call back into Python per edge, so
  the engine falls back for the whole run.
"""

from __future__ import annotations

import ctypes
import types

import numpy as np

from repro.accel.engine.batched import BatchedEngine
from repro.accel.engine.frontends import FrontTrace
from repro.accel.engine.registry import FFWD_TELEMETRY
from repro.accel.engine.soakernel import load_kernel, record_disabled
from repro.accel.engine.windows import PhaseProgram
from repro.errors import SimulationError

_i64 = ctypes.c_longlong
_f64 = ctypes.c_double
_P = ctypes.c_void_p

_RED_CODES = types.MappingProxyType({"add": 0, "min": 1, "max": 2})

#: counter slots, mirroring the C kernel's C_* defines
_C_DEFERRALS = 0
_C_FRONT_STALL = 1
_C_FRONT_REJ = 2
_C_EDGE_BLOCKED = 3
_C_RNET_STALL = 4
_C_RNET_REJ = 5
_C_PROP_STALL = 6
_C_PROP_REJ = 7
_C_NUM = 8

#: Seam metadata: which Python counter-site attributes each C counter
#: slot is committed to in :meth:`SoaEngine._march` (one slot may feed
#: different sites depending on the configured subnetwork kind).  The
#: ``c-seam-counters`` lint rule cross-checks this map three ways:
#: slot constants above, the ``+= int(ctr[...])`` commit statements
#: below, and the ``counter_sites()`` attribute names the batched
#: subnetworks expose.
_SLOT_SITES = types.MappingProxyType({
    "_C_DEFERRALS": ("deferrals",),
    "_C_FRONT_STALL": ("stall_events", "conflicts"),
    "_C_FRONT_REJ": ("rejected_offers",),
    "_C_EDGE_BLOCKED": ("disp_blocked", "window_conflicts"),
    "_C_RNET_STALL": ("stall_events",),
    "_C_RNET_REJ": ("rejected_offers",),
    "_C_PROP_STALL": ("stall_events", "conflicts"),
    "_C_PROP_REJ": ("rejected_offers",),
})


class _SoaState(ctypes.Structure):
    """ctypes mirror of ``SoaState`` in ``_soa_march.c``.

    Field order must match the C struct declaration exactly; every
    field is 8 bytes so the layout is padding-free on both sides, and
    the magic fields at both ends catch any skew at runtime.
    """

    _fields_ = (
        ("magic", _i64),
        ("n", _i64), ("m", _i64), ("w", _i64),
        ("fifo_depth", _i64), ("block_len", _i64),
        ("issue_depth", _i64), ("fe_depth", _i64), ("disp_depth", _i64),
        ("epe_depth", _i64), ("replay_depth", _i64),
        ("combining", _i64),
        ("reduce_op", _i64),
        ("proc", _i64),
        ("proc_const", _f64),
        ("front_is_mdp", _i64), ("edge_is_mdp", _i64), ("prop_is_mdp", _i64),
        ("ce_issue_limit", _i64), ("ce_capacity", _i64),
        ("has_rnet", _i64),
        ("rn_radix", _i64), ("rn_block_len", _i64), ("rn_ring", _i64),
        ("offsets", _P), ("dst", _P), ("weights", _P),
        ("fn_stages", _i64),
        ("fn_table", _P),
        ("fn_qu", _P), ("fn_qs", _P), ("fn_head", _P), ("fn_len", _P),
        ("fn_counts", _P),
        ("fx_qu", _P), ("fx_qs", _P), ("fx_head", _P), ("fx_len", _P),
        ("fx_rr", _P),
        ("iq_u", _P), ("iq_s", _P), ("iq_head", _P), ("iq_len", _P),
        ("fo_off", _P), ("fo_len", _P), ("fo_s", _P), ("fo_head", _P),
        ("fo_cnt", _P),
        ("part_u", _P), ("part_sp", _P), ("part_pos", _P), ("part_end", _P),
        ("rp_po", _P), ("rp_pl", _P), ("rp_ps", _P), ("rp_head", _P),
        ("rp_cnt", _P),
        ("rp_cur_off", _P), ("rp_cur_rem", _P), ("rp_cur_pay", _P),
        ("pos_of", _P),
        ("chan_at", _P), ("chan_at_start", _P), ("chan_at_cnt", _P),
        ("busy_at", _P), ("rp_rr", _P),
        ("rn_stages", _i64),
        ("rn_block", _P), ("rn_ptbl", _P),
        ("rn_qo", _P), ("rn_ql", _P), ("rn_qp", _P), ("rn_head", _P),
        ("rn_len", _P),
        ("rn_counts", _P),
        ("dq_off", _P), ("dq_len", _P), ("dq_pay", _P), ("dq_head", _P),
        ("dq_cnt", _P),
        ("disp_stall", _P),
        ("ce_off", _P), ("ce_len", _P), ("ce_pay", _P),
        ("ce_stall_off", _i64), ("ce_stall_len", _i64), ("ce_stall_bank", _i64),
        ("ep_v", _P), ("ep_imm", _P), ("ep_head", _P), ("ep_cnt", _P),
        ("pn_stages", _i64),
        ("pn_table", _P),
        ("pn_qv", _P), ("pn_qc", _P), ("pn_qi", _P), ("pn_head", _P),
        ("pn_len", _P),
        ("pn_counts", _P),
        ("px_qv", _P), ("px_qc", _P), ("px_qi", _P), ("px_head", _P),
        ("px_len", _P),
        ("px_rr", _P),
        ("s_epoch", _P), ("s_val", _P), ("s_epoch2", _P), ("s_val2", _P),
        ("parity", _i64), ("fstart", _i64),
        ("tprop", _P),
        ("expected", _i64), ("fe_pending", _i64), ("limit", _i64),
        ("recording", _i64),
        ("ep_slot", _P), ("pn_qsl", _P), ("px_qsl", _P),
        ("rec_news", _P),
        ("rec_merge_a", _P), ("rec_merge_b", _P),
        ("rec_deliver", _P),
        ("rec_pull_ch", _P), ("rec_pull_cyc", _P),
        ("rec_ret_ch", _P), ("rec_ret_u", _P), ("rec_ret_cyc", _P),
        ("news_len", _i64), ("merge_len", _i64), ("deliver_len", _i64),
        ("pull_len", _i64), ("ret_len", _i64),
        ("touch_dv", _P), ("touch_len", _i64),
        ("ctr", _P),
        ("cycles", _i64), ("starved", _i64), ("busy", _i64), ("reduces", _i64),
        ("magic2", _i64),
    )


_MAGIC = 0x534F4132


def _flat_i64(nested) -> np.ndarray:
    """Flatten a nested table (lists/tuples of ints) to a C-order array."""
    return np.ascontiguousarray(np.asarray(nested, dtype=np.int64).ravel())


class SoaEngine(BatchedEngine):
    """Batched engine whose cycle march runs in the compiled SoA kernel."""

    name = "soa"

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self._lib = load_kernel()
        self._st = None
        self._record_ok = False
        #: identity value the resident tprop buffer is currently seeded
        #: with everywhere (None = unknown, full reseed required)
        self._tprop_seed: float | None = None
        #: vertices the last committed phase wrote (int64 array or list),
        #: or None when a Python path wrote unknown entries
        self._phase_touched = None
        if self._lib is not None and self._kernel_supported():
            self._bind_state(sim)

    # ------------------------------------------------------------------
    def _kernel_supported(self) -> bool:
        """True when every value-plane kernel has a declared closed form
        the C side reproduces bit-for-bit."""
        alg = self.algorithm
        if _RED_CODES.get(alg.reduce_op) is None:
            return False
        if self._proc == 1 and getattr(alg, "process_const", None) is None:
            return False
        if self._proc == 4:
            return False
        # weights enter the C kernel as exact int64 -> double conversions
        return self._weights_np.dtype.kind in "iu"

    # ------------------------------------------------------------------
    def _bind_state(self, sim) -> None:
        config = self.config
        n, m = self.n, self.m
        fe = self.frontend
        edge = self.edge
        prop = self.prop
        st = _SoaState()
        keep = []           # array refs the struct points into

        def arr(shape_or_data, dtype=np.int64):
            if isinstance(shape_or_data, (int, tuple)):
                a = np.zeros(shape_or_data, dtype=dtype)
            else:
                a = np.ascontiguousarray(shape_or_data, dtype=dtype)
            keep.append(a)
            return a

        def ptr(a) -> int:
            return a.ctypes.data

        st.magic = _MAGIC
        st.magic2 = _MAGIC
        st.n, st.m = n, m
        st.fifo_depth = config.fifo_depth
        st.block_len = config.fifo_depth - config.radix
        st.issue_depth = config.issue_queue_depth
        st.fe_depth = config.fe_out_depth
        st.epe_depth = config.epe_queue_depth
        st.reduce_op = _RED_CODES[self.algorithm.reduce_op]
        if self._proc == 1:
            st.proc = 5
            st.proc_const = float(self.algorithm.process_const)
        else:
            st.proc = self._proc
            st.proc_const = 0.0

        st.offsets = ptr(arr(self._offsets_np))
        st.dst = ptr(arr(self._dst_np))
        st.weights = ptr(arr(self._weights_np))

        fifo = config.fifo_depth
        # -- frontend ---------------------------------------------------
        st.front_is_mdp = 1 if fe.kind == "mdp" else 0
        if st.front_is_mdp:
            net = fe.net
            sf = net.num_stages
            st.fn_stages = sf
            st.fn_table = ptr(arr(_flat_i64(net.table)))
            st.fn_qu = ptr(arr(sf * n * fifo))
            st.fn_qs = ptr(arr(sf * n * fifo, np.float64))
            st.fn_head = ptr(arr(sf * n))
            st.fn_len = ptr(arr(sf * n))
            st.fn_counts = ptr(arr(sf))
        else:
            st.fn_stages = 1
            st.fx_qu = ptr(arr(n * fifo))
            st.fx_qs = ptr(arr(n * fifo, np.float64))
            st.fx_head = ptr(arr(n))
            st.fx_len = ptr(arr(n))
            self._fx_rr = arr(n)
            st.fx_rr = ptr(self._fx_rr)
        st.iq_u = ptr(arr(n * config.issue_queue_depth))
        st.iq_s = ptr(arr(n * config.issue_queue_depth, np.float64))
        st.iq_head = ptr(arr(n))
        st.iq_len = ptr(arr(n))
        st.fo_off = ptr(arr(n * config.fe_out_depth))
        st.fo_len = ptr(arr(n * config.fe_out_depth))
        st.fo_s = ptr(arr(n * config.fe_out_depth, np.float64))
        st.fo_head = ptr(arr(n))
        st.fo_cnt = ptr(arr(n))
        v = self.num_vertices
        self._part_u = arr(max(v, 1))
        self._part_sp = arr(max(v, 1), np.float64)
        self._part_pos = arr(n)
        self._part_end = arr(n)
        st.part_u = ptr(self._part_u)
        st.part_sp = ptr(self._part_sp)
        st.part_pos = ptr(self._part_pos)
        st.part_end = ptr(self._part_end)

        # -- edge stage -------------------------------------------------
        st.edge_is_mdp = 1 if edge.kind == "mdp" else 0
        if st.edge_is_mdp:
            w = edge.w
            st.w = w
            st.disp_depth = edge.disp_depth
            st.replay_depth = edge.replay_depth
            st.rp_po = ptr(arr(n * edge.replay_depth))
            st.rp_pl = ptr(arr(n * edge.replay_depth))
            st.rp_ps = ptr(arr(n * edge.replay_depth, np.float64))
            st.rp_head = ptr(arr(n))
            st.rp_cnt = ptr(arr(n))
            st.rp_cur_off = ptr(arr(n))
            st.rp_cur_rem = ptr(arr(n))
            st.rp_cur_pay = ptr(arr(n, np.float64))
            st.pos_of = ptr(arr(np.asarray(edge._position_of)))
            chan_flat, starts, cnts = [], [], []
            for channels in edge._channels_at:
                starts.append(len(chan_flat))
                cnts.append(len(channels))
                chan_flat.extend(channels)
            st.chan_at = ptr(arr(np.asarray(chan_flat + [0])))
            st.chan_at_start = ptr(arr(np.asarray(starts)))
            st.chan_at_cnt = ptr(arr(np.asarray(cnts)))
            st.busy_at = ptr(arr(w))
            self._rp_rr = arr(w)
            st.rp_rr = ptr(self._rp_rr)
            rnet = edge.rnet
            st.has_rnet = 0 if rnet is None else 1
            if rnet is not None:
                sr = rnet.num_stages
                st.rn_stages = sr
                st.rn_radix = rnet.radix
                st.rn_block_len = rnet.block_len
                # range-net split inserts may push several pieces into
                # ONE queue in a single offer (a span covers up to w
                # blocks), briefly exceeding fifo_depth — the Python
                # deques are unbounded, so the rings get headroom
                st.rn_ring = fifo + w + 2
                st.rn_block = ptr(arr(np.asarray(rnet.stage_block)))
                st.rn_ptbl = ptr(arr(_flat_i64(rnet.stage_ports)))
                st.rn_qo = ptr(arr(sr * w * st.rn_ring))
                st.rn_ql = ptr(arr(sr * w * st.rn_ring))
                st.rn_qp = ptr(arr(sr * w * st.rn_ring, np.float64))
                st.rn_head = ptr(arr(sr * w))
                st.rn_len = ptr(arr(sr * w))
                st.rn_counts = ptr(arr(sr))
            else:
                st.rn_stages = 1
            st.dq_off = ptr(arr(w * edge.disp_depth))
            st.dq_len = ptr(arr(w * edge.disp_depth))
            st.dq_pay = ptr(arr(w * edge.disp_depth, np.float64))
            st.dq_head = ptr(arr(w))
            st.dq_cnt = ptr(arr(w))
            self._disp_stall = arr(w)
            st.disp_stall = ptr(self._disp_stall)
        else:
            st.w = 1
            st.ce_issue_limit = edge.ce_issue_limit
            st.ce_capacity = edge.ce_capacity
            st.ce_off = ptr(arr(edge.ce_capacity))
            st.ce_len = ptr(arr(edge.ce_capacity))
            st.ce_pay = ptr(arr(edge.ce_capacity, np.float64))
            st.rn_stages = 1
        st.ep_v = ptr(arr(m * config.epe_queue_depth))
        st.ep_imm = ptr(arr(m * config.epe_queue_depth, np.float64))
        st.ep_head = ptr(arr(m))
        st.ep_cnt = ptr(arr(m))

        # -- propagation ------------------------------------------------
        st.prop_is_mdp = 1 if prop.kind == "mdp" else 0
        if st.prop_is_mdp:
            pnet = prop.net
            st.combining = 1 if pnet.combining else 0
            sp = pnet.num_stages
            st.pn_stages = sp
            st.pn_table = ptr(arr(_flat_i64(pnet.table)))
            st.pn_qv = ptr(arr(sp * m * fifo))
            st.pn_qc = ptr(arr(sp * m * fifo))
            st.pn_qi = ptr(arr(sp * m * fifo, np.float64))
            st.pn_head = ptr(arr(sp * m))
            st.pn_len = ptr(arr(sp * m))
            st.pn_counts = ptr(arr(sp))
        else:
            st.combining = 1 if prop.xbar.combining else 0
            st.pn_stages = 1
            st.px_qv = ptr(arr(m * fifo))
            st.px_qc = ptr(arr(m * fifo))
            st.px_qi = ptr(arr(m * fifo, np.float64))
            st.px_head = ptr(arr(m))
            st.px_len = ptr(arr(m))
            self._px_rr = arr(m)
            st.px_rr = ptr(self._px_rr)

        mx = max(n, m, int(st.w))
        st.s_epoch = ptr(arr(mx))
        st.s_val = ptr(arr(mx))
        st.s_epoch2 = ptr(arr(mx))
        st.s_val2 = ptr(arr(mx))

        self._tprop_buf = arr(max(v, 1), np.float64)
        st.tprop = ptr(self._tprop_buf)
        self._ctr = arr(_C_NUM)
        st.ctr = ptr(self._ctr)

        # -- recording + resident-delta buffers -------------------------
        # capacity proofs: every recorded leaf is one edge of one active
        # vertex (news <= expected <= E); merges + deliveries consume
        # leaves (each <= news); pulls/retires happen once per presented
        # vertex (<= V).  touch_dv gets one entry per delivery (<= E).
        e_cap = max(int(self._dst_np.size), 1)
        v_cap = max(v, 1)
        self._cap_e = e_cap
        self._cap_v = v_cap
        self._touch_dv = arr(e_cap)
        st.touch_dv = ptr(self._touch_dv)
        st.recording = 0
        self._record_ok = (self.phase_memo is not None
                           and not record_disabled())
        if self._record_ok:
            st.ep_slot = ptr(arr(m * config.epe_queue_depth))
            if st.prop_is_mdp:
                st.pn_qsl = ptr(arr(int(st.pn_stages) * m * fifo))
            else:
                st.px_qsl = ptr(arr(m * fifo))
            self._rec_news = arr(e_cap)
            self._rec_merge_a = arr(e_cap)
            self._rec_merge_b = arr(e_cap)
            self._rec_deliver = arr(e_cap)
            self._rec_pull_ch = arr(v_cap)
            self._rec_pull_cyc = arr(v_cap)
            self._rec_ret_ch = arr(v_cap)
            self._rec_ret_u = arr(v_cap)
            self._rec_ret_cyc = arr(v_cap)
            st.rec_news = ptr(self._rec_news)
            st.rec_merge_a = ptr(self._rec_merge_a)
            st.rec_merge_b = ptr(self._rec_merge_b)
            st.rec_deliver = ptr(self._rec_deliver)
            st.rec_pull_ch = ptr(self._rec_pull_ch)
            st.rec_pull_cyc = ptr(self._rec_pull_cyc)
            st.rec_ret_ch = ptr(self._rec_ret_ch)
            st.rec_ret_u = ptr(self._rec_ret_u)
            st.rec_ret_cyc = ptr(self._rec_ret_cyc)

        self._keep = keep
        self._st = st

    # ------------------------------------------------------------------
    def _march(self, active, sprop_all, tprop, stats,
               record_key: tuple | None) -> None:
        st = self._st
        recording = record_key is not None
        size = int(active.size)
        expected = int(self.out_degree[active].sum())
        if st is not None and (
                expected > self._cap_e          # touch_dv bound
                or (recording and not (self._record_ok
                                       and size <= self._cap_v))):
            # record/touch buffers are sized for real frontiers (news and
            # touches <= E, pulls/retires <= V); duplicate actives — or
            # REPRO_SOA_RECORD=off — march (and record) in Python instead
            st = None
        if st is None:
            super()._march(active, sprop_all, tprop, stats, record_key)
            self._phase_touched = None      # unknown writes: full reseed
            return
        fe = self.frontend
        edge = self.edge
        prop = self.prop
        n = self.n

        if recording:
            counters0 = [getattr(obj, attr)
                         for obj, attr in self._counter_sites]
            st.recording = 1
        if size:
            sel = sprop_all[active]
            pos = 0
            for ch in range(n):
                seg = active[ch::n]
                k = int(seg.size)
                self._part_u[pos:pos + k] = seg
                self._part_sp[pos:pos + k] = sel[ch::n]
                self._part_pos[ch] = pos
                self._part_end[ch] = pos + k
                pos += k
        else:
            self._part_pos[:] = 0
            self._part_end[:] = 0
        v = self.num_vertices
        resident = tprop is self._tprop_buf
        if v and not resident:
            # a direct scatter() caller owns tprop: the resident buffer
            # is clobbered here, so the identity seed no longer holds
            self._tprop_seed = None
            self._tprop_buf[:v] = tprop

        # seed persistent arbiter state from the Python subnetworks
        if st.front_is_mdp:
            st.parity = fe.parity
        else:
            st.fstart = fe.fstart
            self._fx_rr[:] = fe.xbar.rr
        if st.edge_is_mdp:
            self._rp_rr[:] = edge.rp_rr
            self._disp_stall[:] = edge.disp_stall
        else:
            ce = edge.ce_stall
            st.ce_stall_off, st.ce_stall_len, st.ce_stall_bank = (
                ce if ce is not None else (-1, -1, -1))
        if not st.prop_is_mdp:
            self._px_rr[:] = prop.xbar.rr

        st.expected = expected
        st.fe_pending = size
        limit = 4 * expected + 8 * size + 10_000
        st.limit = limit

        rc = int(self._lib.soa_march(ctypes.byref(st)))
        st.recording = 0
        if rc == 1:
            raise SimulationError(
                f"scatter did not converge within {limit} cycles "
                f"({st.reduces}/{expected} reduces, {st.fe_pending} vertices "
                f"pending) — queue sizing bug?")
        if rc != 0:
            # defensive: ABI skew detected at runtime — state untouched,
            # disable the kernel and redo the phase in Python
            self._st = None
            super()._march(active, sprop_all, tprop, stats, record_key)
            self._phase_touched = None
            return

        # commit: values, stats, counters, arbiter state
        if not resident:
            tprop[:] = self._tprop_buf[:v].tolist()
        # valid until the next soa_march call; scatter_phase consumes it
        # immediately after scatter() returns
        self._phase_touched = self._touch_dv[:int(st.touch_len)]
        stats.scatter_cycles += st.cycles
        stats.vpe_starvation_cycles += st.starved
        stats.vpe_busy_cycles += st.busy
        stats.edges_processed += st.reduces
        FFWD_TELEMETRY["cycles_simulated"] += st.cycles
        ctr = self._ctr
        if st.front_is_mdp:
            fe.parity = int(st.parity)
            fe.deferrals += int(ctr[_C_DEFERRALS])
            fe.net.stall_events += int(ctr[_C_FRONT_STALL])
            fe.net.rejected_offers += int(ctr[_C_FRONT_REJ])
        else:
            fe.fstart = int(st.fstart)
            fe.xbar.rr[:] = self._fx_rr.tolist()
            fe.deferrals += int(ctr[_C_DEFERRALS])
            fe.xbar.conflicts += int(ctr[_C_FRONT_STALL])
        if st.edge_is_mdp:
            edge.rp_rr[:] = self._rp_rr.tolist()
            edge.disp_stall[:] = self._disp_stall.tolist()
            edge.disp_blocked += int(ctr[_C_EDGE_BLOCKED])
            if edge.rnet is not None:
                edge.rnet.stall_events += int(ctr[_C_RNET_STALL])
                edge.rnet.rejected_offers += int(ctr[_C_RNET_REJ])
        else:
            edge.window_conflicts += int(ctr[_C_EDGE_BLOCKED])
            edge.ce_stall = (None if st.ce_stall_off < 0 else
                             (int(st.ce_stall_off), int(st.ce_stall_len),
                              int(st.ce_stall_bank)))
        if st.prop_is_mdp:
            prop.net.stall_events += int(ctr[_C_PROP_STALL])
            prop.net.rejected_offers += int(ctr[_C_PROP_REJ])
        else:
            prop.xbar.rr[:] = self._px_rr.tolist()
            prop.xbar.conflicts += int(ctr[_C_PROP_STALL])

        if recording:
            self._finish_c_recording(record_key, active, counters0, st)
            FFWD_TELEMETRY["c_recorded_phases"] += 1

    # ------------------------------------------------------------------
    # In-kernel phase recording (see _soa_march.c header and
    # docs/performance.md §in-kernel recording invariants)
    # ------------------------------------------------------------------
    def _finish_c_recording(self, key: tuple, active, counters0: list,
                            st) -> None:
        """Assemble the kernel's record buffers into a PhaseProgram.

        Must run after the counter/arbiter commit: counter deltas are
        measured against the live Python sites (identical to what a
        Python recording of the same phase would measure, by kernel
        equivalence) and ``end_state`` is the committed arbiter state.
        """
        prog = PhaseProgram(active.copy())
        nl = int(st.news_len)
        prog.news_e = self._rec_news[:nl].copy()
        ml = int(st.merge_len)
        prog.merge_a = self._rec_merge_a[:ml].tolist()
        prog.merge_b = self._rec_merge_b[:ml].tolist()
        dl = int(st.deliver_len)
        prog.deliver_slots = self._rec_deliver[:dl].tolist()
        prog.stat_deltas = {"scatter_cycles": int(st.cycles),
                            "vpe_starvation_cycles": int(st.starved),
                            "vpe_busy_cycles": int(st.busy),
                            "edges_processed": int(st.reduces)}
        prog.counter_deltas = tuple(
            getattr(obj, attr) - before
            for (obj, attr), before in zip(self._counter_sites, counters0))
        prog.end_state = self._arb_state()
        prog.cycles = int(st.cycles)
        prog.front_trace = self._c_front_trace(st)
        prog.finalize(self._offsets_np, self._dst_np)
        self.phase_memo.store(key, prog)

    def _c_front_trace(self, st) -> FrontTrace:
        """FrontTrace from the kernel's flat tick-indexed pull/retire logs.

        The kernel ticks the frontend every cycle (no bulk-drain skips),
        so the trace has one entry per cycle and ``skips`` stays empty —
        interchangeable with Python-recorded traces because an idle
        frontend tick advances exactly the per-cycle arbiter state a
        ``skip(1)`` does, with zero counter contributions.
        """
        trace = FrontTrace()
        ticks = int(st.cycles)
        pulls = [()] * ticks
        retires = [()] * ticks
        pl = int(st.pull_len)
        if pl:
            pch = self._rec_pull_ch[:pl].tolist()
            pcy = self._rec_pull_cyc[:pl].tolist()
            i = 0
            while i < pl:            # cycle indices are nondecreasing
                j = i + 1
                c = pcy[i]
                while j < pl and pcy[j] == c:
                    j += 1
                pulls[c] = tuple(pch[i:j])
                i = j
        rl = int(st.ret_len)
        if rl:
            rch = self._rec_ret_ch[:rl].tolist()
            ru = self._rec_ret_u[:rl].tolist()
            rcy = self._rec_ret_cyc[:rl].tolist()
            i = 0
            while i < rl:
                j = i + 1
                c = rcy[i]
                while j < rl and rcy[j] == c:
                    j += 1
                retires[c] = tuple(sorted(zip(rch[i:j], ru[i:j])))
                i = j
        trace.pulls = pulls
        trace.retires = retires
        return trace

    # ------------------------------------------------------------------
    # Resident tProperty (the per-phase marshalling prologue, hoisted)
    # ------------------------------------------------------------------
    def scatter_phase(self, active, sprop_all, identity: float,
                      stats) -> np.ndarray:
        """One whole scatter phase against the resident tProperty buffer.

        The buffer stays identity-seeded across phases: after each phase
        only the vertices the kernel delivered to (``touch_dv``, or a
        replayed program's ``deliver_dv``) are restored — the tiny-phase
        seeding tax on sparse frontiers drops from O(V) to O(touched).
        A phase that marched in Python leaves unknown writes, so the
        whole buffer is reseeded next phase.
        """
        st = self._st
        if st is None:
            return super().scatter_phase(active, sprop_all, identity, stats)
        buf = self._tprop_buf
        v = self.num_vertices
        if self._tprop_seed != identity:
            buf[:v] = identity
            self._tprop_seed = identity
        else:
            FFWD_TELEMETRY["prologue_reuse"] += 1
        self._phase_touched = None
        self.scatter(active, sprop_all, buf, stats)
        out = buf[:v].copy()
        touched = self._phase_touched
        if touched is None or 4 * len(touched) > v:
            buf[:v] = identity      # unknown or dense: bulk reseed wins
        elif len(touched):
            buf[touched] = identity
        return out

    def _replay_phase(self, prog, sprop_all, tprop, stats) -> None:
        super()._replay_phase(prog, sprop_all, tprop, stats)
        self._phase_touched = prog.deliver_dv

    def _partial_replay(self, key, prog, active, sprop_all, tprop,
                        stats) -> bool:
        ok = super()._partial_replay(key, prog, active, sprop_all, tprop,
                                     stats)
        if ok:
            self._phase_touched = prog.deliver_dv
        return ok
