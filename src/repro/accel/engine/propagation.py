"""Site ③ propagation adapters for the batched engine.

Thin site adapters binding the fast network models
(:mod:`repro.accel.engine.fastnets`) to the propagation site's
deliver/offer/drain protocol, plus the phase-window plumbing
(``arb_key``/``restore_arb``/``counter_sites``/``reduce_sites``) the
whole-phase replay layer keys on.
"""

from __future__ import annotations

from repro.accel.engine.fastnets import _FastMdpNet, _FastXbar

class _BatchedMdpPropagation:
    """Site ③, MDP-network — batched counterpart of MdpPropagation."""

    kind = "mdp"

    def __init__(self, config, reduce_fn) -> None:
        self.m = config.back_channels
        self.net = _FastMdpNet(self.m, config.radix, config.fifo_depth,
                               combining=config.vertex_combining,
                               reduce_fn=reduce_fn)

    @property
    def count(self) -> int:
        return self.net.count

    def deliver_reduce(self, tprop: list) -> tuple[int, int]:
        net = self.net
        got = net.deliver_reduce(tprop)
        if net.count:
            net.advance()
        return got

    def offer(self, channel: int, item) -> bool:
        return self.net.offer(channel, item)

    def drain_reduce(self, tprop: list) -> tuple[int, int, int]:
        return self.net.drain_reduce(tprop)

    @property
    def conflicts(self) -> int:
        return self.net.stall_events + self.net.rejected_offers

    # -- phase-window plumbing (see repro.accel.engine.windows) --------
    def arb_key(self) -> tuple:
        """Persistent arbiter state (the MDP network has none)."""
        return ()

    def restore_arb(self, key: tuple) -> None:
        pass

    def counter_sites(self) -> list:
        return [(self.net, "stall_events"), (self.net, "rejected_offers")]

    def reduce_sites(self) -> list:
        return [(self.net, "reduce_fn")]


class _BatchedXbarPropagation:
    """Site ③, arbitrated crossbar — batched CrossbarPropagation."""

    kind = "xbar"

    def __init__(self, config, reduce_fn) -> None:
        self.m = config.back_channels
        self.reduce_fn = reduce_fn
        self.xbar = _FastXbar(self.m, self.m, config.fifo_depth,
                              combining=config.vertex_combining,
                              reduce_fn=reduce_fn)

    @property
    def count(self) -> int:
        return self.xbar.count

    def deliver_reduce(self, tprop: list) -> tuple[int, int]:
        delivered = self.xbar.tick_unit()
        if not delivered:
            return 0, 0
        reduce_fn = self.reduce_fn
        reduces = 0
        for _, dv, imm, cnt in delivered:
            tprop[dv] = reduce_fn(tprop[dv], imm)
            reduces += cnt
        return len(delivered), reduces

    def offer(self, channel: int, item) -> bool:
        return self.xbar.offer(channel, item)

    def drain_reduce(self, tprop: list) -> tuple[int, int, int]:
        """Tick to empty (no new offers; per-dest arbitration still runs)."""
        cycles = 0
        got_total = 0
        reduces = 0
        while self.xbar.count:
            got, red = self.deliver_reduce(tprop)
            cycles += 1
            got_total += got
            reduces += red
        return cycles, got_total, reduces

    @property
    def conflicts(self) -> int:
        return self.xbar.conflicts

    # -- phase-window plumbing (see repro.accel.engine.windows) --------
    def arb_key(self) -> tuple:
        return (tuple(self.xbar.rr),)

    def restore_arb(self, key: tuple) -> None:
        self.xbar.rr[:] = key[0]

    def counter_sites(self) -> list:
        return [(self.xbar, "conflicts")]

    def reduce_sites(self) -> list:
        return [(self, "reduce_fn"), (self.xbar, "reduce_fn")]
