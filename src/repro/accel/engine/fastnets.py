"""Fast network models for the batched engine (no engine control flow).

Shared conventions:

* queue banks are lists of deques with an occupancy *count* per stage
  (or per bank group), so an idle subsystem costs one integer check
  per cycle; occupied banks are scanned in ascending position order —
  the same order as the reference's ``range()`` loops, which is what
  keeps arbitration, stall and combining decisions cycle-exact;
* routing is precomputed into ``table[stage][pos][dest] -> target``;
* records are flat tuples: propagation ``(dest, v, imm, count)``,
  frontend routing ``(dest, u, sprop)``, edge pieces
  ``(off, len, sprop)``;
* only counters that feed ``SimStats`` are maintained.

The event-driven fast path is picked per cycle by a one-compare window
proof (see ``docs/performance.md``): with ``count <= fifo_depth -
radix`` records in flight no FIFO can be over the block line, so no
stall, park or rejected offer is possible and the networks run
probe-free variants of ``advance``/``offer``.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError
from repro.mdp.generator import generate_network


def _routing_tables(plan) -> list[list[list[int]]]:
    """``table[stage][pos][dest] -> target position`` for one plan."""
    tables = []
    radix = plan.radix
    channels = plan.channels
    for stage in plan.stages:
        divisor = radix ** stage.digit_index
        per_pos: list = [None] * channels
        for module in stage.modules:
            ports = module.channels
            targets = [ports[(dest // divisor) % radix]
                       for dest in range(channels)]
            for p in ports:
                per_pos[p] = targets
        tables.append(per_pos)
    return tables


class _FastMdpNet:
    """MDP network with occupancy bitmasks — cf. ``MdpNetworkSim``.

    Items are flat tuples whose first element is the destination.  With
    ``combining`` enabled (propagation site), items are
    ``(dest, v, imm, count)`` and a mover whose vertex matches the
    target FIFO's tail merges via ``reduce_fn`` — the inlined
    equivalent of :func:`repro.accel.backend.make_vertex_combiner`.

    The event-driven fast path is picked per cycle by a one-compare
    window proof: with ``count <= block_len`` records in flight no FIFO
    can be over the block line (a FIFO's length is bounded by the
    total), so neither a stall nor a rejected offer is possible and
    ``advance`` runs a probe-free no-backpressure variant.
    """

    __slots__ = ("channels", "radix", "depth", "num_stages", "queues",
                 "counts", "count", "table", "stall_events",
                 "rejected_offers", "combining", "reduce_fn",
                 "block_len")

    def __init__(self, channels: int, radix: int, fifo_depth: int,
                 combining: bool = False, reduce_fn=None) -> None:
        if fifo_depth < radix:
            raise ConfigError(
                f"fifo_depth {fifo_depth} must be >= radix {radix} "
                "(nW1R FIFO never ready otherwise)")
        plan = generate_network(channels, radix)
        self.channels = plan.channels
        self.radix = plan.radix
        self.depth = fifo_depth
        self.num_stages = plan.num_stages
        self.queues = [[deque() for _ in range(self.channels)]
                       for _ in range(self.num_stages)]
        self.counts = [0] * self.num_stages
        self.count = 0
        self.table = _routing_tables(plan)
        self.stall_events = 0
        self.rejected_offers = 0
        self.combining = combining
        self.reduce_fn = reduce_fn
        #: a FIFO longer than this cannot accept a full radix burst
        self.block_len = fifo_depth - radix

    # ------------------------------------------------------------------
    def offer(self, channel: int, item) -> bool:
        """Inject ``item`` (``item[0]`` is the destination) at stage 0."""
        tq = self.queues[0][self.table[0][channel][item[0]]]
        if tq:
            if self.combining and tq[-1][1] == item[1]:
                tail = tq[-1]
                tq[-1] = (tail[0], tail[1],
                          self.reduce_fn(tail[2], item[2]), tail[3] + item[3])
                return True
            if len(tq) > self.block_len:
                self.rejected_offers += 1
                return False
        tq.append(item)
        self.counts[0] += 1
        self.count += 1
        return True

    def advance(self) -> None:
        """Move heads one stage forward, last stage first.

        With ``count <= block_len`` records in flight no FIFO can be
        over the block line (a FIFO's length is bounded by the total),
        so no stall, park or threshold crossing is possible and the
        no-backpressure variant below runs probe-free.
        """
        if self.count <= self.block_len:
            self._advance_nobackpressure()
        else:
            self._advance_checked()

    def _advance_nobackpressure(self) -> None:
        counts = self.counts
        queues = self.queues
        table = self.table
        combining = self.combining
        reduce_fn = self.reduce_fn
        combined = 0
        for s in range(self.num_stages - 1, 0, -1):
            total = counts[s - 1]
            if not total:
                continue
            cur = queues[s]
            tbl = table[s]
            popped = 0
            moved = 0
            seen = 0
            for p, queue in enumerate(queues[s - 1]):
                if not queue:
                    continue
                seen += 1
                item = queue[0]
                tq = cur[tbl[p][item[0]]]
                if tq and combining and tq[-1][1] == item[1]:
                    tail = tq[-1]
                    tq[-1] = (tail[0], tail[1],
                              reduce_fn(tail[2], item[2]),
                              tail[3] + item[3])
                    queue.popleft()
                    combined += 1
                else:
                    tq.append(queue.popleft())
                    moved += 1
                popped += 1
                if seen == total:
                    break
            counts[s - 1] -= popped
            counts[s] += moved
        if combined:
            self.count -= combined

    def _advance_checked(self) -> None:
        counts = self.counts
        queues = self.queues
        table = self.table
        block_len = self.block_len
        combining = self.combining
        reduce_fn = self.reduce_fn
        combined = 0
        stalled = 0
        for s in range(self.num_stages - 1, 0, -1):
            total = counts[s - 1]
            if not total:
                continue
            cur = queues[s]
            tbl = table[s]
            cprev = total
            moved = 0
            seen = 0
            for p, queue in enumerate(queues[s - 1]):
                if not queue:
                    continue
                seen += 1
                item = queue[0]
                tq = cur[tbl[p][item[0]]]
                if tq:
                    if combining and tq[-1][1] == item[1]:
                        tail = tq[-1]
                        tq[-1] = (tail[0], tail[1],
                                  reduce_fn(tail[2], item[2]),
                                  tail[3] + item[3])
                        queue.popleft()
                        cprev -= 1
                        combined += 1
                        if seen == total:
                            break
                        continue
                    if len(tq) > block_len:
                        stalled += 1
                        if seen == total:
                            break
                        continue
                tq.append(queue.popleft())
                cprev -= 1
                moved += 1
                # every occupied position holds >= 1 item, so once `seen`
                # equals the stage's item count the rest must be empty
                if seen == total:
                    break
            counts[s - 1] = cprev
            counts[s] += moved
        if combined:
            self.count -= combined
        if stalled:
            self.stall_events += stalled

    def deliver_reduce(self, tprop: list) -> tuple[int, int]:
        """Pop one record per occupied final-stage FIFO straight into the
        vPEs' Reduce; returns ``(records, edges)`` delivered."""
        last = self.num_stages - 1
        total = self.counts[last]
        if not total:
            return 0, 0
        reduce_fn = self.reduce_fn
        got = 0
        reduces = 0
        for queue in self.queues[last]:
            if queue:
                _, dv, imm, cnt = queue.popleft()
                tprop[dv] = reduce_fn(tprop[dv], imm)
                reduces += cnt
                got += 1
                if got == total:
                    break
        self.counts[last] -= got
        self.count -= got
        return got, reduces

    def deliver_into(self, sinks: list, sink_depth: int) -> int:
        """Pop one item per occupied final-stage FIFO into per-position
        ``sinks`` honouring ``sink_depth``; returns items popped."""
        last = self.num_stages - 1
        total = self.counts[last]
        if not total:
            return 0
        popped = 0
        seen = 0
        for p, queue in enumerate(self.queues[last]):
            if queue:
                seen += 1
                sink = sinks[p]
                if len(sink) < sink_depth:
                    sink.append(queue.popleft())
                    popped += 1
                if seen == total:
                    break
        self.counts[last] -= popped
        self.count -= popped
        return popped

    # -- fast-forward helpers ------------------------------------------
    def warp_single(self) -> int:
        """Advance the lone in-flight record straight to the final stage.

        With one record in flight nothing can stall or combine, so ``k``
        advances just move it ``k`` stages along its deterministic
        route.  Returns the cycles skipped (0 if already there).
        """
        last = self.num_stages - 1
        for s, c in enumerate(self.counts):
            if c:
                break
        if s == last:
            return 0
        queues = self.queues[s]
        for p in range(self.channels):
            if queues[p]:
                item = queues[p].popleft()
                break
        self.counts[s] = 0
        self.queues[last][item[0]].append(item)
        self.counts[last] = 1
        return last - s

    def drain_reduce(self, tprop: list) -> tuple[int, int, int]:
        """Run the network to empty with sinks always ready and no new
        offers; returns ``(cycles, records, edges)`` delivered.

        Equivalent to ticking deliver+advance until drained: no stall or
        combining decision differs because nothing is injected.  Two
        bulk shortcuts apply — a lone record warps stage-to-stage in one
        step, and a final-stage-only population drains in closed form
        (per-FIFO pops preserve same-vertex Reduce order; records in
        different FIFOs touch different tProperty entries).
        """
        cycles = 0
        got_total = 0
        reduces = 0
        last = self.num_stages - 1
        while self.count:
            if self.counts[last] == self.count:
                reduce_fn = self.reduce_fn
                longest = 0
                for queue in self.queues[last]:
                    if queue:
                        length = len(queue)
                        if length > longest:
                            longest = length
                        while queue:
                            _, dv, imm, cnt = queue.popleft()
                            tprop[dv] = reduce_fn(tprop[dv], imm)
                            reduces += cnt
                got_total += self.count
                cycles += longest
                self.counts[last] = 0
                self.count = 0
                break
            if self.count == 1:
                cycles += self.warp_single()
                continue
            got, red = self.deliver_reduce(tprop)
            self.advance()
            cycles += 1
            got_total += got
            reduces += red
        return cycles, got_total, reduces


class _FastXbar:
    """Arbitrated crossbar with occupancy counts — cf. ArbitratedCrossbar.

    Items are flat tuples whose first element is the destination; with
    ``combining`` (propagation site) they are ``(dest, v, imm, count)``
    and merge with an input FIFO's tail when the vertex matches.
    """

    __slots__ = ("num_inputs", "num_outputs", "depth", "inputs", "count",
                 "rr", "conflicts", "combining", "reduce_fn")

    def __init__(self, num_inputs: int, num_outputs: int, fifo_depth: int,
                 combining: bool = False, reduce_fn=None) -> None:
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.depth = fifo_depth
        self.inputs = [deque() for _ in range(num_inputs)]
        self.count = 0
        self.rr = [0] * num_outputs
        self.conflicts = 0
        self.combining = combining
        self.reduce_fn = reduce_fn

    def offer(self, i: int, item) -> bool:
        fifo = self.inputs[i]
        if fifo:
            if self.combining and fifo[-1][1] == item[1]:
                tail = fifo[-1]
                fifo[-1] = (tail[0], tail[1],
                            self.reduce_fn(tail[2], item[2]),
                            tail[3] + item[3])
                return True
            if len(fifo) >= self.depth:
                return False
        fifo.append(item)
        self.count += 1
        return True

    def tick_unit(self) -> list:
        """One arbitration cycle with every output accepting one item.

        Single pass over the occupied inputs: the round-robin winner per
        destination is tracked incrementally (the requester closest
        after the rotating pointer wins, exactly as sorting all
        requesters by ``(i - ptr) % n`` and taking the first would).
        """
        total = self.count
        if not total:
            return ()
        inputs = self.inputs
        num = self.num_inputs
        rr = self.rr
        winner: dict[int, int] = {}
        conflicts = 0
        seen = 0
        for i, fifo in enumerate(inputs):
            if not fifo:
                continue
            seen += 1
            dest = fifo[0][0]
            w = winner.get(dest)
            if w is None:
                winner[dest] = i
            else:
                conflicts += 1
                ptr = rr[dest]
                if (i - ptr) % num < (w - ptr) % num:
                    winner[dest] = i
            if seen == total:
                break
        self.conflicts += conflicts
        out: list = []
        for dest, i in winner.items():
            q = inputs[i]
            out.append(q.popleft())
            rr[dest] = (i + 1) % num
        self.count -= len(out)
        return out

    def tick_budget(self, budget: list[int]) -> list:
        """One arbitration cycle with a per-output acceptance budget."""
        total = self.count
        if not total:
            return ()
        inputs = self.inputs
        num = self.num_inputs
        rr = self.rr
        winner: dict[int, int] = {}
        conflicts = 0
        seen = 0
        for i, fifo in enumerate(inputs):
            if not fifo:
                continue
            seen += 1
            dest = fifo[0][0]
            if budget[dest] <= 0:
                conflicts += 1      # every requester of a full output loses
            else:
                w = winner.get(dest)
                if w is None:
                    winner[dest] = i
                else:
                    conflicts += 1
                    ptr = rr[dest]
                    if (i - ptr) % num < (w - ptr) % num:
                        winner[dest] = i
            if seen == total:
                break
        self.conflicts += conflicts
        out: list = []
        for dest, i in winner.items():
            q = inputs[i]
            out.append(q.popleft())
            rr[dest] = (i + 1) % num
        self.count -= len(out)
        return out


class _FastRangeNet:
    """Range-splitting network with counts — cf. RangeSplitNetwork.

    The same one-compare no-backpressure window proof as in
    :class:`_FastMdpNet` selects a probe-free ``advance`` / ``offer``
    variant whenever the total in-flight count fits under the block
    line (no combining exists at this site, so the light path is a
    pure move/split engine).
    """

    __slots__ = ("banks", "num_dispatchers", "group_width", "radix",
                 "depth", "num_stages", "queues", "counts", "count",
                 "stage_block", "stage_ports", "stall_events",
                 "rejected_offers", "block_len")

    def __init__(self, banks: int, num_dispatchers: int, radix: int,
                 fifo_depth: int) -> None:
        plan = generate_network(num_dispatchers, radix)
        self.banks = banks
        self.num_dispatchers = num_dispatchers
        self.group_width = banks // num_dispatchers
        self.radix = radix
        self.depth = fifo_depth
        self.num_stages = plan.num_stages
        self.queues = [[deque() for _ in range(num_dispatchers)]
                       for _ in range(self.num_stages)]
        self.counts = [0] * self.num_stages
        self.count = 0
        self.stage_block: list[int] = []
        self.stage_ports: list[list[tuple[int, ...]]] = []
        for stage in plan.stages:
            self.stage_block.append(self.group_width * radix ** stage.digit_index)
            ports: list = [None] * num_dispatchers
            for module in stage.modules:
                for p in module.channels:
                    ports[p] = module.channels
            self.stage_ports.append(ports)
        self.stall_events = 0
        self.rejected_offers = 0
        self.block_len = fifo_depth - radix

    # ------------------------------------------------------------------
    def _try_insert(self, stage: int, entry_pos: int, off: int, length: int,
                    payload) -> bool:
        block = self.stage_block[stage]
        ports = self.stage_ports[stage][entry_pos]
        radix = self.radix
        block_len = self.block_len
        queues = self.queues[stage]
        # split at block-aligned bank boundaries (cf. split_by_blocks)
        start_bank = off % self.banks
        rel = start_bank % block
        if rel + length <= block:       # common case: the piece fits one block
            q = queues[ports[(start_bank // block) % radix]]
            if len(q) > block_len:
                return False
            q.append((off, length, payload))
            self.counts[stage] += 1
            self.count += 1
            return True
        targets: list[tuple[int, int, int]] = []
        while length > 0:
            room = block - (start_bank % block)
            take = length if length < room else room
            t = ports[(start_bank // block) % radix]
            if len(queues[t]) > block_len:
                return False        # bail before building the whole split
            targets.append((t, off, take))
            off += take
            start_bank += take
            length -= take
        for t, s_off, s_len in targets:
            queues[t].append((s_off, s_len, payload))
        added = len(targets)
        self.counts[stage] += added
        self.count += added
        return True

    def _insert_light(self, stage: int, entry_pos: int, off: int,
                      length: int, payload) -> None:
        """``_try_insert`` when no FIFO can be full (count under line)."""
        block = self.stage_block[stage]
        ports = self.stage_ports[stage][entry_pos]
        radix = self.radix
        queues = self.queues[stage]
        start_bank = off % self.banks
        rel = start_bank % block
        if rel + length <= block:
            queues[ports[(start_bank // block) % radix]].append(
                (off, length, payload))
            self.counts[stage] += 1
            self.count += 1
            return
        added = 0
        while length > 0:
            room = block - (start_bank % block)
            take = length if length < room else room
            queues[ports[(start_bank // block) % radix]].append(
                (off, take, payload))
            off += take
            start_bank += take
            length -= take
            added += 1
        self.counts[stage] += added
        self.count += added

    def offer(self, channel: int, off: int, length: int, payload) -> bool:
        if self.count <= self.block_len:
            self._insert_light(0, channel, off, length, payload)
            return True
        if self._try_insert(0, channel, off, length, payload):
            return True
        self.rejected_offers += 1
        return False

    def advance(self) -> None:
        if self.count <= self.block_len:
            self._advance_nobackpressure()
        else:
            self._advance_checked()

    def _advance_nobackpressure(self) -> None:
        counts = self.counts
        queues = self.queues
        banks = self.banks
        radix = self.radix
        for s in range(self.num_stages - 1, 0, -1):
            total = counts[s - 1]
            if not total:
                continue
            cur = queues[s]
            block = self.stage_block[s]
            ports = self.stage_ports[s]
            seen = 0
            moved = 0
            for p, queue in enumerate(queues[s - 1]):
                if not queue:
                    continue
                seen += 1
                item = queue[0]
                start_bank = item[0] % banks
                rel = start_bank % block
                if rel + item[1] <= block:      # fits one block: plain move
                    cur[ports[p][(start_bank // block) % radix]].append(
                        queue.popleft())
                    moved += 1
                else:
                    self._insert_light(s, p, item[0], item[1], item[2])
                    queue.popleft()
                    counts[s - 1] -= 1
                    self.count -= 1
                if seen == total:
                    break
            if moved:
                counts[s - 1] -= moved
                counts[s] += moved

    def _advance_checked(self) -> None:
        counts = self.counts
        queues = self.queues
        banks = self.banks
        radix = self.radix
        block_len = self.block_len
        for s in range(self.num_stages - 1, 0, -1):
            total = counts[s - 1]
            if not total:
                continue
            cur = queues[s]
            block = self.stage_block[s]
            ports = self.stage_ports[s]
            seen = 0
            moved = 0
            stalled = 0
            for p, queue in enumerate(queues[s - 1]):
                if not queue:
                    continue
                seen += 1
                item = queue[0]
                start_bank = item[0] % banks
                rel = start_bank % block
                if rel + item[1] <= block:      # fits one block: plain move
                    tq = cur[ports[p][(start_bank // block) % radix]]
                    if len(tq) > block_len:
                        stalled += 1
                    else:
                        tq.append(queue.popleft())
                        moved += 1
                elif self._try_insert(s, p, item[0], item[1], item[2]):
                    queue.popleft()
                    counts[s - 1] -= 1
                    self.count -= 1
                else:
                    stalled += 1
                if seen == total:
                    break
            if moved:
                counts[s - 1] -= moved
                counts[s] += moved
            if stalled:
                self.stall_events += stalled
