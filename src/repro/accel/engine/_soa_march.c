/* SoA scatter-march kernel for the `soa` engine.
 *
 * One call simulates one whole scatter phase of the batched engine's
 * cycle loop (propagation deliver -> ePE offers -> edge tick ->
 * frontend tick) over structure-of-arrays state: every FIFO bank is a
 * preallocated int64/double ring with head/length vectors, routing is
 * the precomputed table[stage][pos][dest] tensor, and arbiter state
 * (odd-even parity, rotating-scan starts, round-robin pointers, stall
 * memos) lives in flat int arrays.  The Python side (soa.py) owns the
 * numpy arrays; this kernel only views them through `SoaState`.
 *
 * The kernel must be BYTE-IDENTICAL to repro/accel/engine/batched.py:
 * every loop below mirrors one loop of the batched subnetworks
 * (fastnets.py / frontends.py / edgestage.py / propagation.py), in the
 * same scan order, with the same stall/combining/arbitration decisions
 * and the same float operation order (C doubles and CPython floats are
 * both IEEE-754 binary64, and the closed-form reduce kernels below tie
 * exactly like the Python builtins).  This kernel ticks every cycle;
 * the batched bulk drain/skip fast-forwards are proven equivalent to
 * per-cycle ticking (docs/performance.md), so the two marches agree.
 * The differential suite and tests/test_engine_fuzz.py hold it to that.
 *
 * Recording phases run in-kernel too (`recording` flag): the march
 * proceeds with real float immediates — structural decisions never
 * read them — while slot-id companion rings (ep_slot / pn_qsl /
 * px_qsl) carry each leaf's index into rec_news so the combining and
 * delivery events can be logged as slot pairs, exactly the stream the
 * Python PhaseRecorder produces.  The frontend interface stream
 * (pulls / retires per tick) is logged flat with tick indices; the
 * Python side regroups it into a FrontTrace.  Because this kernel
 * ticks every cycle, a C-recorded trace has no skip entries — idle
 * frontend ticks appear as empty pull/retire tuples, which the shadow
 * replay treats identically (an idle tick only flips per-cycle arbiter
 * state, the same as skip(1)).  REPRO_SOA_RECORD=off restores the
 * Python-recording fallback at the engine layer.
 *
 * Plain C99 + libc only; compiled at first use via cc -O2 -shared
 * (see soakernel.py).  No -ffast-math: IEEE semantics are the point.
 */

#include <string.h>

typedef long long i64;
typedef double f64;

#define SOA_ABI_VERSION 2
#define SOA_MAGIC 0x534F4132LL

/* reduce_op codes */
#define RED_ADD 0
#define RED_MIN 1
#define RED_MAX 2

/* proc codes: 0 identity, 2 payload+w, 3 min(payload,w), 5 payload+const
 * (5 is the weight-independent proc==1 with a declared closed form) */
#define PROC_IDENTITY 0
#define PROC_ADD_W 2
#define PROC_MIN_W 3
#define PROC_ADD_CONST 5

/* counter slots (ctr array), mapped to Python counter sites in soa.py */
#define C_DEFERRALS 0
#define C_FRONT_STALL 1     /* mdp front net stall_events | xbar conflicts */
#define C_FRONT_REJ 2       /* mdp front net rejected_offers */
#define C_EDGE_BLOCKED 3    /* disp_blocked | window_conflicts */
#define C_RNET_STALL 4
#define C_RNET_REJ 5
#define C_PROP_STALL 6      /* mdp prop net stall_events | xbar conflicts */
#define C_PROP_REJ 7
#define C_NUM 8

/* Every field is 8 bytes (i64 / f64 / pointer), so the layout has no
 * padding and the ctypes mirror in soa.py matches field-for-field; the
 * magic fields at both ends and soa_abi_version() guard against skew. */
typedef struct {
    i64 magic;
    /* -- config ----------------------------------------------------- */
    i64 n, m, w;            /* front channels, back channels, dispatchers */
    i64 fifo_depth, block_len;      /* MDP-net block line (fd - radix) */
    i64 issue_depth, fe_depth, disp_depth, epe_depth, replay_depth;
    i64 combining;
    i64 reduce_op;
    i64 proc;
    f64 proc_const;
    i64 front_is_mdp, edge_is_mdp, prop_is_mdp;
    i64 ce_issue_limit, ce_capacity;
    i64 has_rnet;
    i64 rn_radix, rn_block_len, rn_ring;    /* range net (own radix) */
    /* -- graph ------------------------------------------------------ */
    const i64 *offsets;
    const i64 *dst;
    const i64 *weights;
    /* -- frontend MDP net (Sf x n rings of fifo_depth) -------------- */
    i64 fn_stages;
    const i64 *fn_table;    /* [Sf][n][n] */
    i64 *fn_qu;
    f64 *fn_qs;
    i64 *fn_head, *fn_len;  /* [Sf*n] */
    i64 *fn_counts;         /* [Sf] */
    /* -- frontend crossbar (n input rings) -------------------------- */
    i64 *fx_qu;
    f64 *fx_qs;
    i64 *fx_head, *fx_len;  /* [n] */
    i64 *fx_rr;             /* [n], persistent */
    /* -- issue queues [n][issue_depth] ------------------------------ */
    i64 *iq_u;
    f64 *iq_s;
    i64 *iq_head, *iq_len;
    /* -- fe_out [n][fe_depth] --------------------------------------- */
    i64 *fo_off, *fo_len;
    f64 *fo_s;
    i64 *fo_head, *fo_cnt;
    /* -- ActiveVertex parts (flat, grouped by channel) -------------- */
    const i64 *part_u;
    const f64 *part_sp;
    i64 *part_pos, *part_end;   /* [n]; part_pos advances */
    /* -- MDP edge stage --------------------------------------------- */
    i64 *rp_po, *rp_pl;         /* pending rings [n][replay_depth] */
    f64 *rp_ps;
    i64 *rp_head, *rp_cnt;
    i64 *rp_cur_off, *rp_cur_rem;   /* lazy piece stream per channel */
    f64 *rp_cur_pay;
    const i64 *pos_of;          /* [n] */
    const i64 *chan_at;         /* channel ids grouped by position */
    const i64 *chan_at_start, *chan_at_cnt;     /* [w] */
    i64 *busy_at;               /* [w] */
    i64 *rp_rr;                 /* [w], persistent */
    i64 rn_stages;
    const i64 *rn_block;        /* [Sr] stage block widths */
    const i64 *rn_ptbl;         /* [Sr][w][rn_radix] port tables */
    i64 *rn_qo, *rn_ql;         /* rings [Sr*w] of rn_ring slots */
    f64 *rn_qp;
    i64 *rn_head, *rn_len;      /* [Sr*w] */
    i64 *rn_counts;             /* [Sr] */
    i64 *dq_off, *dq_len;       /* dispatcher rings [w][disp_depth] */
    f64 *dq_pay;
    i64 *dq_head, *dq_cnt;
    i64 *disp_stall;            /* [w], persistent */
    /* -- central edge stage ----------------------------------------- */
    i64 *ce_off, *ce_len;       /* ring [ce_capacity] */
    f64 *ce_pay;
    i64 ce_stall_off, ce_stall_len, ce_stall_bank;  /* persistent; -1 none */
    /* -- ePE queues [m][epe_depth] ---------------------------------- */
    i64 *ep_v;
    f64 *ep_imm;
    i64 *ep_head, *ep_cnt;
    /* -- propagation MDP net (Sp x m rings of fifo_depth) ----------- */
    i64 pn_stages;
    const i64 *pn_table;        /* [Sp][m][m] */
    i64 *pn_qv, *pn_qc;
    f64 *pn_qi;
    i64 *pn_head, *pn_len;      /* [Sp*m] */
    i64 *pn_counts;             /* [Sp] */
    /* -- propagation crossbar (m input rings) ----------------------- */
    i64 *px_qv, *px_qc;
    f64 *px_qi;
    i64 *px_head, *px_len;      /* [m] */
    i64 *px_rr;                 /* [m], persistent */
    /* -- scratch [max(n,m,w)] --------------------------------------- */
    i64 *s_epoch, *s_val, *s_epoch2, *s_val2;
    /* -- arbiter scalars (persistent; seeded + written back) -------- */
    i64 parity, fstart;
    /* -- per-phase run state ---------------------------------------- */
    f64 *tprop;                 /* full num_vertices array */
    i64 expected, fe_pending, limit;
    /* -- in-kernel phase recording (the windows.py record stream) ---- */
    i64 recording;              /* per-phase flag; buffers valid iff 1 */
    i64 *ep_slot;               /* [m][epe_depth] slot-id companions   */
    i64 *pn_qsl;                /* [Sp*m][fifo_depth] slot companions  */
    i64 *px_qsl;                /* [m][fifo_depth] slot companions     */
    i64 *rec_news;              /* leaf slot -> edge index             */
    i64 *rec_merge_a, *rec_merge_b;     /* combining log (tail, moved) */
    i64 *rec_deliver;           /* delivered slot ids, delivery order  */
    i64 *rec_pull_ch, *rec_pull_cyc;    /* fe_out pops, per tick       */
    i64 *rec_ret_ch, *rec_ret_u, *rec_ret_cyc;  /* retires, per tick   */
    i64 news_len, merge_len, deliver_len, pull_len, ret_len;
    /* -- resident tProperty delta tracking (always on) --------------- */
    i64 *touch_dv;              /* delivered vertices, dups allowed    */
    i64 touch_len;
    /* -- outputs ----------------------------------------------------- */
    i64 *ctr;                   /* [C_NUM], zeroed here */
    i64 cycles, starved, busy, reduces;
    i64 magic2;
} SoaState;

/* ------------------------------------------------------------------ */
static inline f64 red(i64 op, f64 a, f64 b) {
    /* ties resolve to the FIRST argument, exactly like Python's
     * min()/max() builtins the batched engine binds as reduce_fn */
    if (op == RED_ADD) return a + b;
    if (op == RED_MIN) return (b < a) ? b : a;
    return (b > a) ? b : a;
}

/* ring slot addressing: queue `q` in a bank of queues with depth D */
#define RING(arr, q, D, i) (arr)[((q) * (D)) + (i)]

/* transient per-phase occupancy totals (queues are empty at phase
 * boundaries, so these reset to zero every soa_march call) */
static i64 fe_total, iq_total, fn_count, fx_count, rn_count;
static i64 disp_count, epe_count, rp_busy_total, ce_cnt, ce_head;
static i64 pn_count, px_count;
static i64 epoch_ctr;
static i64 cur_tick;    /* 0-based tick index of the cycle in flight */

/* ================================================================== */
/* Frontend: shared retire (issue head -> {Off, Len} in fe_out)       */
/* ================================================================== */

static inline i64 fe_retire(SoaState *st, i64 ch) {
    i64 D = st->issue_depth;
    i64 h = st->iq_head[ch];
    i64 u = RING(st->iq_u, ch, D, h);
    f64 sp = RING(st->iq_s, ch, D, h);
    st->iq_head[ch] = (h + 1) % D;
    st->iq_len[ch] -= 1;
    iq_total -= 1;
    if (st->recording) {
        i64 r = st->ret_len++;
        st->rec_ret_ch[r] = ch;
        st->rec_ret_u[r] = u;
        st->rec_ret_cyc[r] = cur_tick;
    }
    i64 off = st->offsets[u];
    i64 length = st->offsets[u + 1] - off;
    if (length > 0) {
        i64 FD = st->fe_depth;
        i64 slot = (st->fo_head[ch] + st->fo_cnt[ch]) % FD;
        RING(st->fo_off, ch, FD, slot) = off;
        RING(st->fo_len, ch, FD, slot) = length;
        RING(st->fo_s, ch, FD, slot) = sp;
        st->fo_cnt[ch] += 1;
        fe_total += 1;
    }
    return 1;
}

/* ================================================================== */
/* Frontend MDP net (_FastMdpNet over (u % n, u, sprop); no combining)*/
/* ================================================================== */

static void fn_advance_checked(SoaState *st) {
    /* always the checked variant: under the block line it never stalls,
     * so it is move-for-move the no-backpressure fast path */
    i64 n = st->n, D = st->fifo_depth, bl = st->block_len;
    i64 stalled_total = 0;
    for (i64 s = st->fn_stages - 1; s >= 1; s--) {
        i64 total = st->fn_counts[s - 1];
        if (!total) continue;
        const i64 *tbl = st->fn_table + s * n * n;
        i64 moved = 0, seen = 0, stalled = 0;
        for (i64 p = 0; p < n; p++) {
            i64 qi = (s - 1) * n + p;
            if (!st->fn_len[qi]) continue;
            seen++;
            i64 h = st->fn_head[qi];
            i64 u = RING(st->fn_qu, qi, D, h);
            i64 ti = s * n + tbl[p * n + (u % n)];
            if (st->fn_len[ti] > bl) {
                stalled++;
            } else {
                i64 slot = (st->fn_head[ti] + st->fn_len[ti]) % D;
                RING(st->fn_qu, ti, D, slot) = u;
                RING(st->fn_qs, ti, D, slot) = RING(st->fn_qs, qi, D, h);
                st->fn_len[ti] += 1;
                st->fn_head[qi] = (h + 1) % D;
                st->fn_len[qi] -= 1;
                moved++;
            }
            if (seen == total) break;
        }
        st->fn_counts[s - 1] -= moved;
        st->fn_counts[s] += moved;
        stalled_total += stalled;
    }
    if (stalled_total) st->ctr[C_FRONT_STALL] += stalled_total;
}

static void fn_deliver_into_issue(SoaState *st) {
    i64 n = st->n, D = st->fifo_depth, ID = st->issue_depth;
    i64 last = st->fn_stages - 1;
    i64 total = st->fn_counts[last];
    i64 popped = 0, seen = 0;
    for (i64 p = 0; p < n; p++) {
        i64 qi = last * n + p;
        if (st->fn_len[qi]) {
            seen++;
            if (st->iq_len[p] < ID) {
                i64 h = st->fn_head[qi];
                i64 slot = (st->iq_head[p] + st->iq_len[p]) % ID;
                RING(st->iq_u, p, ID, slot) = RING(st->fn_qu, qi, D, h);
                RING(st->iq_s, p, ID, slot) = RING(st->fn_qs, qi, D, h);
                st->iq_len[p] += 1;
                st->fn_head[qi] = (h + 1) % D;
                st->fn_len[qi] -= 1;
                popped++;
            }
            if (seen == total) break;
        }
    }
    st->fn_counts[last] -= popped;
    fn_count -= popped;
    iq_total += popped;
}

static void fn_inject_parts(SoaState *st) {
    i64 n = st->n, D = st->fifo_depth, bl = st->block_len;
    const i64 *tbl0 = st->fn_table;     /* stage 0 */
    i64 added = 0;
    for (i64 p = 0; p < n; p++) {
        i64 pos = st->part_pos[p];
        if (pos >= st->part_end[p]) continue;
        i64 u = st->part_u[pos];
        i64 t = tbl0[p * n + (u % n)];  /* stage-0 queue index == t */
        if (st->fn_len[t] && st->fn_len[t] > bl) {
            st->ctr[C_FRONT_REJ] += 1;
            continue;
        }
        i64 slot = (st->fn_head[t] + st->fn_len[t]) % D;
        RING(st->fn_qu, t, D, slot) = u;
        RING(st->fn_qs, t, D, slot) = st->part_sp[pos];
        st->fn_len[t] += 1;
        added++;
        st->part_pos[p] = pos + 1;
    }
    if (added) {
        st->fn_counts[0] += added;
        fn_count += added;
    }
}

static i64 parts_remaining(SoaState *st) {
    for (i64 p = 0; p < st->n; p++)
        if (st->part_pos[p] < st->part_end[p]) return 1;
    return 0;
}

static i64 front_mdp_tick(SoaState *st) {
    i64 n = st->n, ID = st->issue_depth;
    i64 retired = 0;
    /* -- issue: odd-even arbitration over the request heads */
    if (iq_total) {
        i64 parity = st->parity;
        i64 epoch = ++epoch_ctr;
        i64 any_claimed = 0;        /* Python: claimed dict is not None */
        for (i64 ch = parity; ch < n; ch += 2) {    /* priority: grant */
            if (st->iq_len[ch] && st->fo_cnt[ch] < st->fe_depth) {
                i64 u = RING(st->iq_u, ch, ID, st->iq_head[ch]);
                st->s_epoch[u % n] = epoch;
                st->s_val[u % n] = u;
                st->s_epoch[(u + 1) % n] = epoch;
                st->s_val[(u + 1) % n] = u + 1;
                any_claimed = 1;
                retired += fe_retire(st, ch);
            }
        }
        for (i64 ch = 1 - parity; ch < n; ch += 2) {    /* defer */
            if (st->iq_len[ch] && st->fo_cnt[ch] < st->fe_depth) {
                i64 u = RING(st->iq_u, ch, ID, st->iq_head[ch]);
                i64 a2 = u + 1;
                i64 b1 = u % n, b2 = a2 % n;
                /* claimed.get(b, default) == default passes: a bank is
                 * free if unclaimed OR claimed with the same value */
                if (!any_claimed
                    || ((st->s_epoch[b1] != epoch || st->s_val[b1] == u)
                        && (st->s_epoch[b2] != epoch
                            || st->s_val[b2] == a2))) {
                    st->s_epoch[b1] = epoch; st->s_val[b1] = u;
                    st->s_epoch[b2] = epoch; st->s_val[b2] = a2;
                    any_claimed = 1;
                    retired += fe_retire(st, ch);
                } else {
                    st->ctr[C_DEFERRALS] += 1;
                }
            }
        }
    }
    st->parity ^= 1;
    /* -- route: deliver into issue queues, advance, inject parts */
    if (st->fn_counts[st->fn_stages - 1]) fn_deliver_into_issue(st);
    if (fn_count) fn_advance_checked(st);
    if (parts_remaining(st)) fn_inject_parts(st);
    return retired;
}

/* ================================================================== */
/* Frontend crossbar (_FastXbar over (u % n, u, sprop); no combining) */
/* ================================================================== */

static i64 front_xbar_tick(SoaState *st) {
    i64 n = st->n, D = st->fifo_depth, ID = st->issue_depth;
    i64 retired = 0;
    /* -- issue: centralized greedy claim arbitration (rotating scan) */
    if (iq_total) {
        i64 epoch = ++epoch_ctr;
        i64 start = st->fstart;
        for (i64 k = 0; k < n; k++) {
            i64 ch = (start + k) % n;
            if (st->iq_len[ch] && st->fo_cnt[ch] < st->fe_depth) {
                i64 u = RING(st->iq_u, ch, ID, st->iq_head[ch]);
                i64 b1 = u % n, b2 = (u + 1) % n;
                if (st->s_epoch[b1] == epoch || st->s_epoch[b2] == epoch) {
                    st->ctr[C_DEFERRALS] += 1;
                } else {
                    st->s_epoch[b1] = epoch;
                    st->s_epoch[b2] = epoch;
                    retired += fe_retire(st, ch);
                }
            }
        }
    }
    st->fstart = (st->fstart + 1) % n;
    /* -- route: crossbar tick under issue-queue budgets (tick_budget:
     * budget[dest] = issue_depth - len(issue_q[dest]), computed before
     * arbitration; each granted dest accepts exactly one item) */
    if (fx_count) {
        i64 epoch = ++epoch_ctr;
        i64 total = fx_count, seen = 0, conflicts = 0;
        for (i64 i = 0; i < n; i++) {
            if (!st->fx_len[i]) continue;
            seen++;
            i64 u = RING(st->fx_qu, i, D, st->fx_head[i]);
            i64 dest = u % n;
            if (st->iq_len[dest] >= ID) {
                conflicts++;    /* every requester of a full output loses */
            } else if (st->s_epoch2[dest] != epoch) {
                st->s_epoch2[dest] = epoch;
                st->s_val2[dest] = i;
            } else {
                conflicts++;
                i64 ptr = st->fx_rr[dest];
                i64 w = st->s_val2[dest];
                if (((i - ptr) % n + n) % n < ((w - ptr) % n + n) % n)
                    st->s_val2[dest] = i;
            }
            if (seen == total) break;
        }
        st->ctr[C_FRONT_STALL] += conflicts;
        /* winners pop distinct inputs into distinct issue queues, so
         * ascending-dest order here matches dict insertion order */
        for (i64 dest = 0; dest < n; dest++) {
            if (st->s_epoch2[dest] != epoch) continue;
            i64 i = st->s_val2[dest];
            i64 h = st->fx_head[i];
            i64 slot = (st->iq_head[dest] + st->iq_len[dest]) % ID;
            RING(st->iq_u, dest, ID, slot) = RING(st->fx_qu, i, D, h);
            RING(st->iq_s, dest, ID, slot) = RING(st->fx_qs, i, D, h);
            st->iq_len[dest] += 1;
            iq_total += 1;
            st->fx_head[i] = (h + 1) % D;
            st->fx_len[i] -= 1;
            fx_count--;
            st->fx_rr[dest] = (i + 1) % n;
        }
    }
    /* -- inject parts: offer one head per alive part (xbar offer has
     * no combining here and does NOT count rejected offers) */
    for (i64 p = 0; p < n; p++) {
        i64 pos = st->part_pos[p];
        if (pos >= st->part_end[p]) continue;
        if (st->fx_len[p] >= st->fifo_depth) continue;  /* refused */
        i64 slot = (st->fx_head[p] + st->fx_len[p]) % D;
        RING(st->fx_qu, p, D, slot) = st->part_u[pos];
        RING(st->fx_qs, p, D, slot) = st->part_sp[pos];
        st->fx_len[p] += 1;
        fx_count++;
        st->part_pos[p] = pos + 1;
    }
    return retired;
}

/* ================================================================== */
/* Range-split network (_FastRangeNet; own radix and block line)      */
/* ================================================================== */

static i64 rn_try_insert(SoaState *st, i64 stage, i64 entry, i64 off,
                         i64 length, f64 payload) {
    i64 w = st->w, RD = st->rn_ring, bl = st->rn_block_len;
    i64 radix = st->rn_radix;
    i64 block = st->rn_block[stage];
    const i64 *ports = st->rn_ptbl + (stage * w + entry) * radix;
    i64 start_bank = off % st->m;
    i64 rel = start_bank % block;
    if (rel + length <= block) {    /* common case: fits one block */
        i64 qi = stage * w + ports[(start_bank / block) % radix];
        if (st->rn_len[qi] > bl) return 0;
        i64 slot = (st->rn_head[qi] + st->rn_len[qi]) % RD;
        RING(st->rn_qo, qi, RD, slot) = off;
        RING(st->rn_ql, qi, RD, slot) = length;
        RING(st->rn_qp, qi, RD, slot) = payload;
        st->rn_len[qi] += 1;
        st->rn_counts[stage] += 1;
        rn_count += 1;
        return 1;
    }
    /* two passes exactly like the Python targets-list build: every
     * sub-piece validates against PRE-push queue lengths (sub-pieces
     * may share a target queue), then all push */
    i64 o = off, sb = start_bank, len = length;
    while (len > 0) {
        i64 room = block - sb % block;
        i64 take = (len < room) ? len : room;
        if (st->rn_len[stage * w + ports[(sb / block) % radix]] > bl)
            return 0;
        o += take; sb += take; len -= take;
    }
    o = off; sb = start_bank; len = length;
    i64 added = 0;
    while (len > 0) {
        i64 room = block - sb % block;
        i64 take = (len < room) ? len : room;
        i64 qi = stage * w + ports[(sb / block) % radix];
        i64 slot = (st->rn_head[qi] + st->rn_len[qi]) % RD;
        RING(st->rn_qo, qi, RD, slot) = o;
        RING(st->rn_ql, qi, RD, slot) = take;
        RING(st->rn_qp, qi, RD, slot) = payload;
        st->rn_len[qi] += 1;
        o += take; sb += take; len -= take;
        added++;
    }
    st->rn_counts[stage] += added;
    rn_count += added;
    return 1;
}

static void rn_insert_light(SoaState *st, i64 stage, i64 entry, i64 off,
                            i64 length, f64 payload) {
    i64 w = st->w, RD = st->rn_ring, radix = st->rn_radix;
    i64 block = st->rn_block[stage];
    const i64 *ports = st->rn_ptbl + (stage * w + entry) * radix;
    i64 sb = off % st->m;
    i64 added = 0;
    while (length > 0) {
        i64 room = block - sb % block;
        i64 take = (length < room) ? length : room;
        i64 qi = stage * w + ports[(sb / block) % radix];
        i64 slot = (st->rn_head[qi] + st->rn_len[qi]) % RD;
        RING(st->rn_qo, qi, RD, slot) = off;
        RING(st->rn_ql, qi, RD, slot) = take;
        RING(st->rn_qp, qi, RD, slot) = payload;
        st->rn_len[qi] += 1;
        off += take; sb += take; length -= take;
        added++;
    }
    st->rn_counts[stage] += added;
    rn_count += added;
}

static i64 rn_offer(SoaState *st, i64 entry, i64 off, i64 length,
                    f64 payload) {
    if (rn_count <= st->rn_block_len) {
        rn_insert_light(st, 0, entry, off, length, payload);
        return 1;
    }
    if (rn_try_insert(st, 0, entry, off, length, payload)) return 1;
    st->ctr[C_RNET_REJ] += 1;
    return 0;
}

static void rn_advance_checked(SoaState *st) {
    i64 w = st->w, RD = st->rn_ring, bl = st->rn_block_len;
    i64 radix = st->rn_radix;
    i64 stalled_total = 0;
    for (i64 s = st->rn_stages - 1; s >= 1; s--) {
        i64 total = st->rn_counts[s - 1];
        if (!total) continue;
        i64 block = st->rn_block[s];
        i64 seen = 0, moved = 0, stalled = 0;
        for (i64 p = 0; p < w; p++) {
            i64 qi = (s - 1) * w + p;
            if (!st->rn_len[qi]) continue;
            seen++;
            i64 h = st->rn_head[qi];
            i64 off = RING(st->rn_qo, qi, RD, h);
            i64 length = RING(st->rn_ql, qi, RD, h);
            i64 sb = off % st->m;
            if (sb % block + length <= block) {     /* plain move */
                const i64 *ports = st->rn_ptbl + (s * w + p) * radix;
                i64 ti = s * w + ports[(sb / block) % radix];
                if (st->rn_len[ti] > bl) {
                    stalled++;
                } else {
                    i64 slot = (st->rn_head[ti] + st->rn_len[ti]) % RD;
                    RING(st->rn_qo, ti, RD, slot) = off;
                    RING(st->rn_ql, ti, RD, slot) = length;
                    RING(st->rn_qp, ti, RD, slot) = RING(st->rn_qp, qi, RD, h);
                    st->rn_len[ti] += 1;
                    st->rn_head[qi] = (h + 1) % RD;
                    st->rn_len[qi] -= 1;
                    moved++;
                }
            } else if (rn_try_insert(st, s, p, off, length,
                                     RING(st->rn_qp, qi, RD, h))) {
                st->rn_head[qi] = (h + 1) % RD;
                st->rn_len[qi] -= 1;
                st->rn_counts[s - 1] -= 1;
                rn_count -= 1;
            } else {
                stalled++;
            }
            if (seen == total) break;
        }
        if (moved) {
            st->rn_counts[s - 1] -= moved;
            st->rn_counts[s] += moved;
        }
        stalled_total += stalled;
    }
    if (stalled_total) st->ctr[C_RNET_STALL] += stalled_total;
}

/* ================================================================== */
/* Edge stages: shared ePE emission                                   */
/* ================================================================== */

static inline void epe_push(SoaState *st, i64 bank, i64 v, f64 imm, i64 e) {
    i64 D = st->epe_depth;
    i64 slot = (st->ep_head[bank] + st->ep_cnt[bank]) % D;
    RING(st->ep_v, bank, D, slot) = v;
    RING(st->ep_imm, bank, D, slot) = imm;
    if (st->recording) {
        /* a new leaf: its slot id is its index into rec_news, exactly
         * len(rec_news) at append time like the Python recorder */
        i64 sl = st->news_len++;
        st->rec_news[sl] = e;
        RING(st->ep_slot, bank, D, slot) = sl;
    }
    st->ep_cnt[bank] += 1;
}

static void edge_emit(SoaState *st, i64 off, i64 length, f64 payload,
                      i64 first_bank) {
    /* replay pieces never wrap, so banks are consecutive from off % m;
     * proc dispatch hoisted out of the loop like the batched kernels */
    i64 bank = first_bank;
    switch (st->proc) {
    case PROC_IDENTITY:
        for (i64 e = off; e < off + length; e++, bank++)
            epe_push(st, bank, st->dst[e], payload, e);
        break;
    case PROC_ADD_W:
        for (i64 e = off; e < off + length; e++, bank++)
            epe_push(st, bank, st->dst[e], payload + (f64)st->weights[e], e);
        break;
    case PROC_MIN_W:
        for (i64 e = off; e < off + length; e++, bank++) {
            f64 wt = (f64)st->weights[e];
            epe_push(st, bank, st->dst[e], (payload < wt) ? payload : wt, e);
        }
        break;
    default: {      /* PROC_ADD_CONST: hoisted weight-independent form */
        f64 pv = payload + st->proc_const;
        for (i64 e = off; e < off + length; e++, bank++)
            epe_push(st, bank, st->dst[e], pv, e);
        break;
    }
    }
    epe_count += length;
}

/* ================================================================== */
/* MDP edge stage                                                     */
/* ================================================================== */

static i64 disp_accept0(SoaState *st, i64 off, i64 length, f64 payload) {
    if (st->dq_cnt[0] >= st->disp_depth) return 0;
    i64 slot = (st->dq_head[0] + st->dq_cnt[0]) % st->disp_depth;
    st->dq_off[slot] = off;
    st->dq_len[slot] = length;
    st->dq_pay[slot] = payload;
    st->dq_cnt[0] += 1;
    disp_count += 1;
    return 1;
}

/* lazy piece stream: (cur_off, cur_rem, cur_pay) replaces rp_pieces.
 * Pieces are consumed strictly head-first, and split_request(off, len,
 * m, m) yields successive min(rem, m - off % m) chunks, so emitting
 * the next chunk on demand is exactly the recorded deque of pieces. */
static i64 rp_emit(SoaState *st, i64 ch, i64 *off, i64 *length, f64 *pay) {
    if (!st->rp_cur_rem[ch]) {
        if (!st->rp_cnt[ch]) return 0;
        i64 D = st->replay_depth;
        i64 h = st->rp_head[ch];
        st->rp_cur_off[ch] = RING(st->rp_po, ch, D, h);
        st->rp_cur_rem[ch] = RING(st->rp_pl, ch, D, h);
        st->rp_cur_pay[ch] = RING(st->rp_ps, ch, D, h);
        st->rp_head[ch] = (h + 1) % D;
        st->rp_cnt[ch] -= 1;
    }
    i64 o = st->rp_cur_off[ch];
    i64 room = st->m - o % st->m;
    i64 rem = st->rp_cur_rem[ch];
    *off = o;
    *length = (rem < room) ? rem : room;
    *pay = st->rp_cur_pay[ch];
    return 1;
}

static void rp_consume(SoaState *st, i64 ch, i64 pos, i64 piece_len) {
    st->rp_cur_off[ch] += piece_len;
    st->rp_cur_rem[ch] -= piece_len;
    if (!st->rp_cur_rem[ch] && !st->rp_cnt[ch]) {
        st->busy_at[pos] -= 1;
        rp_busy_total -= 1;
    }
}

static void edge_mdp_tick(SoaState *st) {
    i64 m = st->m, w = st->w;
    /* 1. dispatchers issue bank reads into the ePE queues */
    if (disp_count) {
        i64 DD = st->disp_depth;
        i64 issued = 0;
        for (i64 d = 0; d < w; d++) {
            if (!st->dq_cnt[d]) continue;
            i64 sb = st->disp_stall[d];
            if (sb >= 0) {
                if (st->ep_cnt[sb] >= st->epe_depth) {
                    st->ctr[C_EDGE_BLOCKED] += 1;
                    continue;
                }
                st->disp_stall[d] = -1;
            }
            i64 h = st->dq_head[d];
            i64 off = RING(st->dq_off, d, DD, h);
            i64 length = RING(st->dq_len, d, DD, h);
            i64 bank = off % m;
            i64 blocked = 0;
            for (i64 b = bank; b < bank + length; b++) {
                if (st->ep_cnt[b] >= st->epe_depth) {
                    st->disp_stall[d] = b;
                    blocked = 1;
                    break;
                }
            }
            if (blocked) {
                st->ctr[C_EDGE_BLOCKED] += 1;
                continue;
            }
            f64 pay = RING(st->dq_pay, d, DD, h);
            st->dq_head[d] = (h + 1) % DD;
            st->dq_cnt[d] -= 1;
            issued++;
            edge_emit(st, off, length, pay, bank);
        }
        disp_count -= issued;
    }
    /* 2. network delivers pieces to dispatchers, then advances */
    if (st->has_rnet && rn_count) {
        i64 last = st->rn_stages - 1;
        if (st->rn_counts[last]) {
            i64 RD = st->rn_ring, DD = st->disp_depth;
            i64 popped = 0;
            for (i64 d = 0; d < w; d++) {
                i64 qi = last * w + d;
                if (st->rn_len[qi] && st->dq_cnt[d] < DD) {
                    i64 h = st->rn_head[qi];
                    i64 slot = (st->dq_head[d] + st->dq_cnt[d]) % DD;
                    RING(st->dq_off, d, DD, slot) = RING(st->rn_qo, qi, RD, h);
                    RING(st->dq_len, d, DD, slot) = RING(st->rn_ql, qi, RD, h);
                    RING(st->dq_pay, d, DD, slot) = RING(st->rn_qp, qi, RD, h);
                    st->rn_head[qi] = (h + 1) % RD;
                    st->rn_len[qi] -= 1;
                    st->dq_cnt[d] += 1;
                    popped++;
                }
            }
            st->rn_counts[last] -= popped;
            rn_count -= popped;
            disp_count += popped;
        }
        if (rn_count) rn_advance_checked(st);
    }
    /* 3. replay engines emit one piece per network input position:
     * first channel in rr order holding a piece gets ONE offer attempt,
     * then the position is done this cycle regardless of acceptance */
    if (rp_busy_total) {
        for (i64 pos = 0; pos < w; pos++) {
            if (!st->busy_at[pos]) continue;
            i64 num = st->chan_at_cnt[pos];
            i64 rr = st->rp_rr[pos];
            for (i64 k = 0; k < num; k++) {
                i64 idx = (rr + k) % num;
                i64 ch = st->chan_at[st->chan_at_start[pos] + idx];
                i64 off, length;
                f64 pay;
                if (!rp_emit(st, ch, &off, &length, &pay)) continue;
                i64 accepted = st->has_rnet
                    ? rn_offer(st, pos, off, length, pay)
                    : disp_accept0(st, off, length, pay);
                if (accepted) {
                    rp_consume(st, ch, pos, length);
                    st->rp_rr[pos] = (idx + 1) % num;
                }
                break;
            }
        }
    }
    /* 4. replay engines pull new {Off, Len} requests from the frontend */
    if (fe_total) {
        i64 FD = st->fe_depth, RD2 = st->replay_depth;
        i64 pulled = 0;
        for (i64 ch = 0; ch < st->n; ch++) {
            if (!st->fo_cnt[ch]) continue;
            if (st->rp_cnt[ch] < RD2) {
                if (!st->rp_cnt[ch] && !st->rp_cur_rem[ch]) {
                    st->busy_at[st->pos_of[ch]] += 1;
                    rp_busy_total += 1;
                }
                i64 h = st->fo_head[ch];
                i64 slot = (st->rp_head[ch] + st->rp_cnt[ch]) % RD2;
                RING(st->rp_po, ch, RD2, slot) = RING(st->fo_off, ch, FD, h);
                RING(st->rp_pl, ch, RD2, slot) = RING(st->fo_len, ch, FD, h);
                RING(st->rp_ps, ch, RD2, slot) = RING(st->fo_s, ch, FD, h);
                st->fo_head[ch] = (h + 1) % FD;
                st->fo_cnt[ch] -= 1;
                st->rp_cnt[ch] += 1;
                if (st->recording) {
                    st->rec_pull_ch[st->pull_len] = ch;
                    st->rec_pull_cyc[st->pull_len] = cur_tick;
                    st->pull_len += 1;
                }
                pulled++;
            }
        }
        fe_total -= pulled;
    }
}

/* ================================================================== */
/* Central edge stage                                                 */
/* ================================================================== */

static void edge_central_tick(SoaState *st) {
    i64 m = st->m;
    i64 cap = st->ce_capacity;
    /* 1. in-order greedy window issue (with the blocked-head memo) */
    i64 issue_blocked = 0;
    if (st->ce_stall_off >= 0) {
        if (ce_cnt
            && st->ce_off[ce_head] == st->ce_stall_off
            && st->ce_len[ce_head] == st->ce_stall_len
            && st->ep_cnt[st->ce_stall_bank] >= st->epe_depth) {
            issue_blocked = 1;      /* head still blocked: provable no-op */
        } else {
            st->ce_stall_off = st->ce_stall_len = st->ce_stall_bank = -1;
        }
    }
    if (ce_cnt && !issue_blocked) {
        i64 epoch = ++epoch_ctr;    /* claimed-banks set for this tick */
        i64 any_claimed = 0;
        i64 issued_requests = 0;
        while (ce_cnt && issued_requests < st->ce_issue_limit) {
            i64 off = st->ce_off[ce_head];
            i64 length = st->ce_len[ce_head];
            i64 k = (length < m) ? length : m;
            if (any_claimed) {      /* first window can never conflict */
                i64 conflict = 0;
                for (i64 j = 0; j < k; j++) {
                    if (st->s_epoch[(off + j) % m] == epoch) {
                        conflict = 1;
                        break;
                    }
                }
                if (conflict) {
                    st->ctr[C_EDGE_BLOCKED] += 1;
                    break;          /* strict in-order: head blocks rest */
                }
            }
            i64 full = 0, jf = 0;
            for (i64 j = 0; j < k; j++) {
                if (st->ep_cnt[(off + j) % m] >= st->epe_depth) {
                    full = 1;
                    jf = j;
                    break;
                }
            }
            if (full) {
                if (!any_claimed) {     /* nothing issued: memoize */
                    st->ce_stall_off = off;
                    st->ce_stall_len = length;
                    st->ce_stall_bank = (off + jf) % m;
                }
                break;
            }
            f64 pay = st->ce_pay[ce_head];
            switch (st->proc) {
            case PROC_IDENTITY:
                for (i64 j = 0; j < k; j++) {
                    i64 e = off + j, b = e % m;
                    epe_push(st, b, st->dst[e], pay, e);
                    st->s_epoch[b] = epoch;
                }
                break;
            case PROC_ADD_W:
                for (i64 j = 0; j < k; j++) {
                    i64 e = off + j, b = e % m;
                    epe_push(st, b, st->dst[e], pay + (f64)st->weights[e], e);
                    st->s_epoch[b] = epoch;
                }
                break;
            case PROC_MIN_W:
                for (i64 j = 0; j < k; j++) {
                    i64 e = off + j, b = e % m;
                    f64 wt = (f64)st->weights[e];
                    epe_push(st, b, st->dst[e], (pay < wt) ? pay : wt, e);
                    st->s_epoch[b] = epoch;
                }
                break;
            default: {
                f64 pv = pay + st->proc_const;
                for (i64 j = 0; j < k; j++) {
                    i64 e = off + j, b = e % m;
                    epe_push(st, b, st->dst[e], pv, e);
                    st->s_epoch[b] = epoch;
                }
                break;
            }
            }
            any_claimed = 1;
            epe_count += k;
            if (k == length) {
                ce_head = (ce_head + 1) % cap;
                ce_cnt -= 1;
                issued_requests++;
            } else {
                st->ce_off[ce_head] = off + k;
                st->ce_len[ce_head] = length - k;
                break;      /* the window already spans all banks */
            }
        }
    }
    /* 2. merge front-end requests in channel order */
    if (fe_total) {
        i64 FD = st->fe_depth;
        i64 pulled = 0;
        for (i64 ch = 0; ch < st->n; ch++) {
            if (ce_cnt >= cap) break;
            if (st->fo_cnt[ch]) {
                i64 h = st->fo_head[ch];
                i64 slot = (ce_head + ce_cnt) % cap;
                st->ce_off[slot] = RING(st->fo_off, ch, FD, h);
                st->ce_len[slot] = RING(st->fo_len, ch, FD, h);
                st->ce_pay[slot] = RING(st->fo_s, ch, FD, h);
                st->fo_head[ch] = (h + 1) % FD;
                st->fo_cnt[ch] -= 1;
                ce_cnt += 1;
                if (st->recording) {
                    st->rec_pull_ch[st->pull_len] = ch;
                    st->rec_pull_cyc[st->pull_len] = cur_tick;
                    st->pull_len += 1;
                }
                pulled++;
            }
        }
        fe_total -= pulled;
    }
}

/* ================================================================== */
/* Propagation MDP net (_FastMdpNet over (v % m, v, imm, cnt))        */
/* ================================================================== */

static void pn_advance_checked(SoaState *st) {
    i64 m = st->m, D = st->fifo_depth, bl = st->block_len;
    i64 combined_total = 0, stalled_total = 0;
    for (i64 s = st->pn_stages - 1; s >= 1; s--) {
        i64 total = st->pn_counts[s - 1];
        if (!total) continue;
        const i64 *tbl = st->pn_table + s * m * m;
        i64 moved = 0, seen = 0, combined = 0;
        for (i64 p = 0; p < m; p++) {
            i64 qi = (s - 1) * m + p;
            if (!st->pn_len[qi]) continue;
            seen++;
            i64 h = st->pn_head[qi];
            i64 v = RING(st->pn_qv, qi, D, h);
            i64 ti = s * m + tbl[p * m + (v % m)];
            i64 tlen = st->pn_len[ti];
            if (tlen) {
                i64 tslot = (st->pn_head[ti] + tlen - 1) % D;
                if (st->combining && RING(st->pn_qv, ti, D, tslot) == v) {
                    RING(st->pn_qi, ti, D, tslot) =
                        red(st->reduce_op, RING(st->pn_qi, ti, D, tslot),
                            RING(st->pn_qi, qi, D, h));
                    RING(st->pn_qc, ti, D, tslot) += RING(st->pn_qc, qi, D, h);
                    if (st->recording) {    /* tail keeps its slot */
                        st->rec_merge_a[st->merge_len] =
                            RING(st->pn_qsl, ti, D, tslot);
                        st->rec_merge_b[st->merge_len] =
                            RING(st->pn_qsl, qi, D, h);
                        st->merge_len += 1;
                    }
                    st->pn_head[qi] = (h + 1) % D;
                    st->pn_len[qi] -= 1;
                    combined++;
                    if (seen == total) break;
                    continue;
                }
                if (tlen > bl) {
                    stalled_total++;
                    if (seen == total) break;
                    continue;
                }
            }
            i64 slot = (st->pn_head[ti] + tlen) % D;
            RING(st->pn_qv, ti, D, slot) = v;
            RING(st->pn_qi, ti, D, slot) = RING(st->pn_qi, qi, D, h);
            RING(st->pn_qc, ti, D, slot) = RING(st->pn_qc, qi, D, h);
            if (st->recording)
                RING(st->pn_qsl, ti, D, slot) = RING(st->pn_qsl, qi, D, h);
            st->pn_len[ti] += 1;
            st->pn_head[qi] = (h + 1) % D;
            st->pn_len[qi] -= 1;
            moved++;
            if (seen == total) break;
        }
        st->pn_counts[s - 1] -= (combined + moved);
        st->pn_counts[s] += moved;
        combined_total += combined;
    }
    if (combined_total) pn_count -= combined_total;
    if (stalled_total) st->ctr[C_PROP_STALL] += stalled_total;
}

static void pn_deliver_reduce(SoaState *st, i64 *got_out, i64 *red_out) {
    i64 m = st->m, D = st->fifo_depth;
    i64 last = st->pn_stages - 1;
    i64 total = st->pn_counts[last];
    if (!total) { *got_out = 0; *red_out = 0; return; }
    i64 got = 0, reduces = 0;
    for (i64 p = 0; p < m; p++) {
        i64 qi = last * m + p;
        if (st->pn_len[qi]) {
            i64 h = st->pn_head[qi];
            i64 dv = RING(st->pn_qv, qi, D, h);
            f64 imm = RING(st->pn_qi, qi, D, h);
            reduces += RING(st->pn_qc, qi, D, h);
            if (st->recording)
                st->rec_deliver[st->deliver_len++] =
                    RING(st->pn_qsl, qi, D, h);
            st->touch_dv[st->touch_len++] = dv;
            st->pn_head[qi] = (h + 1) % D;
            st->pn_len[qi] -= 1;
            st->tprop[dv] = red(st->reduce_op, st->tprop[dv], imm);
            got++;
            if (got == total) break;
        }
    }
    st->pn_counts[last] -= got;
    pn_count -= got;
    *got_out = got;
    *red_out = reduces;
}

/* inlined stage-0 _FastMdpNet.offer from the ePE queues, one record
 * per channel per cycle (batched scatter step 2) */
static void pn_offer_epes(SoaState *st) {
    i64 m = st->m, D = st->fifo_depth, ED = st->epe_depth;
    i64 bl = st->block_len;
    const i64 *tbl0 = st->pn_table;
    i64 total = epe_count, consumed = 0, added = 0, seen = 0;
    for (i64 k = 0; k < m; k++) {
        if (!st->ep_cnt[k]) continue;
        seen++;
        i64 h = st->ep_head[k];
        i64 v = RING(st->ep_v, k, ED, h);
        f64 imm = RING(st->ep_imm, k, ED, h);
        i64 t = tbl0[k * m + (v % m)];  /* stage-0 queue index == t */
        i64 tlen = st->pn_len[t];
        if (tlen) {
            i64 tslot = (st->pn_head[t] + tlen - 1) % D;
            if (st->combining && RING(st->pn_qv, t, D, tslot) == v) {
                RING(st->pn_qi, t, D, tslot) =
                    red(st->reduce_op, RING(st->pn_qi, t, D, tslot), imm);
                RING(st->pn_qc, t, D, tslot) += 1;
                if (st->recording) {    /* tail keeps its slot */
                    st->rec_merge_a[st->merge_len] =
                        RING(st->pn_qsl, t, D, tslot);
                    st->rec_merge_b[st->merge_len] =
                        RING(st->ep_slot, k, ED, h);
                    st->merge_len += 1;
                }
                st->ep_head[k] = (h + 1) % ED;
                st->ep_cnt[k] -= 1;
                consumed++;
            } else if (tlen > bl) {
                st->ctr[C_PROP_REJ] += 1;
            } else {
                i64 slot = (st->pn_head[t] + tlen) % D;
                RING(st->pn_qv, t, D, slot) = v;
                RING(st->pn_qi, t, D, slot) = imm;
                RING(st->pn_qc, t, D, slot) = 1;
                if (st->recording)
                    RING(st->pn_qsl, t, D, slot) = RING(st->ep_slot, k, ED, h);
                st->pn_len[t] += 1;
                added++;
                st->ep_head[k] = (h + 1) % ED;
                st->ep_cnt[k] -= 1;
                consumed++;
            }
        } else {
            i64 slot = st->pn_head[t];
            RING(st->pn_qv, t, D, slot) = v;
            RING(st->pn_qi, t, D, slot) = imm;
            RING(st->pn_qc, t, D, slot) = 1;
            if (st->recording)
                RING(st->pn_qsl, t, D, slot) = RING(st->ep_slot, k, ED, h);
            st->pn_len[t] += 1;
            added++;
            st->ep_head[k] = (h + 1) % ED;
            st->ep_cnt[k] -= 1;
            consumed++;
        }
        if (seen == total) break;
    }
    epe_count -= consumed;
    st->pn_counts[0] += added;
    pn_count += added;
}

/* ================================================================== */
/* Propagation crossbar (_FastXbar, combining)                        */
/* ================================================================== */

static void px_deliver_reduce(SoaState *st, i64 *got_out, i64 *red_out) {
    i64 m = st->m, D = st->fifo_depth;
    i64 total = px_count;
    if (!total) { *got_out = 0; *red_out = 0; return; }
    /* tick_unit: incremental round-robin winner per destination */
    i64 epoch = ++epoch_ctr;
    i64 seen = 0, conflicts = 0;
    for (i64 i = 0; i < m; i++) {
        if (!st->px_len[i]) continue;
        seen++;
        i64 v = RING(st->px_qv, i, D, st->px_head[i]);
        i64 dest = v % m;
        if (st->s_epoch2[dest] != epoch) {
            st->s_epoch2[dest] = epoch;
            st->s_val2[dest] = i;
        } else {
            conflicts++;
            i64 ptr = st->px_rr[dest];
            i64 w = st->s_val2[dest];
            if (((i - ptr) % m + m) % m < ((w - ptr) % m + m) % m)
                st->s_val2[dest] = i;
        }
        if (seen == total) break;
    }
    st->ctr[C_PROP_STALL] += conflicts;
    /* distinct dests pop distinct inputs and reduce distinct vertices
     * (dv % m == dest), so ascending-dest order matches dict order */
    i64 got = 0, reduces = 0;
    for (i64 dest = 0; dest < m; dest++) {
        if (st->s_epoch2[dest] != epoch) continue;
        i64 i = st->s_val2[dest];
        i64 h = st->px_head[i];
        i64 dv = RING(st->px_qv, i, D, h);
        f64 imm = RING(st->px_qi, i, D, h);
        reduces += RING(st->px_qc, i, D, h);
        if (st->recording)
            st->rec_deliver[st->deliver_len++] =
                RING(st->px_qsl, i, D, h);
        st->touch_dv[st->touch_len++] = dv;
        st->px_head[i] = (h + 1) % D;
        st->px_len[i] -= 1;
        px_count--;
        st->tprop[dv] = red(st->reduce_op, st->tprop[dv], imm);
        got++;
        st->px_rr[dest] = (i + 1) % m;
    }
    *got_out = got;
    *red_out = reduces;
}

static void px_offer_epes(SoaState *st) {
    i64 m = st->m, D = st->fifo_depth, ED = st->epe_depth;
    i64 total = epe_count, consumed = 0, seen = 0;
    for (i64 k = 0; k < m; k++) {
        if (!st->ep_cnt[k]) continue;
        seen++;
        i64 h = st->ep_head[k];
        i64 v = RING(st->ep_v, k, ED, h);
        f64 imm = RING(st->ep_imm, k, ED, h);
        i64 flen = st->px_len[k];
        i64 ok = 1;
        i64 tslot = flen ? (st->px_head[k] + flen - 1) % D : 0;
        if (flen && st->combining && RING(st->px_qv, k, D, tslot) == v) {
            RING(st->px_qi, k, D, tslot) =
                red(st->reduce_op, RING(st->px_qi, k, D, tslot), imm);
            RING(st->px_qc, k, D, tslot) += 1;
            if (st->recording) {    /* tail keeps its slot */
                st->rec_merge_a[st->merge_len] =
                    RING(st->px_qsl, k, D, tslot);
                st->rec_merge_b[st->merge_len] =
                    RING(st->ep_slot, k, ED, h);
                st->merge_len += 1;
            }
        } else if (flen >= st->fifo_depth) {
            ok = 0;     /* xbar offer: reject, no counter */
        } else {
            i64 slot = (st->px_head[k] + flen) % D;
            RING(st->px_qv, k, D, slot) = v;
            RING(st->px_qi, k, D, slot) = imm;
            RING(st->px_qc, k, D, slot) = 1;
            if (st->recording)
                RING(st->px_qsl, k, D, slot) = RING(st->ep_slot, k, ED, h);
            st->px_len[k] += 1;
            px_count++;
        }
        if (ok) {
            st->ep_head[k] = (h + 1) % ED;
            st->ep_cnt[k] -= 1;
            consumed++;
        }
        if (seen == total) break;
    }
    epe_count -= consumed;
}

/* ================================================================== */
/* The march                                                          */
/* ================================================================== */

i64 soa_abi_version(void) { return SOA_ABI_VERSION; }

i64 soa_march(SoaState *st) {
    if (st->magic != SOA_MAGIC || st->magic2 != SOA_MAGIC) return -2;
    i64 n = st->n, m = st->m, w = st->w;
    /* zero the transient queue metadata (ring payloads need no clear;
     * all queues are provably empty at phase boundaries) */
    fe_total = 0; iq_total = 0; fn_count = 0; fx_count = 0;
    rn_count = 0; disp_count = 0; epe_count = 0; rp_busy_total = 0;
    ce_cnt = 0; ce_head = 0; pn_count = 0; px_count = 0;
    epoch_ctr = 0; cur_tick = 0;
    st->news_len = 0; st->merge_len = 0; st->deliver_len = 0;
    st->pull_len = 0; st->ret_len = 0; st->touch_len = 0;
    memset(st->iq_head, 0, n * sizeof(i64));
    memset(st->iq_len, 0, n * sizeof(i64));
    memset(st->fo_head, 0, n * sizeof(i64));
    memset(st->fo_cnt, 0, n * sizeof(i64));
    memset(st->ep_head, 0, m * sizeof(i64));
    memset(st->ep_cnt, 0, m * sizeof(i64));
    memset(st->ctr, 0, C_NUM * sizeof(i64));
    i64 mx = n > m ? n : m;
    if (w > mx) mx = w;
    memset(st->s_epoch, 0, mx * sizeof(i64));
    memset(st->s_epoch2, 0, mx * sizeof(i64));
    if (st->front_is_mdp) {
        memset(st->fn_head, 0, st->fn_stages * n * sizeof(i64));
        memset(st->fn_len, 0, st->fn_stages * n * sizeof(i64));
        memset(st->fn_counts, 0, st->fn_stages * sizeof(i64));
    } else {
        memset(st->fx_head, 0, n * sizeof(i64));
        memset(st->fx_len, 0, n * sizeof(i64));
    }
    if (st->edge_is_mdp) {
        memset(st->rp_head, 0, n * sizeof(i64));
        memset(st->rp_cnt, 0, n * sizeof(i64));
        memset(st->rp_cur_rem, 0, n * sizeof(i64));
        memset(st->busy_at, 0, w * sizeof(i64));
        memset(st->dq_head, 0, w * sizeof(i64));
        memset(st->dq_cnt, 0, w * sizeof(i64));
        if (st->has_rnet) {
            memset(st->rn_head, 0, st->rn_stages * w * sizeof(i64));
            memset(st->rn_len, 0, st->rn_stages * w * sizeof(i64));
            memset(st->rn_counts, 0, st->rn_stages * sizeof(i64));
        }
    }
    if (st->prop_is_mdp) {
        memset(st->pn_head, 0, st->pn_stages * m * sizeof(i64));
        memset(st->pn_len, 0, st->pn_stages * m * sizeof(i64));
        memset(st->pn_counts, 0, st->pn_stages * sizeof(i64));
    } else {
        memset(st->px_head, 0, m * sizeof(i64));
        memset(st->px_len, 0, m * sizeof(i64));
    }

    i64 expected = st->expected;
    i64 fe_pending = st->fe_pending;
    i64 limit = st->limit;
    i64 cycles = 0, starved = 0, busy = 0, reduces = 0;

    while (fe_pending > 0 || reduces < expected) {
        cycles++;
        cur_tick = cycles - 1;
        if (cycles > limit) {
            st->cycles = cycles; st->starved = starved;
            st->busy = busy; st->reduces = reduces;
            st->fe_pending = fe_pending;
            return 1;       /* non-convergence: Python raises */
        }
        /* 1. propagation delivers; vPEs reduce into tProperty banks */
        i64 got, red_cnt;
        if (st->prop_is_mdp) {
            pn_deliver_reduce(st, &got, &red_cnt);
            if (pn_count) pn_advance_checked(st);
        } else {
            px_deliver_reduce(st, &got, &red_cnt);
        }
        starved += m - got;
        busy += got;
        reduces += red_cnt;
        /* 2. ePEs: Process_Edge, one record per channel per cycle */
        if (epe_count) {
            if (st->prop_is_mdp) pn_offer_epes(st);
            else px_offer_epes(st);
        }
        /* 3. Edge Array access (site 2) */
        if (st->edge_is_mdp) edge_mdp_tick(st);
        else edge_central_tick(st);
        /* 4. Offset Array access + ActiveVertex fetch (site 1) */
        if (st->front_is_mdp) fe_pending -= front_mdp_tick(st);
        else fe_pending -= front_xbar_tick(st);
    }
    st->cycles = cycles;
    st->starved = starved;
    st->busy = busy;
    st->reduces = reduces;
    st->fe_pending = 0;
    return 0;
}
