"""The golden scatter engine: the original component-model cycle loop."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.accel.backend import make_propagation, make_vertex_combiner
from repro.accel.edge_access import make_edge_stage
from repro.accel.frontend import make_frontend
from repro.errors import SimulationError
from repro.hw.fifo import Fifo


class ReferenceEngine:
    """The original component-model cycle loop (golden engine).

    Owns nothing itself: it instantiates the conflict-site components on
    the simulator (``sim.frontend`` / ``sim.edge_stage`` /
    ``sim.propagation`` / the shared queues), where the pipeline tracer
    expects to find them.
    """

    name = "reference"

    def __init__(self, sim) -> None:
        self.sim = sim
        config = sim.config
        n, m = config.front_channels, config.back_channels
        sim.frontend = make_frontend(config, sim.graph.offsets)
        sim.edge_stage = make_edge_stage(config, sim._dst, sim._weights)
        combine_fn = (make_vertex_combiner(sim.algorithm.reduce)
                      if config.vertex_combining else None)
        sim.propagation = make_propagation(config, combine_fn)
        sim.active_parts = [deque() for _ in range(n)]
        sim.fe_out = [Fifo(config.fe_out_depth) for _ in range(n)]
        sim.epe_in = [deque() for _ in range(m)]

    # ------------------------------------------------------------------
    def scatter(self, active, sprop_all, tprop: list, stats) -> None:
        """Simulate one scatter phase cycle by cycle."""
        sim = self.sim
        cfg = sim.config
        n, m = cfg.front_channels, cfg.back_channels
        parts, fe_out, epe_in = sim.active_parts, sim.fe_out, sim.epe_in
        frontend, edge_stage, propagation = (sim.frontend, sim.edge_stage,
                                             sim.propagation)
        reduce_fn = sim.algorithm.reduce
        process_fn = sim.algorithm.process_edge

        sprops = sprop_all[active].tolist()
        actives = active.tolist()
        for i, (u, sp) in enumerate(zip(actives, sprops)):
            parts[i % n].append((u, sp))

        expected = int(sim.out_degree[active].sum())
        fe_pending = len(actives)
        reduces = 0
        cycles = 0
        starved = 0
        limit = 4 * expected + 8 * fe_pending + 10_000

        while fe_pending > 0 or reduces < expected:
            cycles += 1
            if cycles > limit:
                raise SimulationError(
                    f"scatter did not converge within {limit} cycles "
                    f"({reduces}/{expected} reduces, {fe_pending} vertices "
                    f"pending) — queue sizing bug?")
            # 1. propagation delivers; vPEs reduce into tProperty banks.
            #    A record is (v, imm, count): `count` edges may have been
            #    coalesced into it on the way here.
            delivered = propagation.tick_deliver()
            for _, (dv, imm, cnt) in delivered:
                tprop[dv] = reduce_fn(tprop[dv], imm)
                reduces += cnt
            got = len(delivered)
            starved += m - got
            stats.vpe_busy_cycles += got
            # 2. ePEs: Process_Edge, one record per channel per cycle
            for k in range(m):
                q = epe_in[k]
                if q:
                    dstv, w, sp = q[0]
                    if propagation.offer(k, dstv % m,
                                         (dstv, process_fn(sp, w), 1)):
                        q.popleft()
            # 3. Edge Array access (site ②)
            edge_stage.tick(fe_out, epe_in)
            # 4. Offset Array access + ActiveVertex fetch (site ①)
            fe_pending -= frontend.tick(parts, fe_out)
            if sim.tracer is not None:
                sim.tracer.sample(sim, cycles, got)

        stats.scatter_cycles += cycles
        stats.vpe_starvation_cycles += starved
        stats.edges_processed += reduces

    # ------------------------------------------------------------------
    def scatter_phase(self, active, sprop_all, identity: float,
                      stats) -> np.ndarray:
        """One whole scatter phase with a fresh identity-seeded tProperty;
        returns the reduced array (the engine-level seam the ``soa``
        engine overrides to keep the buffer resident across phases)."""
        tprop = [identity] * self.sim.graph.num_vertices
        self.scatter(active, sprop_all, tprop, stats)
        return np.asarray(tprop, dtype=np.float64)

    # ------------------------------------------------------------------
    def harvest(self, stats) -> None:
        sim = self.sim
        stats.offset_deferrals = sim.frontend.deferrals
        stats.edge_conflicts = sim.edge_stage.conflicts
        stats.propagation_conflicts = sim.propagation.conflicts
