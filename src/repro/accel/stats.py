"""Simulation statistics and derived metrics (GTEPS, speedup, starvation)."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import StatsSchemaError


@dataclass
class SimStats:
    """Counters accumulated over one full algorithm run."""

    config_name: str = ""
    algorithm: str = ""
    graph_name: str = ""
    frequency_ghz: float = 1.0

    iterations: int = 0
    scatter_cycles: int = 0
    apply_cycles: int = 0
    edges_processed: int = 0
    active_vertices_total: int = 0

    # conflict / utilization counters
    vpe_starvation_cycles: int = 0      # paper Fig. 10(b)
    vpe_busy_cycles: int = 0
    offset_deferrals: int = 0           # site-1 conflicts
    edge_conflicts: int = 0             # site-2 conflicts / window stalls
    propagation_conflicts: int = 0      # site-3 arbitration losses or stalls
    network_rejected_offers: int = 0

    # slicing (large-graph mode)
    slices: int = 0
    slice_load_cycles: int = 0          # off-chip transfer not hidden by overlap

    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return self.scatter_cycles + self.apply_cycles + self.slice_load_cycles

    @property
    def seconds(self) -> float:
        """Wall time at the design frequency."""
        return self.total_cycles / (self.frequency_ghz * 1e9)

    @property
    def gteps(self) -> float:
        """Giga-traversed-edges per second — the paper's throughput metric."""
        if self.total_cycles == 0:
            return 0.0
        return self.edges_processed * self.frequency_ghz / self.total_cycles

    @property
    def edges_per_cycle(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.edges_processed / self.total_cycles

    @property
    def vpe_utilization(self) -> float:
        busy_plus_starved = self.vpe_busy_cycles + self.vpe_starvation_cycles
        if busy_plus_starved == 0:
            return 0.0
        return self.vpe_busy_cycles / busy_plus_starved

    def speedup_over(self, baseline: "SimStats") -> float:
        """Wall-time speedup of this run relative to ``baseline``."""
        if self.seconds == 0:
            return float("inf")
        return baseline.seconds / self.seconds

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All counter fields as a JSON-serializable dict (cache format)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Inverse of :meth:`to_dict`; unknown keys are rejected loudly so
        a stale cache entry from an older schema cannot half-load."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise StatsSchemaError(
                f"unknown SimStats fields: {sorted(unknown)}")
        return cls(**data)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        return {
            "config": self.config_name,
            "algorithm": self.algorithm,
            "graph": self.graph_name,
            "iterations": self.iterations,
            "cycles": self.total_cycles,
            "edges": self.edges_processed,
            "frequency_ghz": round(self.frequency_ghz, 3),
            "gteps": round(self.gteps, 3),
            "edges_per_cycle": round(self.edges_per_cycle, 3),
            "vpe_starvation_cycles": self.vpe_starvation_cycles,
            "offset_deferrals": self.offset_deferrals,
            "edge_conflicts": self.edge_conflicts,
            "propagation_conflicts": self.propagation_conflicts,
        }
