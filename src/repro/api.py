"""The public entry point: one ``Session`` facade over simulate/sweep/report.

Everything the CLI can do is reachable through three calls on a
:class:`Session`:

* :meth:`Session.simulate` — one job → one
  :class:`~repro.accel.stats.SimStats`;
* :meth:`Session.sweep` — a job list → a
  :class:`~repro.sweep.executor.SweepOutcome` (stats in job order plus
  cache accounting);
* :meth:`Session.report` — regenerate report sections into a results
  directory → a :class:`~repro.bench.regen.RegenReport`.

Two implementations share that interface:

* :class:`LocalSession` executes in-process through
  :func:`~repro.sweep.executor.run_sweep` /
  :func:`~repro.bench.regen.regenerate` — what the CLI's ``sweep`` and
  ``report`` subcommands use;
* :class:`RemoteSession` speaks the serve protocol to a ``repro serve``
  daemon, whose resident workers keep graphs and the code-version
  digest warm across calls.

The two are differentially tested: the same jobs through either session
produce byte-identical ``SimStats``.  :func:`session` picks the right
implementation from its arguments (a ``socket_path`` means remote).

Progress callbacks are normalized across implementations:
``on_progress(done, total, description)`` with a plain-string job
description, regardless of which side executes.
"""

from __future__ import annotations

import abc
import os

from repro.accel.stats import SimStats
from repro.errors import ServeError
from repro.sweep.executor import SweepOutcome
from repro.sweep.jobs import SweepJob

__all__ = [
    "LocalSession",
    "RemoteSession",
    "Session",
    "session",
]


class Session(abc.ABC):
    """Abstract simulate/sweep/report surface; use as a context manager."""

    closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise ServeError(f"{type(self).__name__} is closed")

    # ------------------------------------------------------------------
    def simulate(self, job: SweepJob) -> SimStats:
        """Run (or fetch from cache) one job; returns its stats."""
        return self.sweep([job]).stats[0]

    @abc.abstractmethod
    def sweep(self, jobs: list[SweepJob], on_progress=None) -> SweepOutcome:
        """Execute a job list; stats in job order plus accounting.

        ``on_progress``, if given, is called as
        ``on_progress(done, total, description)`` per finished job.
        """

    @abc.abstractmethod
    def report(self, results_dir: str | os.PathLike, sections=None,
               out: str | os.PathLike | None = None, charts: bool = False,
               on_progress=None):
        """Regenerate report sections; returns a RegenReport.

        ``on_progress``, if given, is called with each finished
        section's accounting record (local execution only — a remote
        daemon does not stream report progress).
        """

    def close(self) -> None:
        """Release session resources; the session is unusable afterwards."""
        self.closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalSession(Session):
    """In-process execution: the facade over run_sweep/regenerate.

    ``cache_dir`` enables the content-addressed result cache,
    ``num_workers`` shards sweeps across processes (1 = serial,
    None/0 = one per CPU), ``engine`` pins the scatter engine for jobs
    that don't choose one themselves.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 num_workers: int | None = 1,
                 engine: str | None = None) -> None:
        from repro.sweep.cache import ResultCache
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.num_workers = num_workers
        self.engine = engine

    def _apply_engine(self, jobs: list[SweepJob]) -> list[SweepJob]:
        if self.engine is None:
            return jobs
        for job in jobs:
            if job.engine is None:
                job.engine = self.engine
        return jobs

    def sweep(self, jobs: list[SweepJob], on_progress=None) -> SweepOutcome:
        from repro.sweep.executor import run_sweep
        self._check_open()
        progress = None
        if on_progress is not None:
            def progress(done, total, job):
                on_progress(done, total, job.describe())
        return run_sweep(self._apply_engine(list(jobs)),
                         num_workers=self.num_workers,
                         cache=self.cache, progress=progress)

    def report(self, results_dir: str | os.PathLike, sections=None,
               out: str | os.PathLike | None = None, charts: bool = False,
               on_progress=None):
        from repro.bench.regen import regenerate
        self._check_open()
        return regenerate(str(results_dir), sections=sections,
                          num_workers=self.num_workers, cache=self.cache,
                          report_path=None if out is None else str(out),
                          progress=on_progress, charts=charts)


class RemoteSession(Session):
    """Serve-protocol execution against a running ``repro serve`` daemon.

    The daemon owns the cache and the workers; this side only ships
    jobs over the socket and rehydrates the returned stats dicts into
    :class:`SimStats` — which is why Local/Remote results can be (and
    are, in the test suite) compared for byte identity.
    """

    def __init__(self, socket_path: str | os.PathLike,
                 timeout: float | None = 300.0) -> None:
        from repro.serve.client import ServeClient
        self.client = ServeClient(socket_path, timeout=timeout)

    def ping(self):
        """Daemon liveness + identity (protocol, generation, version)."""
        self._check_open()
        return self.client.ping()

    def sweep(self, jobs: list[SweepJob], on_progress=None) -> SweepOutcome:
        self._check_open()
        jobs = list(jobs)
        callback = None
        if on_progress is not None:
            def callback(event):
                on_progress(event.done, event.total, event.job)
        done = self.client.run_sweep(jobs, on_progress=callback)
        return SweepOutcome(
            jobs=jobs,
            stats=[SimStats.from_dict(d) for d in done.stats],
            cache_hits=done.cache_hits,
            cache_misses=done.cache_misses,
            executed=done.executed,
            workers_used=done.workers_used,
            wall_seconds=done.wall_seconds,
            job_seconds=list(done.job_seconds),
            extra={"deduped": done.deduped, "ticket": done.ticket},
        )

    def report(self, results_dir: str | os.PathLike, sections=None,
               out: str | os.PathLike | None = None, charts: bool = False,
               on_progress=None):
        from repro.bench.regen import RegenReport
        from repro.graph.datasets import SCALE_ENV_VAR
        self._check_open()
        # the job matrices build daemon-side; ship this side's scale so
        # a remote report matches what a local run here would produce
        reply = self.client.regen_report(results_dir, sections=sections,
                                         out=out, charts=charts,
                                         scale=os.environ.get(SCALE_ENV_VAR))
        return RegenReport(
            results_dir=reply.results_dir,
            report_path=reply.report_path,
            provenance_path=reply.provenance_path,
            cache_dir=reply.cache_dir,
            code_version=reply.code_version,
            sections=list(reply.sections),
            wall_seconds=reply.wall_seconds,
        )


def session(socket_path: str | os.PathLike | None = None, *,
            cache_dir: str | os.PathLike | None = None,
            num_workers: int | None = 1,
            engine: str | None = None,
            timeout: float | None = 300.0) -> Session:
    """Open the right session for the arguments.

    A ``socket_path`` selects :class:`RemoteSession` (the daemon owns
    cache and workers, so ``cache_dir``/``num_workers``/``engine`` must
    be left unset); otherwise a :class:`LocalSession` with the given
    execution options.
    """
    if socket_path is not None:
        if cache_dir is not None or engine is not None or num_workers != 1:
            raise ServeError(
                "remote sessions take execution options from the daemon; "
                "cache_dir/num_workers/engine apply to local sessions only")
        return RemoteSession(socket_path, timeout=timeout)
    return LocalSession(cache_dir=cache_dir, num_workers=num_workers,
                        engine=engine)
