"""Lightweight C declaration parser for the seam verifier.

Reads the *declaration surface* of a C translation unit — ``#define``
constants, ``struct`` layouts and ``enum`` members — which is all the
C↔Python seam rules need to cross-check ``_soa_march.c`` against its
ctypes/numpy mirrors in ``soa.py``.  It is **not** a C front end: no
expressions, no statements, no semantic analysis.  Plain stdlib, no
external dependencies, tolerant of the things real headers contain
(comments inside struct bodies, ``#if``/``#ifdef`` blocks, multi-word
base types, multi-declarator lines, array suffixes), and every parsed
object carries the 1-based source line it was declared on so lint
findings can point at both sides of the seam.

Preprocessor model: comments are blanked (newlines preserved), then
conditional blocks are resolved by taking the first *true* branch —
``#if 0`` is recognised as false (its ``#else`` activates), everything
else is assumed true.  That is exactly right for the kernel sources
this repo compiles with a fixed configuration, and degrades to "parse
the default configuration" elsewhere.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["CDefine", "CField", "CStruct", "CEnum", "CUnit", "parse_c"]

_INT_SUFFIX_RE = re.compile(r"[uUlL]+$")


@dataclass(frozen=True)
class CDefine:
    """An object-like ``#define NAME VALUE``."""

    name: str
    value: str                  # raw replacement text, stripped
    line: int

    def int_value(self) -> int | None:
        """The define's value as an int when it is a single literal
        (suffixes like ``LL`` stripped); ``None`` for expressions."""
        text = _INT_SUFFIX_RE.sub("", self.value.strip())
        try:
            return int(text, 0)
        except ValueError:
            return None


@dataclass(frozen=True)
class CField:
    """One declarator of a struct member declaration."""

    name: str
    base: str                   # declared type words, e.g. "const i64"
    pointer: bool
    line: int

    @property
    def scalar(self) -> str:
        """The base type with qualifiers dropped (``i64``, ``f64``...)."""
        words = [w for w in self.base.split()
                 if w not in ("const", "volatile", "struct", "enum")]
        return " ".join(words)

    @property
    def kind(self) -> str:
        """``"<scalar>"`` for values, ``"<scalar>*"`` for pointers."""
        return self.scalar + ("*" if self.pointer else "")


@dataclass(frozen=True)
class CStruct:
    name: str
    fields: tuple[CField, ...]
    line: int

    def field(self, name: str) -> CField | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None


@dataclass(frozen=True)
class CEnum:
    """``enum`` members with resolved values (auto-increment applied;
    a non-literal initializer yields ``None`` for it and its
    successors, which the seam rules treat as "cannot verify")."""

    name: str
    members: tuple[tuple[str, int | None], ...]
    line: int
    member_lines: tuple[int, ...] = ()


@dataclass
class CUnit:
    """Everything :func:`parse_c` extracted from one source text."""

    defines: dict[str, CDefine] = field(default_factory=dict)
    structs: dict[str, CStruct] = field(default_factory=dict)
    enums: dict[str, CEnum] = field(default_factory=dict)
    typedefs: dict[str, str] = field(default_factory=dict)

    def canonical_type(self, name: str) -> str:
        """Follow scalar typedef chains (``i64`` -> ``long long``)."""
        seen = set()
        while name in self.typedefs and name not in seen:
            seen.add(name)
            name = self.typedefs[name]
        return name


# ----------------------------------------------------------------------
# pass 1: blank comments, preserving line structure
# ----------------------------------------------------------------------

def _blank_comments(source: str) -> str:
    out = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        two = source[i:i + 2]
        if two == "/*":
            end = source.find("*/", i + 2)
            end = n if end < 0 else end + 2
            out.append("".join(c if c == "\n" else " "
                               for c in source[i:end]))
            i = end
        elif two == "//":
            end = source.find("\n", i)
            end = n if end < 0 else end
            out.append(" " * (end - i))
            i = end
        elif ch in "\"'":
            # keep string/char literals opaque so comment markers (or
            # braces) inside them cannot confuse later passes
            j = i + 1
            while j < n and source[j] != ch:
                j += 2 if source[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(ch + " " * (j - i - 2) + (ch if j - i >= 2 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


# ----------------------------------------------------------------------
# pass 2: resolve conditionals, collect #defines, keep active lines
# ----------------------------------------------------------------------

_DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w+)\s*(.*)$")
_DEFINE_RE = re.compile(r"^(\w+)(\(?)\s*(.*)$", re.S)


def _condition_true(expr: str) -> bool:
    """First-branch heuristic: only a literal ``0`` is false."""
    return expr.strip().split()[0:1] != ["0"]


def _preprocess(source: str) -> tuple[list[str], dict[str, CDefine]]:
    """Return (active lines with blanks holding positions, defines)."""
    lines = source.split("\n")
    kept = []
    defines: dict[str, CDefine] = {}
    # each level: [parent_active, some_branch_taken]
    stack: list[list[bool]] = []
    active = True
    i = 0
    while i < len(lines):
        line = lines[i]
        start = i
        while line.rstrip().endswith("\\") and i + 1 < len(lines):
            i += 1
            line = line.rstrip()[:-1] + " " + lines[i]
        m = _DIRECTIVE_RE.match(line)
        if m:
            directive, rest = m.group(1), m.group(2)
            if directive in ("if", "ifdef", "ifndef"):
                stack.append([active, False])
                if active:
                    taken = (directive != "if") or _condition_true(rest)
                    active = taken
                    stack[-1][1] = taken
            elif directive in ("else", "elif") and stack:
                parent_active, taken = stack[-1]
                if not parent_active or taken:
                    active = False
                elif directive == "else" or _condition_true(rest):
                    active = True
                    stack[-1][1] = True
            elif directive == "endif" and stack:
                active = stack.pop()[0]
            elif directive == "define" and active:
                dm = _DEFINE_RE.match(rest.strip())
                if dm and not dm.group(2):      # skip function-like macros
                    name = dm.group(1)
                    value = " ".join(dm.group(3).split())
                    defines[name] = CDefine(name=name, value=value,
                                            line=start + 1)
            kept.extend([""] * (i - start + 1))
        else:
            kept.append(line if active else "")
            kept.extend([""] * (i - start))
        i += 1
    return kept, defines


# ----------------------------------------------------------------------
# pass 3: tokenize the active text
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
      [A-Za-z_]\w*
    | 0[xX][0-9a-fA-F]+\w*
    | \d+\.\d+[\w.]*
    | \d+\w*
    | \S
""", re.X)


def _tokenize(lines: list[str]) -> list[tuple[str, int]]:
    tokens = []
    for lineno, line in enumerate(lines, 1):
        for m in _TOKEN_RE.finditer(line):
            tokens.append((m.group(0), lineno))
    return tokens


# ----------------------------------------------------------------------
# pass 4: extract typedefs, structs, enums from the token stream
# ----------------------------------------------------------------------

_QUALIFIERS = frozenset(("const", "volatile", "signed", "unsigned"))


def _split_declarators(stmt: list[tuple[str, int]]) -> list[CField]:
    """Parse one ``type a, *b, c[4];`` statement (``;`` not included)."""
    segments: list[list[tuple[str, int]]] = [[]]
    for tok in stmt:
        if tok[0] == ",":
            segments.append([])
        else:
            segments[-1].append(tok)
    first = segments[0]
    star = next((k for k, t in enumerate(first) if t[0] == "*"), None)
    if star is not None:
        type_words = [t for t, _ in first[:star]]
    else:
        idents = [k for k, t in enumerate(first)
                  if re.match(r"[A-Za-z_]\w*$", t[0])]
        if len(idents) < 2:
            return []                           # not a member declaration
        type_words = [t for t, _ in first[:idents[-1]]]
    fields = []
    for seg in segments:
        pointer = any(t == "*" for t, _ in seg)
        # the declarator name is the last identifier before any array
        # suffix; the first segment additionally skips the type words
        bracket = next((k for k, t in enumerate(seg) if t[0] == "["),
                       len(seg))
        candidates = [tok for tok in seg[:bracket]
                      if re.match(r"[A-Za-z_]\w*$", tok[0])
                      and tok[0] not in _QUALIFIERS]
        if seg is first:
            skip = sum(1 for w in type_words
                       if w not in _QUALIFIERS
                       and re.match(r"[A-Za-z_]\w*$", w))
            candidates = candidates[skip:]
        if not candidates:
            continue
        name_tok = candidates[-1]
        fields.append(CField(name=name_tok[0], base=" ".join(type_words),
                             pointer=pointer, line=name_tok[1]))
    return fields


def _parse_struct_body(tokens: list[tuple[str, int]], start: int,
                       ) -> tuple[tuple[CField, ...], int]:
    """Parse from the token after ``{`` to the matching ``}``."""
    fields: list[CField] = []
    stmt: list[tuple[str, int]] = []
    i = start
    while i < len(tokens):
        text, _ = tokens[i]
        if text == "}":
            return tuple(fields), i + 1
        if text == "{":                         # nested aggregate: skip
            depth = 1
            i += 1
            while i < len(tokens) and depth:
                depth += {"{": 1, "}": -1}.get(tokens[i][0], 0)
                i += 1
            stmt = []
            continue
        if text == ";":
            if stmt:
                fields.extend(_split_declarators(stmt))
            stmt = []
        else:
            stmt.append(tokens[i])
        i += 1
    return tuple(fields), i


def _parse_enum_body(tokens: list[tuple[str, int]], start: int,
                     ) -> tuple[tuple[tuple[str, int | None], ...],
                                tuple[int, ...], int]:
    members: list[tuple[str, int | None]] = []
    lines: list[int] = []
    next_value: int | None = 0
    i = start
    while i < len(tokens) and tokens[i][0] != "}":
        name, line = tokens[i]
        i += 1
        value = next_value
        if i < len(tokens) and tokens[i][0] == "=":
            i += 1
            expr = []
            while i < len(tokens) and tokens[i][0] not in (",", "}"):
                expr.append(tokens[i][0])
                i += 1
            if len(expr) == 1:
                try:
                    value = int(_INT_SUFFIX_RE.sub("", expr[0]), 0)
                except ValueError:
                    value = None
            else:
                value = None
        members.append((name, value))
        lines.append(line)
        next_value = None if value is None else value + 1
        if i < len(tokens) and tokens[i][0] == ",":
            i += 1
    return tuple(members), tuple(lines), i + 1


def parse_c(source: str) -> CUnit:
    """Parse one C source text into its declaration surface."""
    lines, defines = _preprocess(_blank_comments(source))
    tokens = _tokenize(lines)
    unit = CUnit(defines=defines)
    i = 0
    n = len(tokens)
    while i < n:
        text, line = tokens[i]
        if text == "typedef":
            j = i + 1
            kind = tokens[j][0] if j < n else ""
            if kind in ("struct", "enum") and j + 1 < n:
                j += 1
                tag = None
                if re.match(r"[A-Za-z_]\w*$", tokens[j][0]):
                    tag = tokens[j][0]
                    j += 1
                if j < n and tokens[j][0] == "{":
                    if kind == "struct":
                        fields, j = _parse_struct_body(tokens, j + 1)
                        if j < n and re.match(r"[A-Za-z_]\w*$",
                                              tokens[j][0]):
                            unit.structs[tokens[j][0]] = CStruct(
                                name=tokens[j][0], fields=fields, line=line)
                    else:
                        members, mlines, j = _parse_enum_body(tokens, j + 1)
                        if j < n and re.match(r"[A-Za-z_]\w*$",
                                              tokens[j][0]):
                            unit.enums[tokens[j][0]] = CEnum(
                                name=tokens[j][0], members=members,
                                line=line, member_lines=mlines)
                    i = j
                elif tag is not None:           # typedef struct X X2;
                    i = j
            else:
                # scalar typedef: words... name ;
                words = []
                while j < n and tokens[j][0] != ";":
                    words.append(tokens[j][0])
                    j += 1
                if len(words) >= 2 and "*" not in words:
                    unit.typedefs[words[-1]] = " ".join(words[:-1])
                i = j
        elif text in ("struct", "enum") and i + 2 < n \
                and re.match(r"[A-Za-z_]\w*$", tokens[i + 1][0]) \
                and tokens[i + 2][0] == "{":
            tag = tokens[i + 1][0]
            if text == "struct":
                fields, j = _parse_struct_body(tokens, i + 3)
                unit.structs[tag] = CStruct(name=tag, fields=fields,
                                            line=line)
            else:
                members, mlines, j = _parse_enum_body(tokens, i + 3)
                unit.enums[tag] = CEnum(name=tag, members=members,
                                        line=line, member_lines=mlines)
            i = j
        i += 1
    return unit
