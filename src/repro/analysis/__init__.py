"""Static contract & determinism analysis — the ``repro lint`` layer.

The reproduction's correctness claims rest on invariants no unit test
can watch continuously: the ``reference``/``batched`` engines must stay
byte-identical under the SimStats contract, cache keys must cover every
config field, and telemetry/module state must never leak between runs.
Two of those have already been violated and hand-patched (the PR 3
shared module-level sink lists in ``backend.py``, the PR 5
``FFWD_TELEMETRY`` leak).  This package checks them mechanically.

It is a small AST-walking rule framework plus repo-specific rules:

* :mod:`repro.analysis.findings`  — the :class:`Finding` record
* :mod:`repro.analysis.registry`  — rule registration (``@rule``),
  per-rule severity and scope, the generated markdown catalog
* :mod:`repro.analysis.context`   — parsed-module / project contexts
  (plus the memoized project call graph accessor)
* :mod:`repro.analysis.cparse`    — dependency-free C declaration
  parser for the ``_soa_march.c`` seam rules
* :mod:`repro.analysis.callgraph` — project-wide call/reference graph
* :mod:`repro.analysis.dataflow`  — reaching self-attribute loads,
  module-global mutation sites, fork entry points
* :mod:`repro.analysis.baseline`  — the committed grandfather file
  (``lint-baseline.json``) for justified, suppressed findings
* :mod:`repro.analysis.cache`     — per-file incremental result cache
  (``.repro-lint-cache.json``)
* :mod:`repro.analysis.runner`    — rule execution, inline-``allow``
  suppression, baseline application, text/JSON reports
* :mod:`repro.analysis.sarif`     — SARIF 2.1.0 export for CI
* :mod:`repro.analysis.history`   — BENCH history schema/trajectory
  checks (shared with ``scripts/check_bench_history.py``)
* :mod:`repro.analysis.rules`     — the rule catalog itself
  (``docs/linting.md`` documents every rule)

Entry points: ``repro lint`` on the command line, or::

    from repro.analysis import lint
    report = lint("/path/to/repo")
    assert report.exit_code() == 0

Everything here is import-light: rules parse source with :mod:`ast`
and only the semantic rules (cache-key perturbation, the CLI-docs
cross-check) import the library under analysis — which is this very
package's own distribution, never a third-party dependency.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.context import ModuleContext, Project
from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.registry import RULES, Rule, all_rules, rule
from repro.analysis.runner import LintReport, format_text, lint, run_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "SEVERITIES",
    "LintReport",
    "ModuleContext",
    "Project",
    "RULES",
    "Rule",
    "all_rules",
    "rule",
    "format_text",
    "lint",
    "run_rules",
]
