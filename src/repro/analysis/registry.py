"""Rule registration: the ``@rule`` decorator and the global catalog.

A rule is a named check with a severity, a scope and a docstring-sized
description.  Two scopes exist:

* ``module`` — the check runs once per parsed source file whose
  repo-relative path starts with one of the rule's ``dirs`` prefixes;
  it receives a :class:`~repro.analysis.context.ModuleContext`.
* ``project`` — the check runs once per lint invocation and receives
  the whole :class:`~repro.analysis.context.Project`; used for
  cross-file contracts (cache-key coverage, re-export surfaces, the
  refolded repo guards).

Rules register at import time of :mod:`repro.analysis.rules`; the
registry itself depends on nothing, so there are no import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.findings import SEVERITIES, Finding
from repro.errors import ConfigError

SCOPES = ("module", "project")


@dataclass(frozen=True)
class Rule:
    """One registered check (see ``docs/linting.md`` for the catalog)."""

    id: str
    severity: str
    scope: str
    description: str
    check: Callable[..., Iterable[Finding]]
    #: repo-relative directory prefixes a ``module``-scope rule applies
    #: to (empty = every module under ``src/repro``)
    dirs: tuple[str, ...] = field(default=())


#: id -> Rule, in registration order (the catalog order of
#: ``repro lint --list-rules``).
RULES: dict[str, Rule] = {}


def rule(rule_id: str, *, description: str, severity: str = "error",
         scope: str = "module", dirs: tuple[str, ...] = ()):
    """Register the decorated generator function as a lint rule."""
    if severity not in SEVERITIES:
        raise ConfigError(
            f"rule {rule_id!r}: severity must be one of {SEVERITIES}")
    if scope not in SCOPES:
        raise ConfigError(f"rule {rule_id!r}: scope must be one of {SCOPES}")
    if rule_id in RULES:
        raise ConfigError(f"duplicate rule id {rule_id!r}")

    def register(check: Callable[..., Iterable[Finding]]):
        RULES[rule_id] = Rule(id=rule_id, severity=severity, scope=scope,
                              description=description, check=check,
                              dirs=tuple(dirs))
        return check

    return register


def all_rules() -> dict[str, Rule]:
    """The full catalog, importing the rule modules on first use."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    return RULES


#: Markers delimiting the generated catalog table in ``docs/linting.md``
#: (the ``lint-docs`` rule keeps the enclosed text in sync).
CATALOG_BEGIN = "<!-- rule-catalog:begin (generated: repro lint --catalog) -->"
CATALOG_END = "<!-- rule-catalog:end -->"


def rule_catalog_markdown() -> str:
    """The auto-generated rule table for ``docs/linting.md``.

    Deterministic (registration order, no timestamps) so the docs only
    change when the catalog does; ``repro lint --catalog`` prints it
    and the ``lint-docs`` rule diffs it against the committed docs.
    """
    lines = [
        "| rule | severity | scope | enforces |",
        "| --- | --- | --- | --- |",
    ]
    for r in all_rules().values():
        scope = r.scope
        if r.dirs:
            scope += " — " + ", ".join(d.removeprefix("src/repro/")
                                       for d in r.dirs)
        lines.append(f"| `{r.id}` | {r.severity} | {scope} "
                     f"| {r.description} |")
    return "\n".join(lines)


def select_rules(rule_ids: Iterable[str] | None = None) -> list[Rule]:
    """Resolve a rule-id selection (None = every registered rule)."""
    catalog = all_rules()
    if rule_ids is None:
        return list(catalog.values())
    selected = []
    for rule_id in rule_ids:
        if rule_id not in catalog:
            raise ConfigError(
                f"unknown lint rule {rule_id!r}; known: {sorted(catalog)}")
        selected.append(catalog[rule_id])
    return selected
