"""The :class:`Finding` record every rule emits.

A finding is one concrete defect at one location.  Its *identity* for
baseline matching is ``(rule, path, symbol-or-message)`` — deliberately
**not** the line number, so unrelated edits that shift code up or down
do not un-suppress a grandfathered finding.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Report-level severities.  ``error`` findings fail ``repro lint``
#: unless baselined; ``warning`` findings are advisory (they fail only
#: under ``--strict``) — used where the signal is real but the
#: environment is noisy (e.g. the BENCH trajectory watch).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One defect at one location.

    ``rule`` and ``severity`` are stamped by the runner from the rule
    registration when a check leaves them empty, so rule bodies only
    fill location and message (a check may still set ``severity``
    explicitly to demote one finding — the trajectory watch does).
    """

    path: str           # repo-relative, posix separators
    line: int           # 1-based; 0 = file/project-level finding
    message: str
    symbol: str = ""    # stable identity for baseline matching
    rule: str = ""
    severity: str = ""

    def key(self) -> tuple[str, str, str]:
        """Baseline-matching identity (line numbers excluded)."""
        return (self.rule, self.path, self.symbol or self.message)

    def format(self) -> str:
        return (f"{self.path}:{self.line}: {self.severity}: "
                f"[{self.rule}] {self.message}")

    def to_dict(self) -> dict:
        return {"rule": self.rule, "severity": self.severity,
                "path": self.path, "line": self.line,
                "symbol": self.symbol, "message": self.message}
