"""Interprocedural dataflow passes layered on the call graph.

Three reusable analyses power the project-scope rules:

* :func:`transitive_self_attribute_loads` — which ``self.<attr>``
  fields a method *really* depends on, following helper methods and
  module-level helpers the object is passed to.  Upgrades the cache-key
  rule from "attributes the method names" to "attributes its whole call
  tree names".
* :func:`module_global_mutations` — every site in a module that mutates
  module-level state (``global`` rebinding, augmented assignment,
  mutating method calls, subscript/attribute stores on module names),
  attributed to the enclosing function.  Powers the module-state rule's
  mutation-site evidence and the fork-shared-state rule.
* :func:`fork_entry_points` — callables a module hands to worker pools
  (``pool.imap_unordered(f, ...)``, ``Process(target=f)``,
  ``executor.submit(f, ...)``): the roots from which fork-safety
  reachability starts.

All passes under-approximate: a call that cannot be pinned to a
definition contributes nothing, so every reported flow is a real flow
in the source (no speculative edges).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.astutils import dotted_name, module_bound_names
from repro.analysis.callgraph import CallGraph, Key
from repro.analysis.context import ModuleContext

__all__ = [
    "transitive_self_attribute_loads",
    "Mutation", "module_global_mutations",
    "ForkEntry", "fork_entry_points",
    "MUTATING_METHODS",
]

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
    "appendleft", "extendleft", "popleft", "__setitem__", "__delitem__",
})

#: Pool/executor methods whose first positional argument is a worker
#: callable executed in another process (or thread).
_POOL_DISPATCH = frozenset({
    "imap", "imap_unordered", "map", "map_async", "starmap",
    "starmap_async", "apply", "apply_async", "submit",
})

#: Constructors that take the worker callable as ``target=``.
_TARGET_CTORS = frozenset({"Process", "Thread"})


# ----------------------------------------------------------------------
# transitive self-attribute loads
# ----------------------------------------------------------------------

def _attr_loads_on(node: ast.AST, receiver: str) -> dict[str, int]:
    """``receiver.<attr>`` reads under ``node``: attr -> first line."""
    loads: dict[str, int] = {}
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == receiver):
            loads.setdefault(sub.attr, sub.lineno)
    return loads


def _methods_of(classnode: ast.ClassDef) -> dict[str, ast.AST]:
    return {stmt.name: stmt for stmt in classnode.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _module_functions(tree: ast.Module) -> dict[str, ast.AST]:
    return {stmt.name: stmt for stmt in tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _param_names(fn: ast.AST) -> list[str]:
    args = fn.args
    return [a.arg for a in args.posonlyargs + args.args]


def transitive_self_attribute_loads(
        tree: ast.Module, classnode: ast.ClassDef, method: ast.AST,
) -> dict[str, tuple[str, int]]:
    """``self.<attr>`` fields reachable from ``method``'s call tree.

    Returns ``{attr: (via_qualname, line)}`` where ``via_qualname`` is
    the function whose body reads the attribute (the method itself, a
    ``self.helper()`` it calls — transitively — or a module-level
    ``helper(self, ...)`` the object is passed to) and ``line`` is the
    read site in that function.  Under-approximate by construction:
    only calls resolvable inside the module are followed.
    """
    methods = _methods_of(classnode)
    functions = _module_functions(tree)
    result: dict[str, tuple[str, int]] = {}
    seen: set[tuple[int, str]] = set()
    # worklist of (function node, qualname, receiver parameter name)
    work: list[tuple[ast.AST, str, str]] = [
        (method, f"{classnode.name}.{method.name}", "self")]
    while work:
        fn, qualname, receiver = work.pop()
        if (id(fn), receiver) in seen:
            continue
        seen.add((id(fn), receiver))
        for attr, line in _attr_loads_on(fn, receiver).items():
            result.setdefault(attr, (qualname, line))
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name.startswith(receiver + ".") and name.count(".") == 1:
                helper = methods.get(name.split(".")[1])
                if helper is not None:
                    work.append((helper,
                                 f"{classnode.name}.{helper.name}", "self"))
            elif "." not in name and name in functions:
                # module-level helper: follow the receiver into any
                # positional slot it is passed through
                helper = functions[name]
                params = _param_names(helper)
                for pos, arg in enumerate(sub.args):
                    if isinstance(arg, ast.Name) and arg.id == receiver \
                            and pos < len(params):
                        work.append((helper, helper.name, params[pos]))
                for kw in sub.keywords:
                    if isinstance(kw.value, ast.Name) \
                            and kw.value.id == receiver \
                            and kw.arg in params:
                        work.append((helper, helper.name, kw.arg))
    return result


# ----------------------------------------------------------------------
# module-global mutation sites
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Mutation:
    """One site that mutates module-level state."""

    name: str                   # the module-level binding mutated
    line: int
    function: str               # enclosing function qualname, "" = top level
    how: str                    # "rebind" | "augment" | ".append(...)" | ...


def _own_nodes(body_owner: ast.AST):
    """Walk a function body without descending into nested defs (those
    are attributed to their own qualname by the caller)."""
    stack = list(ast.iter_child_nodes(body_owner))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _mutations_in(body_owner: ast.AST, qualname: str,
                  module_names: set[str]) -> list[Mutation]:
    out: list[Mutation] = []
    declared_global: set[str] = set()
    for sub in _own_nodes(body_owner):
        if isinstance(sub, ast.Global):
            declared_global.update(sub.names)
    for sub in _own_nodes(body_owner):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            parts = name.split(".")
            if len(parts) == 2 and parts[0] in module_names \
                    and parts[1] in MUTATING_METHODS:
                out.append(Mutation(name=parts[0], line=sub.lineno,
                                    function=qualname,
                                    how=f".{parts[1]}(...)"))
        elif isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) \
                else [sub.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    base = dotted_name(target.value)
                    if base in module_names:
                        out.append(Mutation(
                            name=base, line=sub.lineno, function=qualname,
                            how="[...] = ..."))
                elif isinstance(target, ast.Name) and qualname \
                        and target.id in declared_global \
                        and target.id in module_names:
                    out.append(Mutation(
                        name=target.id, line=sub.lineno, function=qualname,
                        how=("augment" if isinstance(sub, ast.AugAssign)
                             else "rebind")))
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                if isinstance(target, ast.Subscript):
                    base = dotted_name(target.value)
                    if base in module_names:
                        out.append(Mutation(
                            name=base, line=sub.lineno, function=qualname,
                            how="del [...]"))
    return out


def _functions_with_qualnames(tree: ast.Module,
                              ) -> list[tuple[ast.AST, str]]:
    out: list[tuple[ast.AST, str]] = []

    def walk(body, prefix):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((stmt, prefix + stmt.name))
                walk(stmt.body, prefix + stmt.name + ".")
            elif isinstance(stmt, ast.ClassDef):
                walk(stmt.body, prefix + stmt.name + ".")
            elif isinstance(stmt, (ast.If, ast.Try)):
                walk(list(ast.iter_child_nodes(stmt)), prefix)

    walk(tree.body, "")
    return out


def module_global_mutations(ctx: ModuleContext) -> list[Mutation]:
    """Every mutation of module-level state inside functions of ``ctx``
    (top-level statements are initialization, not shared-state
    mutation, and are not reported)."""
    module_names = module_bound_names(ctx.tree)
    out: list[Mutation] = []
    for node, qualname in _functions_with_qualnames(ctx.tree):
        out.extend(_mutations_in(node, qualname, module_names))
    out.sort(key=lambda m: m.line)
    return out


# ----------------------------------------------------------------------
# fork entry points
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ForkEntry:
    """One callable handed to a worker pool."""

    worker: Key                 # the function that runs in the worker
    line: int                   # dispatch site
    dispatcher: str             # e.g. "pool.imap_unordered"
    caller: Key                 # function containing the dispatch


def fork_entry_points(graph: CallGraph, ctx: ModuleContext,
                      ) -> list[ForkEntry]:
    """Worker callables dispatched to pools from functions in ``ctx``."""
    entries: list[ForkEntry] = []
    for info in graph.functions.values():
        if info.relpath != ctx.relpath:
            continue
        for sub in ast.walk(info.node):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            tail = name.rsplit(".", 1)[-1]
            candidates: list[ast.expr] = []
            if tail in _POOL_DISPATCH and sub.args:
                candidates.append(sub.args[0])
            if tail in _TARGET_CTORS:
                candidates.extend(kw.value for kw in sub.keywords
                                  if kw.arg == "target")
            for candidate in candidates:
                worker = graph._resolve(ctx, info, dotted_name(candidate))
                if worker is not None:
                    entries.append(ForkEntry(
                        worker=worker, line=sub.lineno, dispatcher=name,
                        caller=info.key))
    entries.sort(key=lambda e: e.line)
    return entries
