"""Per-file incremental result cache for ``repro lint``.

Module-scope rules are pure functions of one file's text, so their
findings can be replayed from a cache instead of re-parsed on every
run — that is what keeps a warm ``repro lint`` effectively free on the
module half of the catalog.  Project-scope rules (the C seam, the call
graph, the cache-key perturbation) read many files at once and are
never cached; they re-run every time.

Safety model — a cache entry is replayed only when **all three** match:

* the *salt*: a digest of every source file in the analysis package
  itself, so editing any rule, the parser, or the dataflow layer
  invalidates the whole cache at once (no "stale verdict from an old
  rule" class of bug);
* the analyzed file's content digest;
* the rule id.

The cache file (``.repro-lint-cache.json``, repo root) is disposable
and git-ignored; a corrupt, missing, or foreign-version file degrades
to a cold run, never to an error.  Writes go through
:func:`repro.sweep.atomic.atomic_write_json` so a lint racing another
lint can never observe a torn file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.findings import Finding

#: Cache file name, resolved against the lint root.
CACHE_NAME = ".repro-lint-cache.json"

_FORMAT_VERSION = 1

_SALT_MEMO: str | None = None


def analysis_salt() -> str:
    """Digest of the analysis package's own sources (memoized).

    Any edit to a rule, the C parser, the call graph, or this module
    changes the salt and drops every cached verdict.
    """
    global _SALT_MEMO
    if _SALT_MEMO is None:
        package_dir = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(path.relative_to(package_dir).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _SALT_MEMO = digest.hexdigest()
    return _SALT_MEMO


def content_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class AnalysisCache:
    """Replayable per-(file, rule) findings keyed by content digest."""

    def __init__(self, root: str | Path) -> None:
        self.path = Path(root) / CACHE_NAME
        self.salt = analysis_salt()
        self._files: dict[str, dict] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, root: str | Path) -> "AnalysisCache":
        """Read the cache; anything suspicious degrades to empty."""
        cache = cls(root)
        try:
            payload = json.loads(cache.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (not isinstance(payload, dict)
                or payload.get("version") != _FORMAT_VERSION
                or payload.get("salt") != cache.salt
                or not isinstance(payload.get("files"), dict)):
            return cache
        cache._files = payload["files"]
        return cache

    def save(self) -> None:
        """Persist atomically — only when something actually changed."""
        if not self._dirty:
            return
        from repro.sweep.atomic import atomic_write_json
        atomic_write_json(self.path, {
            "version": _FORMAT_VERSION,
            "salt": self.salt,
            "files": self._files,
        })
        self._dirty = False

    # ------------------------------------------------------------------
    def lookup(self, relpath: str, digest: str,
               rule_id: str) -> list[Finding] | None:
        """Cached findings for (file, rule), or ``None`` on a miss."""
        entry = self._files.get(relpath)
        if (not isinstance(entry, dict) or entry.get("digest") != digest
                or not isinstance(entry.get("rules"), dict)):
            self.misses += 1
            return None
        raw = entry["rules"].get(rule_id)
        if not isinstance(raw, list):
            self.misses += 1
            return None
        try:
            findings = [Finding(**item) for item in raw]
        except TypeError:
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def store(self, relpath: str, digest: str, rule_id: str,
              findings: list[Finding]) -> None:
        entry = self._files.get(relpath)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            entry = {"digest": digest, "rules": {}}
            self._files[relpath] = entry
        entry["rules"][rule_id] = [f.to_dict() for f in findings]
        self._dirty = True
