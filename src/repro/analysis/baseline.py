"""The committed grandfather file for justified findings.

``lint-baseline.json`` (repo root) lists findings that are known,
deliberate and explained.  Matching is by ``(rule, path, symbol)`` —
never by line number — so ordinary edits don't un-suppress an entry,
while deleting the offending code makes the entry *stale* (reported by
the runner so the file shrinks back toward empty).

Workflow (see ``docs/linting.md``):

* a new justified exception: run ``repro lint --update-baseline``, then
  replace the generated ``TODO`` justification with a real sentence;
* a fixed finding: re-run ``--update-baseline`` (or hand-delete the
  entry) — stale entries are flagged until removed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import ConfigError

#: Default baseline file name, resolved against the lint root.
BASELINE_NAME = "lint-baseline.json"

#: Justification placeholder written by ``--update-baseline`` for new
#: entries; the runner warns while any entry still carries it.
TODO_JUSTIFICATION = "TODO: justify this suppression or fix the finding"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    justification: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "symbol": self.symbol,
                "justification": self.justification}


class Baseline:
    """An ordered set of :class:`BaselineEntry`, keyed for matching."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries = list(entries or [])
        self._by_key = {e.key(): e for e in self.entries}

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"unreadable lint baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ConfigError(
                f"malformed lint baseline {path}: expected an object with "
                f"an 'entries' list")
        entries = []
        for i, raw in enumerate(payload["entries"]):
            try:
                entries.append(BaselineEntry(
                    rule=raw["rule"], path=raw["path"],
                    symbol=raw.get("symbol", ""),
                    justification=raw.get("justification", "")))
            except (TypeError, KeyError) as exc:
                raise ConfigError(
                    f"malformed lint baseline {path}: entry {i}: {exc}") from exc
        return cls(entries)

    def save(self, path: str | Path) -> None:
        """Write deterministically (sorted entries, stable JSON).

        Atomic (temp + rename): ``--update-baseline`` racing a reader
        (CI, another lint) can never expose a half-written file.  The
        import is lazy so plain lint runs never touch the sweep layer.
        """
        from repro.sweep.atomic import atomic_write_json
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [e.to_dict() for e in sorted(self.entries,
                                                    key=BaselineEntry.key)],
        }
        atomic_write_json(path, payload)

    # ------------------------------------------------------------------
    def match(self, finding: Finding) -> BaselineEntry | None:
        return self._by_key.get(finding.key())

    def stale(self, matched: set[tuple[str, str, str]]) -> list[BaselineEntry]:
        """Entries that matched no current finding (fixed or renamed)."""
        return [e for e in self.entries if e.key() not in matched]

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      previous: "Baseline | None" = None) -> "Baseline":
        """Baseline every given finding, keeping prior justifications."""
        entries = []
        seen = set()
        for finding in findings:
            key = finding.key()
            if key in seen:
                continue
            seen.add(key)
            old = previous._by_key.get(key) if previous is not None else None
            entries.append(BaselineEntry(
                rule=key[0], path=key[1], symbol=key[2],
                justification=(old.justification if old is not None
                               and old.justification else TODO_JUSTIFICATION)))
        return cls(entries)
