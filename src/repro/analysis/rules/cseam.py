"""Cross-language seam verifier: ``_soa_march.c`` vs its Python mirrors.

The compiled SoA engine speaks to Python through a hand-maintained ABI:
a ctypes struct mirror, numpy arrays marshalled into raw pointers,
counter-slot numbers, kernel-id codes and a pair of magic values.  Each
of those correspondences lives in *two* files that nothing used to
cross-check — a reordered struct field or renumbered counter slot
compiles fine, loads fine, and silently corrupts every simulation
counter.  (The runtime magic/ABI guards catch gross skew, but only at
execution time and only for the layout, not for slot or kernel-id
drift.)

Three project rules pin the seam at lint time, each finding naming the
C and the Python location of the disagreement:

* ``c-seam-layout`` — the ``_SoaState`` ctypes mirror must list the
  same fields, in the same order, with the same 8-byte kinds as the C
  ``SoaState`` struct (first divergence reported, so one swap is one
  finding); the struct magic must equal ``SOA_MAGIC``; every array the
  prologue marshals into a pointer field must carry the dtype the C
  side will read through it.
* ``c-seam-counters`` — ``_C_*`` slot constants must match the ``C_*``
  defines value-for-value; the ``_SLOT_SITES`` seam map, the
  ``+= int(ctr[...])`` commit statements and the subnetworks'
  ``counter_sites()`` attribute names must all agree.
* ``c-seam-kernels`` — reduce/process kernel ids (``_RED_CODES``,
  batched ``_proc`` codes, the ``st.proc`` remap) must match the
  ``RED_*``/``PROC_*`` defines, the scalar-reduce surface in
  ``algorithms/base.py`` must be exactly what the C kernel implements,
  and ``soakernel.py`` must still be able to find ``SOA_ABI_VERSION``.

All checks are per-name/per-field, so a single mutation yields a
single finding.  On projects without the kernel pair (fixture repos),
the rules are silent; with only one side present they report the
missing counterpart.
"""

from __future__ import annotations

import ast
import weakref

from repro.analysis.astutils import dotted_name, find_class
from repro.analysis.cparse import CUnit, parse_c
from repro.analysis.context import Project
from repro.analysis.registry import rule

C_PATH = "src/repro/accel/engine/_soa_march.c"
SOA_PATH = "src/repro/accel/engine/soa.py"
KERNEL_PATH = "src/repro/accel/engine/soakernel.py"
BATCHED_PATH = "src/repro/accel/engine/batched.py"
ALGORITHM_PATH = "src/repro/algorithms/base.py"
ENGINE_DIR = "src/repro/accel/engine"

C_STRUCT = "SoaState"
PY_MIRROR = "_SoaState"

#: ctypes constructors -> 8-byte field kind.
_CTYPES_KINDS = {
    "c_longlong": "i64", "c_int64": "i64",
    "c_double": "f64",
    "c_void_p": "ptr",
}

_cunit_memo: "weakref.WeakKeyDictionary[Project, CUnit]" = \
    weakref.WeakKeyDictionary()


def _c_unit(project: Project, ctx) -> CUnit:
    if project not in _cunit_memo:
        _cunit_memo[project] = parse_c(ctx.source)
    return _cunit_memo[project]


def _seam_modules(project: Project):
    """(c ctx, soa ctx) when the seam exists here; (None, None) plus a
    finding when exactly one side is missing."""
    c_ctx = project.module(C_PATH)
    py_ctx = project.module(SOA_PATH)
    return c_ctx, py_ctx


def _ckind(unit: CUnit, field) -> str:
    if field.pointer:
        return "ptr"
    canon = unit.canonical_type(field.scalar)
    return {"long long": "i64", "double": "f64"}.get(canon, canon)


# ----------------------------------------------------------------------
# soa.py extractors
# ----------------------------------------------------------------------

def _ctypes_aliases(tree: ast.Module) -> dict[str, str]:
    """Module aliases like ``_i64 = ctypes.c_longlong`` -> kind."""
    aliases: dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            tail = dotted_name(stmt.value).rsplit(".", 1)[-1]
            if tail in _CTYPES_KINDS:
                aliases[stmt.targets[0].id] = _CTYPES_KINDS[tail]
    return aliases


def _mirror_fields(tree: ast.Module) -> list[tuple[str, str, int]] | None:
    """``(name, kind, line)`` per ``_SoaState._fields_`` entry."""
    cls = find_class(tree, PY_MIRROR)
    if cls is None:
        return None
    aliases = _ctypes_aliases(tree)
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "_fields_"
                        for t in stmt.targets) \
                and isinstance(stmt.value, (ast.Tuple, ast.List)):
            fields = []
            for entry in stmt.value.elts:
                if not (isinstance(entry, (ast.Tuple, ast.List))
                        and len(entry.elts) == 2
                        and isinstance(entry.elts[0], ast.Constant)):
                    return None
                name = entry.elts[0].value
                type_name = dotted_name(entry.elts[1])
                kind = aliases.get(
                    type_name,
                    _CTYPES_KINDS.get(type_name.rsplit(".", 1)[-1], "?"))
                fields.append((name, kind, entry.lineno))
            return fields
    return None


def _module_int_constants(tree: ast.Module, prefix: str,
                          ) -> dict[str, tuple[int, int]]:
    """``NAME -> (value, line)`` for top-level int assignments."""
    out: dict[str, tuple[int, int]] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id.startswith(prefix) \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, int):
            out[stmt.targets[0].id] = (stmt.value.value, stmt.lineno)
    return out


def _dict_literal(node: ast.AST) -> ast.Dict | None:
    """The dict literal in ``X = {...}`` or ``X = Wrapper({...})``."""
    if isinstance(node, ast.Dict):
        return node
    if isinstance(node, ast.Call) and node.args \
            and isinstance(node.args[0], ast.Dict):
        return node.args[0]
    return None


def _top_level_dict(tree: ast.Module, name: str,
                    ) -> tuple[ast.Dict, int] | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id == name:
            literal = _dict_literal(stmt.value)
            if literal is not None:
                return literal, stmt.lineno
    return None


def _slot_sites(tree: ast.Module) -> dict[str, tuple[tuple[str, ...], int]]:
    found = _top_level_dict(tree, "_SLOT_SITES")
    if found is None:
        return {}
    literal, _line = found
    out: dict[str, tuple[tuple[str, ...], int]] = {}
    for key, value in zip(literal.keys, literal.values):
        if not isinstance(key, ast.Constant):
            continue
        sites = tuple(e.value for e in getattr(value, "elts", ())
                      if isinstance(e, ast.Constant))
        out[key.value] = (sites, key.lineno)
    return out


def _commit_pairs(tree: ast.Module) -> list[tuple[str, str, int]]:
    """``(slot, site_attr, line)`` per ``X.attr += int(ctr[_C_...])``."""
    pairs = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Attribute)):
            continue
        value = node.value
        if isinstance(value, ast.Call) and dotted_name(value.func) == "int" \
                and len(value.args) == 1:
            value = value.args[0]
        if isinstance(value, ast.Subscript) \
                and isinstance(value.slice, ast.Name) \
                and value.slice.id.startswith("_C_"):
            pairs.append((value.slice.id, node.target.attr, node.lineno))
    return pairs


def _arr_dtype_kind(call: ast.Call) -> str | None:
    """The marshalled dtype of one ``arr(...)`` call (default int64)."""
    dtype_node = None
    if len(call.args) >= 2:
        dtype_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "dtype":
            dtype_node = kw.value
    if dtype_node is None:
        return "i64"
    tail = dotted_name(dtype_node).rsplit(".", 1)[-1]
    return {"float64": "f64", "int64": "i64"}.get(tail)


def _marshalled_dtypes(tree: ast.Module) -> dict[str, tuple[str, int]]:
    """``struct field -> (dtype kind, line)`` for every ``st.X =
    ptr(...)`` whose array dtype is statically visible."""
    # every name an arr(...) result is bound to, module-wide
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.value, ast.Call) \
                and dotted_name(node.value.func) == "arr":
            kind = _arr_dtype_kind(node.value)
            target = dotted_name(node.targets[0])
            if kind is not None and target:
                bindings[target] = kind
    out: dict[str, tuple[str, int]] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "st"
                and isinstance(node.value, ast.Call)
                and dotted_name(node.value.func) == "ptr"
                and len(node.value.args) == 1):
            continue
        field = node.targets[0].attr
        arg = node.value.args[0]
        kind = None
        if isinstance(arg, ast.Call) and dotted_name(arg.func) == "arr":
            kind = _arr_dtype_kind(arg)
        else:
            kind = bindings.get(dotted_name(arg))
        if kind is not None:
            out.setdefault(field, (kind, node.lineno))
    return out


def _counter_site_names(project: Project) -> list[tuple[str, str, int]]:
    """``(relpath, attr, line)`` for every string a ``counter_sites``
    method returns across the engine package."""
    sites = []
    for ctx in project.modules(under=(ENGINE_DIR,)):
        try:
            tree = ctx.tree
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == "counter_sites":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Constant) \
                            and isinstance(sub.value, str):
                        sites.append((ctx.relpath, sub.value, sub.lineno))
    return sites


def _st_proc_literals(tree: ast.Module) -> list[tuple[int, int]]:
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Attribute) and t.attr == "proc"
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "st" for t in node.targets) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, int):
            out.append((node.value.value, node.lineno))
    return out


def _self_proc_literals(tree: ast.Module) -> list[tuple[int, int]]:
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) \
                and any(dotted_name(t) == "self._proc"
                        for t in node.targets) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, int):
            out.append((node.value.value, node.lineno))
    return out


# ----------------------------------------------------------------------
# the rules
# ----------------------------------------------------------------------

@rule("c-seam-layout", scope="project",
      description="the _SoaState ctypes mirror, marshalled array dtypes "
                  "and struct magic must match the C SoaState layout")
def check_c_seam_layout(project: Project):
    c_ctx, py_ctx = _seam_modules(project)
    if c_ctx is None and py_ctx is None:
        return
    if c_ctx is None or py_ctx is None:
        present = py_ctx or c_ctx
        missing = C_PATH if c_ctx is None else SOA_PATH
        yield present.finding(
            1, f"C seam is one-sided: {present.relpath} exists but "
               f"{missing} is missing — the kernel ABI cannot be "
               f"verified", symbol="seam-missing")
        return
    unit = _c_unit(project, c_ctx)
    struct = unit.structs.get(C_STRUCT)
    try:
        mirror = _mirror_fields(py_ctx.tree)
    except SyntaxError:
        return
    if struct is None:
        yield c_ctx.finding(1, f"struct {C_STRUCT} not found in "
                               f"{C_PATH} (renamed?) — {SOA_PATH} mirrors "
                               f"a struct that no longer exists",
                            symbol="struct-missing")
        return
    if mirror is None:
        yield py_ctx.finding(
            1, f"{PY_MIRROR}._fields_ not found as a literal tuple in "
               f"{SOA_PATH} — the mirror of {C_PATH}:{struct.line} "
               f"{C_STRUCT} cannot be verified", symbol="mirror-missing")
        return

    # field-by-field, in order; first divergence only (a swap would
    # otherwise cascade into a mismatch at every later index)
    for index, (cfield, (pname, pkind, pline)) in enumerate(
            zip(struct.fields, mirror)):
        ckind = _ckind(unit, cfield)
        if cfield.name != pname:
            yield py_ctx.finding(
                pline,
                f"struct field order diverges at index {index}: "
                f"{C_PATH}:{cfield.line} declares {cfield.name!r} but "
                f"{SOA_PATH}:{pline} mirrors {pname!r} — every later "
                f"field is shifted 8 bytes",
                symbol=f"field-order:{cfield.name}")
            break
        if ckind != pkind:
            yield py_ctx.finding(
                pline,
                f"struct field {cfield.name!r} kind mismatch: "
                f"{C_PATH}:{cfield.line} declares {ckind} but "
                f"{SOA_PATH}:{pline} mirrors {pkind}",
                symbol=f"field-kind:{cfield.name}")
            break
    else:
        if len(struct.fields) != len(mirror):
            longer, at = ((C_PATH, struct.line)
                          if len(struct.fields) > len(mirror)
                          else (SOA_PATH, mirror[-1][2] if mirror else 1))
            yield py_ctx.finding(
                mirror[-1][2] if mirror else 1,
                f"struct field count mismatch: {C_PATH}:{struct.line} "
                f"{C_STRUCT} has {len(struct.fields)} fields, "
                f"{SOA_PATH} {PY_MIRROR} mirrors {len(mirror)} "
                f"(extra fields in {longer}:{at})",
                symbol="field-count")

    # struct magic: the runtime guard value must be the C constant
    magic_define = unit.defines.get("SOA_MAGIC")
    py_magic = _module_int_constants(py_ctx.tree, "_MAGIC").get("_MAGIC")
    if magic_define is None or magic_define.int_value() is None:
        yield c_ctx.finding(1, f"#define SOA_MAGIC not found (or not an "
                               f"integer literal) in {C_PATH} — the "
                               f"runtime layout guard is unverifiable",
                            symbol="magic:SOA_MAGIC")
    elif py_magic is None:
        yield py_ctx.finding(1, f"_MAGIC constant not found in {SOA_PATH} "
                                f"to mirror {C_PATH}:{magic_define.line} "
                                f"SOA_MAGIC", symbol="magic:_MAGIC")
    elif py_magic[0] != magic_define.int_value():
        yield py_ctx.finding(
            py_magic[1],
            f"struct magic mismatch: {SOA_PATH}:{py_magic[1]} _MAGIC = "
            f"{py_magic[0]:#x} but {C_PATH}:{magic_define.line} "
            f"SOA_MAGIC = {magic_define.int_value():#x} — the kernel "
            f"will reject every call", symbol="magic:value")

    # marshalled dtypes: what the prologue allocates vs what C reads
    if struct is not None:
        marshalled = _marshalled_dtypes(py_ctx.tree)
        for cfield in struct.fields:
            if not cfield.pointer or cfield.name not in marshalled:
                continue
            canon = unit.canonical_type(cfield.scalar)
            expected = {"long long": "i64", "double": "f64"}.get(canon)
            got, line = marshalled[cfield.name]
            if expected is not None and got != expected:
                yield py_ctx.finding(
                    line,
                    f"marshalled dtype mismatch for {cfield.name!r}: "
                    f"{C_PATH}:{cfield.line} reads {expected} through "
                    f"the pointer but {SOA_PATH}:{line} allocates "
                    f"{got} — the kernel will reinterpret raw bytes",
                    symbol=f"dtype:{cfield.name}")


@rule("c-seam-counters", scope="project",
      description="counter-slot numbers, the _SLOT_SITES seam map, the "
                  "ctr[] commit statements and the subnetworks' "
                  "counter_sites() names must all agree")
def check_c_seam_counters(project: Project):
    c_ctx, py_ctx = _seam_modules(project)
    if c_ctx is None or py_ctx is None:
        return                          # layout rule reports one-sidedness
    unit = _c_unit(project, c_ctx)
    try:
        tree = py_ctx.tree
    except SyntaxError:
        return
    c_slots = {name: d for name, d in unit.defines.items()
               if name.startswith("C_") and d.int_value() is not None}
    py_slots = _module_int_constants(tree, "_C_")
    if not c_slots and not py_slots:
        return

    # 1. per-name value agreement (C_X <-> _C_X)
    for cname, define in sorted(c_slots.items()):
        pyname = "_" + cname
        if pyname not in py_slots:
            yield py_ctx.finding(
                1, f"counter slot {cname} ({C_PATH}:{define.line}) has "
                   f"no {pyname} constant in {SOA_PATH}",
                symbol=f"slot:{cname}")
            continue
        value, line = py_slots[pyname]
        if value != define.int_value():
            yield py_ctx.finding(
                line,
                f"counter slot number mismatch: {SOA_PATH}:{line} "
                f"{pyname} = {value} but {C_PATH}:{define.line} {cname} "
                f"= {define.int_value()} — counters land in the wrong "
                f"SimStats site", symbol=f"slot:{cname}")
    for pyname, (_value, line) in sorted(py_slots.items()):
        if pyname[1:] not in c_slots:
            yield py_ctx.finding(
                line, f"{SOA_PATH}:{line} {pyname} has no {pyname[1:]} "
                      f"define in {C_PATH}", symbol=f"slot:{pyname[1:]}")

    # 2. _SLOT_SITES covers every slot (and nothing else)
    sites = _slot_sites(tree)
    if not sites:
        yield py_ctx.finding(1, f"_SLOT_SITES seam map not found in "
                                f"{SOA_PATH}; the counter-slot -> "
                                f"SimStats-site correspondence is "
                                f"undeclared", symbol="slot-sites-missing")
        return
    slot_names = {name for name in py_slots if name != "_C_NUM"}
    for slot in sorted(slot_names - set(sites)):
        yield py_ctx.finding(
            py_slots[slot][1],
            f"counter slot {slot} ({SOA_PATH}:{py_slots[slot][1]}) has "
            f"no _SLOT_SITES entry declaring which SimStats site it "
            f"feeds", symbol=f"sites:{slot}")
    for slot in sorted(set(sites) - slot_names):
        yield py_ctx.finding(
            sites[slot][1],
            f"_SLOT_SITES declares {slot} ({SOA_PATH}:{sites[slot][1]}) "
            f"but no such slot constant exists", symbol=f"sites:{slot}")

    # 3. the commit statements must realize exactly the declared sites
    commits: dict[str, dict[str, int]] = {}
    for slot, attr, line in _commit_pairs(tree):
        commits.setdefault(slot, {}).setdefault(attr, line)
    for slot in sorted(slot_names & set(sites)):
        declared, decl_line = sites[slot]
        committed = commits.get(slot, {})
        for attr in sorted(set(declared) - set(committed)):
            yield py_ctx.finding(
                decl_line,
                f"_SLOT_SITES says {slot} feeds .{attr} "
                f"({SOA_PATH}:{decl_line}) but no '+= int(ctr[{slot}])' "
                f"commit to .{attr} exists in {SOA_PATH}",
                symbol=f"commit:{slot}.{attr}")
        for attr in sorted(set(committed) - set(declared)):
            yield py_ctx.finding(
                committed[attr],
                f"{SOA_PATH}:{committed[attr]} commits ctr[{slot}] to "
                f".{attr} but _SLOT_SITES does not declare that site "
                f"for {slot}", symbol=f"commit:{slot}.{attr}")

    # 4. every subnetwork counter site is fed by some slot
    covered = {attr for declared, _line in sites.values()
               for attr in declared}
    seen: set[tuple[str, str]] = set()
    for relpath, attr, line in _counter_site_names(project):
        if attr in covered or (relpath, attr) in seen:
            continue
        seen.add((relpath, attr))
        yield project.finding(
            relpath, line,
            f"counter site {attr!r} ({relpath}:{line}) is not fed by "
            f"any C counter slot in {SOA_PATH} _SLOT_SITES — the soa "
            f"engine would silently drop it", symbol=f"site:{attr}")


@rule("c-seam-kernels", scope="project",
      description="reduce/process kernel id codes and the ABI version "
                  "probe must match the C RED_*/PROC_* declarations")
def check_c_seam_kernels(project: Project):
    c_ctx, py_ctx = _seam_modules(project)
    if c_ctx is None or py_ctx is None:
        return
    unit = _c_unit(project, c_ctx)
    try:
        tree = py_ctx.tree
    except SyntaxError:
        return
    red_defines = {name: d for name, d in unit.defines.items()
                   if name.startswith("RED_")
                   and d.int_value() is not None}
    red_codes = _top_level_dict(tree, "_RED_CODES")
    if not red_defines and red_codes is None:
        return

    # 1. _RED_CODES <-> RED_* defines, per name
    py_red: dict[str, tuple[int, int]] = {}
    if red_codes is not None:
        literal, _line = red_codes
        for key, value in zip(literal.keys, literal.values):
            if isinstance(key, ast.Constant) \
                    and isinstance(value, ast.Constant):
                py_red[key.value] = (value.value, key.lineno)
    elif red_defines:
        yield py_ctx.finding(
            1, f"_RED_CODES mapping not found in {SOA_PATH} to mirror "
               f"the RED_* defines of {C_PATH}", symbol="red:missing")
    for op, (code, line) in sorted(py_red.items()):
        cname = f"RED_{op.upper()}"
        define = red_defines.get(cname)
        if define is None:
            yield py_ctx.finding(
                line, f"_RED_CODES[{op!r}] ({SOA_PATH}:{line}) has no "
                      f"{cname} define in {C_PATH} — the kernel cannot "
                      f"run that reduction", symbol=f"red:{op}")
        elif define.int_value() != code:
            yield py_ctx.finding(
                line,
                f"reduce kernel id mismatch for {op!r}: "
                f"{SOA_PATH}:{line} sends {code} but "
                f"{C_PATH}:{define.line} {cname} = {define.int_value()}",
                symbol=f"red:{op}")
    for cname, define in sorted(red_defines.items()):
        if cname[len("RED_"):].lower() not in py_red:
            yield py_ctx.finding(
                1, f"{C_PATH}:{define.line} declares {cname} but "
                   f"_RED_CODES in {SOA_PATH} never sends it",
                symbol=f"red:{cname[len('RED_'):].lower()}")

    # 2. the scalar-reduce surface the Python engines support must be
    #    exactly the set the C kernel has closed forms for
    alg_ctx = project.module(ALGORITHM_PATH)
    if alg_ctx is not None and py_red:
        try:
            scalar = _top_level_dict(alg_ctx.tree, "_SCALAR_REDUCE")
        except SyntaxError:
            scalar = None
        if scalar is not None:
            literal, line = scalar
            alg_ops = {key.value: key.lineno for key in literal.keys
                       if isinstance(key, ast.Constant)}
            for op in sorted(set(alg_ops) - set(py_red)):
                yield project.finding(
                    ALGORITHM_PATH, alg_ops[op],
                    f"scalar reduce {op!r} ({ALGORITHM_PATH}:"
                    f"{alg_ops[op]}) has no _RED_CODES entry in "
                    f"{SOA_PATH} — the soa engine silently falls back "
                    f"for it", symbol=f"reduce-op:{op}")
            for op in sorted(set(py_red) - set(alg_ops)):
                yield py_ctx.finding(
                    py_red[op][1],
                    f"_RED_CODES[{op!r}] ({SOA_PATH}:{py_red[op][1]}) "
                    f"names a reduce op _SCALAR_REDUCE in "
                    f"{ALGORITHM_PATH}:{line} does not define",
                    symbol=f"reduce-op:{op}")

    # 3. process kernel codes: every code Python sends must be declared
    proc_defines = {name: d for name, d in unit.defines.items()
                    if name.startswith("PROC_")
                    and d.int_value() is not None}
    if proc_defines:
        declared = {d.int_value() for d in proc_defines.values()}
        undeclared_sent = False
        for code, line in _st_proc_literals(tree):
            if code not in declared:
                undeclared_sent = True
                yield py_ctx.finding(
                    line,
                    f"{SOA_PATH}:{line} remaps st.proc to {code} but "
                    f"{C_PATH} declares no PROC_* define with that "
                    f"value", symbol=f"proc:{code}")
        batched_ctx = project.module(BATCHED_PATH)
        if batched_ctx is not None and not undeclared_sent:
            # (skipped after an undeclared-code finding: one renumber
            # would otherwise cascade into a second, mirror finding)
            try:
                batched_codes = {code for code, _line
                                 in _self_proc_literals(batched_ctx.tree)}
            except SyntaxError:
                batched_codes = set()
            soa_codes = {code for code, _line in _st_proc_literals(tree)}
            if batched_codes:
                for cname, define in sorted(proc_defines.items()):
                    if define.int_value() not in batched_codes | soa_codes:
                        yield py_ctx.finding(
                            1,
                            f"{C_PATH}:{define.line} declares {cname} = "
                            f"{define.int_value()} but no Python proc "
                            f"encoding ({BATCHED_PATH} _proc or "
                            f"{SOA_PATH} st.proc) ever sends that code",
                            symbol=f"proc:{cname}")

    # 4. the ABI probe regex must still find the C declaration
    abi = unit.defines.get("SOA_ABI_VERSION")
    kernel_ctx = project.module(KERNEL_PATH)
    if abi is None or abi.int_value() is None:
        yield c_ctx.finding(
            1, f"#define SOA_ABI_VERSION not found (or not an integer) "
               f"in {C_PATH} — {KERNEL_PATH} cannot verify the ABI",
            symbol="abi:define")
    elif kernel_ctx is not None \
            and "SOA_ABI_VERSION" not in kernel_ctx.source:
        yield project.finding(
            KERNEL_PATH, 1,
            f"{KERNEL_PATH} never mentions SOA_ABI_VERSION, so it "
            f"cannot extract the expected ABI from {C_PATH}:{abi.line}",
            symbol="abi:probe")

    # 5. the struct magic encodes the ABI version in its low byte
    #    (ASCII "SOA<v>"), so bumping the version without bumping the
    #    magic — or vice versa — leaves a stale runtime guard: an old
    #    cached .so would pass the magic check against a new mirror
    magic = unit.defines.get("SOA_MAGIC")
    if abi is not None and abi.int_value() is not None \
            and magic is not None and magic.int_value() is not None:
        expected_low = 0x30 + abi.int_value()
        if (magic.int_value() & 0xFF) != expected_low:
            yield c_ctx.finding(
                magic.line,
                f"ABI/magic skew: {C_PATH}:{abi.line} SOA_ABI_VERSION = "
                f"{abi.int_value()} but {C_PATH}:{magic.line} SOA_MAGIC = "
                f"{magic.int_value():#x} does not end in ASCII "
                f"{chr(expected_low)!r} — the layout guard no longer "
                f"tracks the ABI generation", symbol="abi:magic-sync")
