"""``cache-key``: every config field and sweep axis reaches the key.

The content-addressed result cache aliases two jobs exactly when their
keys match, so a config field missing from the key is a silent
wrong-result hazard (job A's stats resurface for a semantically
different job B).  Two checks:

* **SweepJob coverage (interprocedural AST)** — every dataclass field
  of ``SweepJob`` must be read as ``self.<field>`` somewhere in
  ``cache_key``'s *call tree*: the method itself, any ``self.helper()``
  it calls transitively, or any module-level helper the job is passed
  to (taint via :func:`repro.analysis.dataflow.
  transitive_self_attribute_loads`, so refactoring the key payload
  into helpers cannot produce false positives).  Axes applied via
  ``config.with_`` ride on the config hash.  ``tags`` is the one
  documented exemption: caller-owned display labels, never semantic.
  ``engine`` must be *referenced* but deliberately maps through
  :func:`repro.accel.engine.engine_cache_token`, so verified-equivalent
  engines share entries — reference presence, not value sensitivity,
  is what this check asserts for it.
* **AcceleratorConfig coverage (semantic)** — for every dataclass
  field, a single-field perturbation must change ``config_hash()`` and
  the field must appear in ``to_dict()``.  This is checked by
  *executing* the real class (validation bypassed via
  ``object.__new__``, so structurally-constrained fields can still be
  perturbed one at a time), which keeps the check honest even if the
  implementation switches from the ``dataclasses.fields`` idiom to a
  hand-written dict.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import (
    dataclass_field_names,
    find_class,
    find_method,
)
from repro.analysis.dataflow import transitive_self_attribute_loads
from repro.analysis.registry import rule

_JOBS_PATH = "src/repro/sweep/jobs.py"
_CONFIG_PATH = "src/repro/accel/config.py"

#: SweepJob fields that legitimately stay out of the cache key.
EXEMPT_SWEEPJOB_FIELDS = {
    "tags": "caller-owned display labels, never semantic",
}


@rule("cache-key", scope="project", description=(
    "cache-key completeness: every AcceleratorConfig field must perturb "
    "config_hash()/appear in to_dict(), and every SweepJob axis must "
    "reach SweepJob.cache_key (cache-aliasing hazard otherwise)"))
def check(project):
    yield from _check_sweepjob(project)
    yield from _check_config(project)


# ----------------------------------------------------------------------

def _check_sweepjob(project):
    ctx = project.module(_JOBS_PATH)
    if ctx is None:
        yield project.finding(_JOBS_PATH, 0,
                              "sweep job module not found; cannot verify "
                              "cache-key coverage", symbol="missing-jobs")
        return
    cls = find_class(ctx.tree, "SweepJob")
    if cls is None:
        yield ctx.finding(0, "class SweepJob not found in jobs module",
                          symbol="missing-SweepJob")
        return
    method = find_method(cls, "cache_key")
    if method is None:
        yield ctx.finding(cls.lineno, "SweepJob has no cache_key method",
                          symbol="missing-cache_key")
        return
    referenced = transitive_self_attribute_loads(ctx.tree, cls, method)
    for name, lineno in dataclass_field_names(cls):
        if name in EXEMPT_SWEEPJOB_FIELDS or name in referenced:
            continue
        yield ctx.finding(
            lineno,
            f"SweepJob field {name!r} never reaches cache_key (searched "
            f"the whole call tree: helper methods and module-level "
            f"helpers the job is passed to) — two jobs differing only "
            f"in {name!r} would alias one cache entry; add it to the "
            f"key payload (or document the exemption in the cache-key "
            f"rule)",
            symbol=f"SweepJob.{name}")


# ----------------------------------------------------------------------

def _perturbed(value):
    """A same-JSON-type value guaranteed to differ from ``value``."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.5
    if isinstance(value, str):
        return value + "·lint"
    if isinstance(value, dict):
        return {**value, "·lint": 1}
    if isinstance(value, (list, tuple)):
        return type(value)([*value, 1])
    if value is None:
        return 1
    return str(value) + "·lint"


def _clone_with(config_cls, fields, base, override_name=None):
    """An instance with one field perturbed, ``__post_init__`` bypassed.

    Bypassing validation is the point: it lets structurally-entangled
    fields (e.g. channel counts constrained to powers of the radix)
    vary one at a time, which is exactly the aliasing question the
    cache key must answer.
    """
    clone = object.__new__(config_cls)
    for f in fields:
        value = getattr(base, f.name)
        if f.name == override_name:
            value = _perturbed(value)
        object.__setattr__(clone, f.name, value)
    return clone


def _check_config(project):
    import dataclasses

    ctx = project.module(_CONFIG_PATH)
    hash_line = 0
    if ctx is not None:
        cls_node = find_class(ctx.tree, "AcceleratorConfig")
        method = find_method(cls_node, "config_hash") if cls_node else None
        hash_line = method.lineno if method is not None else 0

    try:
        from repro.accel.config import AcceleratorConfig
        base = AcceleratorConfig()
        fields = dataclasses.fields(AcceleratorConfig)
        base_dict = base.to_dict()
        base_hash = base.config_hash()
    except Exception as exc:
        # a semantic rule must degrade to a finding, not a crash
        yield project.finding(
            _CONFIG_PATH, 0,
            f"cannot execute AcceleratorConfig coverage check: {exc!r}",
            symbol="config-import")
        return

    for f in fields:
        if f.name not in base_dict:
            yield project.finding(
                _CONFIG_PATH, hash_line,
                f"AcceleratorConfig.to_dict() omits field {f.name!r} — "
                f"cached stats would not round-trip it",
                symbol=f"to_dict.{f.name}")
            continue
        variant = _clone_with(AcceleratorConfig, fields, base, f.name)
        if variant.config_hash() == base_hash:
            yield project.finding(
                _CONFIG_PATH, hash_line,
                f"AcceleratorConfig.config_hash() is blind to field "
                f"{f.name!r} — two configs differing only in {f.name!r} "
                f"alias the same cache entries",
                symbol=f"config_hash.{f.name}")
