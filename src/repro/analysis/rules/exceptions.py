"""``exception-hygiene``: error flow in the simulation core.

Two hazards, one rule:

* **bare/broad excepts** — ``except:`` or ``except Exception:`` in
  engine code can swallow the very invariant violations
  (:class:`~repro.errors.SimulationError`) the simulator raises to
  refuse producing wrong stats.  A broad except whose handler
  re-raises (cleanup-only) is allowed; a bare ``except:`` never is
  (it also catches ``KeyboardInterrupt``).
* **foreign raises** — deliberate errors must derive from
  :mod:`repro.errors`, so callers can catch library failures without
  swallowing genuine bugs.  Raising a *builtin* exception class
  directly is flagged (``NotImplementedError`` excepted — it is the
  conventional abstract-method marker).  Dual-inheritance shims like
  :class:`~repro.errors.FifoOverflowError` satisfy both worlds.
"""

from __future__ import annotations

import ast
import builtins

from repro.analysis.astutils import dotted_name
from repro.analysis.registry import rule
from repro.analysis.rules.state import CORE_DIRS

#: Builtin exception class names (computed, so new Python versions are
#: covered automatically).
_BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException))

#: Builtins that stay acceptable to raise directly.
_ALLOWED_BUILTINS = frozenset({"NotImplementedError", "StopIteration"})

_BROAD = ("Exception", "BaseException")


def _broad_names(handler_type: ast.AST | None) -> list[str]:
    """The broad class names an except clause catches."""
    if handler_type is None:
        return []
    nodes = handler_type.elts if isinstance(handler_type, ast.Tuple) \
        else [handler_type]
    return [dotted_name(n) for n in nodes if dotted_name(n) in _BROAD]


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a bare ``raise``."""
    return any(isinstance(node, ast.Raise) and node.exc is None
               for node in ast.walk(handler))


@rule("exception-hygiene", scope="module", dirs=CORE_DIRS, description=(
    "no bare/broad excepts in engine code (cleanup-reraise allowed), "
    "and deliberately raised errors must derive from repro.errors"))
def check(ctx):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                yield ctx.finding(
                    node.lineno,
                    "bare except: catches everything including "
                    "KeyboardInterrupt and the simulator's own "
                    "invariant errors; name the exceptions",
                    symbol="bare-except")
            else:
                for name in _broad_names(node.type):
                    if not _reraises(node):
                        yield ctx.finding(
                            node.lineno,
                            f"except {name}: swallows SimulationError "
                            f"invariant violations; catch specific "
                            f"exceptions (a cleanup handler must "
                            f"re-raise)",
                            symbol=f"broad-except.{name}")
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = dotted_name(exc.func if isinstance(exc, ast.Call) else exc)
            if name in _BUILTIN_EXCEPTIONS \
                    and name not in _ALLOWED_BUILTINS:
                yield ctx.finding(
                    node.lineno,
                    f"raise {name}: engine errors must derive from "
                    f"repro.errors (so callers can catch library "
                    f"failures without masking real bugs); use or add "
                    f"a ReproError subclass — dual-inherit the builtin "
                    f"if callers rely on it (see FifoOverflowError)",
                    symbol=f"raise.{name}")
