"""Fork-safety rules for the multiprocessing sweep layer.

``repro sweep`` forks worker processes (``pool.imap_unordered``) that
share one result-cache directory and, under the fork start method, a
copy-on-write snapshot of every module.  Three rule families guard the
hazards that creates:

* ``fork-shared-state`` — module-level mutable state mutated by code
  *reachable from a worker entry point* (interprocedurally, over the
  project call graph).  Each forked worker mutates its own copy, so
  writes are silently lost across processes — correct only when the
  state is a per-process cache whose misses are recomputed, which is
  exactly what a baseline justification must say.
* ``fork-atomic-write`` — write-mode ``open(...)`` / ``write_text``
  calls in the sweep layer that bypass ``repro.sweep.atomic``: two
  racing workers interleave or tear the file.  ``atomic.py`` itself is
  the blessed implementation and exempt.
* ``fork-capture`` — locks, conditions or file handles bound at module
  level in the sweep layer.  A fork snapshots the lock state (a lock
  held during the fork deadlocks every child) and duplicates file
  descriptors (children interleave writes on a shared offset).

All three under-approximate via the call graph / AST: they flag only
flows the resolver can prove, never speculation.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import dotted_name, is_mutable_container
from repro.analysis.context import ModuleContext, Project
from repro.analysis.registry import rule

SWEEP_DIR = "src/repro/sweep"

#: The blessed atomic-write module (exempt from fork-atomic-write).
ATOMIC_PATH = "src/repro/sweep/atomic.py"

#: ``open`` mode characters that write.
_WRITE_MODES = frozenset("wax+")

#: Constructors whose results must not be bound at module level in
#: forked code (lock state / fd offsets are snapshotted by fork).
_CAPTURE_CTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "open",
})


# ----------------------------------------------------------------------
# fork-shared-state
# ----------------------------------------------------------------------

def _mutable_module_names(ctx: ModuleContext) -> dict[str, int]:
    """Module-level names bound to mutable containers: name -> line."""
    from repro.analysis.astutils import (assign_targets,
                                         module_level_statements)
    out: dict[str, int] = {}
    for stmt in module_level_statements(ctx.tree):
        for name, value, lineno in assign_targets(stmt):
            if value is not None and is_mutable_container(value):
                out.setdefault(name, lineno)
    return out


@rule("fork-shared-state", scope="project",
      description="mutable module state must not be mutated by code "
                  "reachable from a multiprocessing worker entry point")
def check_fork_shared_state(project: Project):
    from repro.analysis.dataflow import (fork_entry_points,
                                         module_global_mutations)
    sweep_modules = project.modules(under=(SWEEP_DIR,))
    if not sweep_modules:
        return
    graph = project.callgraph()
    entries = []
    for ctx in sweep_modules:
        try:
            entries.extend(fork_entry_points(graph, ctx))
        except SyntaxError:
            continue
    if not entries:
        return
    reach_by_entry = [(entry, graph.reachable([entry.worker]))
                      for entry in entries]
    reachable = set().union(*(r for _e, r in reach_by_entry))
    by_module: dict[str, set[str]] = {}
    for relpath, qualname in reachable:
        by_module.setdefault(relpath, set()).add(qualname)
    reported: set[tuple[str, str]] = set()
    for relpath, qualnames in sorted(by_module.items()):
        ctx = project.module(relpath)
        if ctx is None:
            continue
        try:
            mutables = _mutable_module_names(ctx)
            mutations = module_global_mutations(ctx)
        except SyntaxError:
            continue
        for mutation in mutations:
            if mutation.function not in qualnames:
                continue
            if mutation.name not in mutables:
                continue
            if (relpath, mutation.name) in reported:
                continue
            reported.add((relpath, mutation.name))
            # name the dispatch site that makes this a worker-side write
            key = (relpath, mutation.function)
            entry = next((e for e, reach in reach_by_entry
                          if key in reach), None)
            via = ""
            if entry is not None:
                via = (f"; workers enter via {entry.dispatcher} at "
                       f"{entry.caller[0]}:{entry.line}")
            yield ctx.finding(
                mutation.line,
                f"module state {mutation.name!r} (defined "
                f"{relpath}:{mutables[mutation.name]}) is mutated by "
                f"{mutation.function}() ({mutation.how}), which runs "
                f"inside forked workers{via} — per-process copies "
                f"diverge silently", symbol=mutation.name)


# ----------------------------------------------------------------------
# fork-atomic-write
# ----------------------------------------------------------------------

def _write_mode(call: ast.Call) -> str | None:
    """The mode string of an ``open``-style call when it writes."""
    mode_node = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if isinstance(mode_node, ast.Constant) \
            and isinstance(mode_node.value, str) \
            and set(mode_node.value) & _WRITE_MODES:
        return mode_node.value
    return None


@rule("fork-atomic-write", dirs=(SWEEP_DIR,),
      description="sweep-layer file writes must route through "
                  "repro.sweep.atomic (temp + fsync + os.replace)")
def check_fork_atomic_write(ctx: ModuleContext):
    if ctx.relpath == ATOMIC_PATH:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name == "open" or name.endswith(".open"):
            mode = _write_mode(node)
            if mode is not None:
                yield ctx.finding(
                    node.lineno,
                    f"direct open(..., {mode!r}) in the sweep layer — "
                    f"racing workers can interleave or tear the file; "
                    f"use repro.sweep.atomic instead",
                    symbol=f"open:{mode}")
        elif name.endswith(".write_text") or name.endswith(".write_bytes"):
            yield ctx.finding(
                node.lineno,
                f"direct {name.rsplit('.', 1)[1]}() in the sweep layer "
                f"is not atomic — a reader can observe a torn file; "
                f"use repro.sweep.atomic instead",
                symbol=name.rsplit(".", 1)[1])


# ----------------------------------------------------------------------
# fork-capture
# ----------------------------------------------------------------------

@rule("fork-capture", dirs=(SWEEP_DIR,),
      description="locks and file handles must not be bound at module "
                  "level in forked code (fork snapshots their state)")
def check_fork_capture(ctx: ModuleContext):
    from repro.analysis.astutils import (assign_targets,
                                         module_level_statements)
    for stmt in module_level_statements(ctx.tree):
        for name, value, lineno in assign_targets(stmt):
            if not isinstance(value, ast.Call):
                continue
            ctor = dotted_name(value.func).rsplit(".", 1)[-1]
            if ctor in _CAPTURE_CTORS:
                what = ("file handle" if ctor == "open"
                        else f"{ctor.lower()}")
                yield ctx.finding(
                    lineno,
                    f"module-level {what} {name!r} is captured by "
                    f"fork: children inherit its state (held locks "
                    f"deadlock; shared descriptors interleave) — "
                    f"create it per process or pass it explicitly",
                    symbol=name)
