"""Determinism hygiene: the byte-identical SimStats contract's enemies.

Three rules, because the fixes differ:

* ``set-iteration`` — iterating a ``set``/``frozenset`` yields an
  order that depends on insertion history and (for strings) per-process
  hash randomization.  Any such order feeding stats, counters, record
  queues or cache keys breaks run-to-run byte-identity.  Iterate a
  list, or wrap in ``sorted(...)``.  (Plain ``dict`` iteration is
  insertion-ordered since 3.7 and is *not* flagged.)
* ``id-key`` — ``id()`` values are allocation addresses: stable within
  a run, different across runs.  Keying any container or cache off
  them makes behavior replay-dependent.
* ``nondeterministic-call`` — wall-clock reads and unseeded global RNG
  draws inside the simulation core.  Timing belongs in the sweep layer
  (where ``wall_seconds`` is volatile-by-design provenance, excluded
  from cache keys); randomness belongs behind an explicit seed
  (``numpy.random.default_rng(seed)`` is fine and not flagged).
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import call_name, is_setish
from repro.analysis.registry import rule
from repro.analysis.rules.state import CORE_DIRS

#: Determinism scope for container-order hazards: the simulation core
#: plus the sweep layer (cache keys and job planning live there).
ORDER_DIRS = CORE_DIRS + ("src/repro/sweep",)

#: Wrapper callables that materialize their first argument's iteration
#: order.  ``sorted(set(...))`` is safe and never reaches this check:
#: the setish expression is ``sorted``'s argument, which is exempt.
_ORDER_SINKS = ("list", "tuple", "enumerate", "iter", "map", "filter")

#: Callee dotted-name prefixes that read the wall clock or draw from a
#: process-global RNG.  ``numpy.random.default_rng`` / ``Generator`` /
#: ``SeedSequence`` are explicitly seeded constructions and exempt.
_CLOCK_CALLS = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "datetime.now", "datetime.utcnow",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
)
_RANDOM_PREFIXES = ("random.", "secrets.", "np.random.", "numpy.random.")
_SEEDED_RANDOM = ("np.random.default_rng", "numpy.random.default_rng",
                  "np.random.Generator", "numpy.random.Generator",
                  "np.random.SeedSequence", "numpy.random.SeedSequence")


@rule("set-iteration", scope="module", dirs=ORDER_DIRS, description=(
    "iteration over a set/frozenset — unordered, and hash-randomized "
    "for strings; any consumer feeding stats or cache keys loses "
    "byte-identity (iterate a list or wrap in sorted())"))
def check_set_iteration(ctx):
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and is_setish(node.iter):
            yield _set_finding(ctx, node.iter, "for-loop")
        elif isinstance(node, ast.comprehension) and is_setish(node.iter):
            yield _set_finding(ctx, node.iter, "comprehension")
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name in _ORDER_SINKS and node.args \
                    and is_setish(node.args[0]):
                yield _set_finding(ctx, node.args[0], f"{name}()")
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr == "join" and node.args
                  and is_setish(node.args[0])):
                yield _set_finding(ctx, node.args[0], "str.join()")


def _set_finding(ctx, node, sink):
    return ctx.finding(
        node.lineno,
        f"set iteration order reaches a {sink}; sets are unordered "
        f"(and hash-randomized for str elements) — iterate a list or "
        f"wrap in sorted()",
        symbol=f"set-iter@{sink}")


@rule("id-key", scope="module", dirs=ORDER_DIRS, description=(
    "id() call — allocation addresses differ across runs, so any "
    "container or cache keyed off them is replay-dependent"))
def check_id_key(ctx):
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "id" and len(node.args) == 1):
            yield ctx.finding(
                node.lineno,
                "id() yields an allocation address (stable within a run, "
                "different across runs); key off a stable identity "
                "instead (an index, a name, a content fingerprint)",
                symbol="id-call")


@rule("nondeterministic-call", scope="module", dirs=CORE_DIRS, description=(
    "wall-clock or unseeded-RNG call in the simulation core; timing "
    "belongs in the sweep layer, randomness behind an explicit seed"))
def check_nondeterministic_call(ctx):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            yield ctx.finding(
                node.lineno,
                "from random import ... binds the process-global unseeded "
                "RNG; use numpy.random.default_rng(seed) or random.Random("
                "seed) instead",
                symbol="import-random")
            continue
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if not name or name in _SEEDED_RANDOM:
            continue
        if name in _CLOCK_CALLS:
            yield ctx.finding(
                node.lineno,
                f"{name}() reads the wall clock inside the simulation "
                f"core; cycle results must not depend on host time — "
                f"measure in the sweep layer (volatile provenance) instead",
                symbol=name)
        elif name.startswith(_RANDOM_PREFIXES):
            yield ctx.finding(
                node.lineno,
                f"{name}() draws from a process-global unseeded RNG; use "
                f"an explicitly seeded generator "
                f"(numpy.random.default_rng(seed), random.Random(seed))",
                symbol=name)
