"""``telemetry-reset``: every FFWD_TELEMETRY key is zeroed at run start.

``FFWD_TELEMETRY`` is the one blessed piece of module-level mutable
state (baselined under the ``module-state`` rule): a process-wide
fast-forward diagnostics dict.  Its discipline — the reason it is safe
— is that :class:`BatchedEngine` zeroes **every** key at the start of
every run, so two back-to-back simulations never leak counters into
each other.  PR 5 fixed exactly that leak once; this rule keeps it
fixed mechanically:

* every string key written anywhere in the engine package
  (``FFWD_TELEMETRY["k"] += ...``) must appear in the initializer dict
  literal in ``registry.py`` — the reset loop iterates the live dict,
  so initializer membership *is* reset coverage;
* ``batched.py`` must actually call ``reset_ffwd_telemetry()``.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import assign_targets, call_name
from repro.analysis.registry import rule

_ENGINE_DIR = "src/repro/accel/engine"
_REGISTRY_PATH = f"{_ENGINE_DIR}/registry.py"
_BATCHED_PATH = f"{_ENGINE_DIR}/batched.py"
_NAME = "FFWD_TELEMETRY"


def _is_telemetry(node: ast.AST) -> bool:
    """``FFWD_TELEMETRY`` or ``<anything>.FFWD_TELEMETRY``."""
    return (isinstance(node, ast.Name) and node.id == _NAME) or \
        (isinstance(node, ast.Attribute) and node.attr == _NAME)


def _declared_keys(tree: ast.Module) -> set[str] | None:
    """Keys of the dict literal bound to FFWD_TELEMETRY, or None."""
    for stmt in tree.body:
        for name, value, _lineno in assign_targets(stmt):
            if name == _NAME and isinstance(value, ast.Dict):
                return {k.value for k in value.keys
                        if isinstance(k, ast.Constant)
                        and isinstance(k.value, str)}
    return None


def _written_keys(tree: ast.Module):
    """``(key, lineno)`` for every subscript store into FFWD_TELEMETRY."""
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.AugAssign):
            target = node.target
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        if (isinstance(target, ast.Subscript)
                and _is_telemetry(target.value)
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)):
            yield target.slice.value, node.lineno


@rule("telemetry-reset", scope="project", description=(
    "every key ever written into FFWD_TELEMETRY must appear in the "
    "registry initializer (= be zeroed by the engine-run-start reset), "
    "and BatchedEngine must invoke that reset"))
def check(project):
    registry = project.module(_REGISTRY_PATH)
    if registry is None:
        yield project.finding(_REGISTRY_PATH, 0,
                              "engine registry module not found",
                              symbol="missing-registry")
        return
    declared = _declared_keys(registry.tree)
    if declared is None:
        yield registry.finding(
            0, f"no dict-literal initializer for {_NAME} found in the "
               f"registry; the reset loop has nothing to zero",
            symbol="missing-initializer")
        return

    for ctx in project.modules(under=(_ENGINE_DIR,)):
        for key, lineno in _written_keys(ctx.tree):
            if key not in declared:
                yield ctx.finding(
                    lineno,
                    f"{_NAME}[{key!r}] is written here but missing from "
                    f"the registry initializer — the run-start reset "
                    f"will not zero it, so it leaks across runs "
                    f"(the PR 5 bug class)",
                    symbol=f"key.{key}")

    batched = project.module(_BATCHED_PATH)
    if batched is None:
        yield project.finding(_BATCHED_PATH, 0,
                              "batched engine module not found",
                              symbol="missing-batched")
        return
    resets = [node for node in ast.walk(batched.tree)
              if isinstance(node, ast.Call)
              and call_name(node).rsplit(".", 1)[-1] == "reset_ffwd_telemetry"]
    if not resets:
        yield batched.finding(
            0, "BatchedEngine never calls reset_ffwd_telemetry(); "
               "telemetry from a previous run leaks into the next one",
            symbol="missing-reset-call")
