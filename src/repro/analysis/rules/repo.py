"""Refolded repo guards: one analysis entry point for CI.

These three checks predate the rule framework as standalone scripts
(``check_no_bytecode.py``, ``check_cli_docs.py``,
``check_bench_history.py``).  The logic now lives here (and in
:mod:`repro.analysis.history`); the scripts remain as thin shims for
direct/parameterized invocation, and ``repro lint`` runs everything.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path

from repro.analysis.registry import rule

# ----------------------------------------------------------------------
# no-bytecode — tracked __pycache__/.pyc artifacts (commit 14fb013 bug)
# ----------------------------------------------------------------------

def bytecode_paths(paths: list[str]) -> list[str]:
    """The subset of ``paths`` that is compiled-bytecode artifacts."""
    return [p for p in paths
            if p.endswith((".pyc", ".pyo")) or "__pycache__" in p.split("/")]


def tracked_files(root: str | Path) -> list[str] | None:
    """``git ls-files`` of ``root`` (None when git is unusable here)."""
    try:
        out = subprocess.run(["git", "ls-files"], cwd=str(root), check=True,
                             capture_output=True, text=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    return out.stdout.splitlines()


@rule("no-bytecode", scope="project", description=(
    "no compiled Python bytecode (__pycache__/.pyc/.pyo) tracked by "
    "git — build artifacts go stale the moment the source changes"))
def check_no_bytecode(project):
    paths = tracked_files(project.root)
    if paths is None:
        # not a git checkout (e.g. a source tarball): nothing to check
        return
    for path in bytecode_paths(paths):
        yield project.finding(
            path, 0,
            "compiled bytecode is tracked by git; run "
            "`git rm --cached` on it (it is .gitignore'd)",
            symbol="tracked-bytecode")


# ----------------------------------------------------------------------
# cli-docs — docs/cli.md vs the real parser, both directions
# ----------------------------------------------------------------------

_DOCS_PATH = "docs/cli.md"
_SUBCOMMAND_RE = re.compile(r"`(?:python -m )?repro ([a-z][a-z0-9-]*)")


def documented_subcommands(text: str) -> set[str]:
    """Subcommand names docs/cli.md mentions as ``repro <word>``."""
    return set(_SUBCOMMAND_RE.findall(text))


def actual_subcommands() -> set[str]:
    """Subcommand names the real parser defines (and sanity-checks
    that ``--help`` mentions each one)."""
    from repro.cli import build_parser
    parser = build_parser()
    help_text = parser.format_help()
    names: set[str] = set()
    for action in parser._subparsers._group_actions:      # argparse internals,
        names.update(action.choices)                      # stable since 2.7
    missing_from_help = {n for n in names if n not in help_text}
    if missing_from_help:
        raise AssertionError(
            f"parser defines {sorted(missing_from_help)} but --help "
            "does not mention them")
    return names


@rule("cli-docs", scope="project", description=(
    "docs/cli.md and the real CLI must agree: every documented "
    "subcommand exists, every subcommand is documented"))
def check_cli_docs(project):
    doc_path = project.root / _DOCS_PATH
    try:
        documented = documented_subcommands(
            doc_path.read_text(encoding="utf-8"))
    except OSError:
        yield project.finding(_DOCS_PATH, 0, "docs/cli.md is missing",
                              symbol="missing-docs")
        return
    actual = actual_subcommands()
    for name in sorted(documented - actual):
        yield project.finding(
            _DOCS_PATH, 0,
            f"docs/cli.md documents `repro {name}` but the CLI has no "
            f"such subcommand",
            symbol=f"doc-only.{name}")
    for name in sorted(actual - documented):
        yield project.finding(
            _DOCS_PATH, 0,
            f"subcommand `repro {name}` is not documented in docs/cli.md",
            symbol=f"undocumented.{name}")


# ----------------------------------------------------------------------
# lint-docs — docs/linting.md carries the current generated catalog
# ----------------------------------------------------------------------

_LINTING_DOCS_PATH = "docs/linting.md"


@rule("lint-docs", scope="project", description=(
    "docs/linting.md must embed the current generated rule catalog "
    "between the rule-catalog markers (refresh with "
    "`repro lint --catalog`)"))
def check_lint_docs(project):
    from repro.analysis.registry import (
        CATALOG_BEGIN,
        CATALOG_END,
        rule_catalog_markdown,
    )

    doc_path = project.root / _LINTING_DOCS_PATH
    try:
        text = doc_path.read_text(encoding="utf-8")
    except OSError:
        # fixture repos legitimately have no docs tree; only a repo
        # that *has* linting docs must keep them current
        return
    if CATALOG_BEGIN not in text or CATALOG_END not in text:
        yield project.finding(
            _LINTING_DOCS_PATH, 0,
            f"docs/linting.md has no rule-catalog markers; add "
            f"{CATALOG_BEGIN!r} ... {CATALOG_END!r} and paste the "
            f"output of `repro lint --catalog` between them",
            symbol="catalog-markers")
        return
    begin = text.index(CATALOG_BEGIN) + len(CATALOG_BEGIN)
    end = text.index(CATALOG_END)
    if end < begin:
        yield project.finding(_LINTING_DOCS_PATH, 0,
                              "rule-catalog markers are out of order",
                              symbol="catalog-markers")
        return
    committed = text[begin:end].strip()
    current = rule_catalog_markdown().strip()
    if committed != current:
        line = text[:begin].count("\n") + 1
        yield project.finding(
            _LINTING_DOCS_PATH, line,
            "the generated rule catalog in docs/linting.md is out of "
            "date; re-run `repro lint --catalog` and replace the text "
            "between the markers",
            symbol="catalog-drift")


# ----------------------------------------------------------------------
# bench-history — the committed BENCH trajectory file
# ----------------------------------------------------------------------

_HISTORY_PATH = "benchmarks/results/bench_history.jsonl"


@rule("bench-history", scope="project", description=(
    "the committed BENCH history must parse, satisfy the record "
    "schema, and contain no stats_identical=false record; trajectory "
    "regressions are advisory warnings"))
def check_bench_history(project):
    from repro.analysis import history

    path = project.root / _HISTORY_PATH
    if not path.exists():
        return
    try:
        records = history.load_history(str(path))
    except SystemExit as exc:
        yield project.finding(_HISTORY_PATH, 0, str(exc),
                              symbol="unparseable")
        return
    fatal, warnings = history.check_history(records)
    for message in fatal:
        yield project.finding(_HISTORY_PATH, _lineno(message), message,
                              symbol=f"fatal.{_lineno(message)}")
    for message in warnings:
        # advisory by design: shared CI runners are too noisy for a
        # hard perf floor (docs/performance.md)
        yield project.finding(_HISTORY_PATH, 0, message,
                              symbol="trajectory", severity="warning")


def _lineno(message: str) -> int:
    match = re.match(r"line (\d+):", message)
    return int(match.group(1)) if match else 0
