"""The public-API manifest of the package root (``repro/__init__.py``).

The Session-facade redesign froze the top-level surface into an
explicit ``PACKAGE_EXPORTS`` manifest (name -> defining module),
resolved lazily via PEP 562, with legacy spellings demoted to
deprecation shims in ``_DEPRECATED_EXPORTS``.  The ``api-surface``
rule holds the package root to that design:

* every manifest name must be listed in ``__all__`` and must actually
  exist in its declared module — a typo'd manifest entry would
  otherwise surface as an ``AttributeError`` at first use, not at lint
  time;
* manifest names must **not** also be bound eagerly at module level
  (an eager binding shadows ``__getattr__`` and lets the manifest
  drift from what's actually exported);
* deprecated names stay out of ``__all__`` (star-imports must not
  resurrect them) and their shim targets must resolve too;
* the module must define ``__getattr__``/``__dir__`` — removing the
  PEP 562 machinery would silently strip the whole lazy surface;
* no in-repo module may import a deprecated top-level spelling
  (``from repro import run_sweep``): internal code moves to the
  canonical home immediately, only external callers get the grace
  period.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import module_bound_names
from repro.analysis.registry import rule

_INIT_PATH = "src/repro/__init__.py"

#: Names ``__all__`` may carry beyond the manifest: the eager error
#: surface plus the version/manifest bindings themselves.
_EAGER_OK = ("__version__", "PACKAGE_EXPORTS")


def _manifest_dict(tree: ast.Module, name: str):
    """Keys/values of ``name = MappingProxyType({...})`` (or a plain
    dict literal).  Values are the first string constant per entry —
    the defining module for both manifests."""
    for stmt in tree.body:
        if not (isinstance(stmt, (ast.Assign, ast.AnnAssign))):
            continue
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        if not any(isinstance(t, ast.Name) and t.id == name
                   for t in targets):
            continue
        for node in ast.walk(stmt.value) if stmt.value else ():
            if isinstance(node, ast.Dict):
                entries = {}
                for key, value in zip(node.keys, node.values):
                    if not (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        continue
                    module = next(
                        (n.value for n in ast.walk(value)
                         if isinstance(n, ast.Constant)
                         and isinstance(n.value, str)), None)
                    entries[key.value] = (key.lineno, module)
                return stmt.lineno, entries
        return stmt.lineno, {}
    return 0, None


def _all_entries(tree: ast.Module):
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in stmt.targets) \
                and isinstance(stmt.value, (ast.List, ast.Tuple)):
            entries = {}
            starred_manifests = set()
            for element in stmt.value.elts:
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    entries[element.value] = element.lineno
                elif isinstance(element, ast.Starred) \
                        and isinstance(element.value, ast.Name):
                    starred_manifests.add(element.value.id)
            return stmt.lineno, entries, starred_manifests
    return 0, None, set()


def _module_relpath(module: str) -> tuple[str, str]:
    """Candidate repo paths for a dotted module name."""
    base = "src/" + module.replace(".", "/")
    return f"{base}.py", f"{base}/__init__.py"


def _resolves(project, module: str, name: str) -> bool | None:
    """Does ``module`` bind ``name`` at top level?  None = no module."""
    for relpath in _module_relpath(module):
        ctx = project.module(relpath)
        if ctx is not None:
            return name in module_bound_names(ctx.tree)
    return None


@rule("api-surface", scope="project", description=(
    "repro/__init__ must export exactly its frozen PACKAGE_EXPORTS "
    "manifest via PEP 562: manifest names resolvable in their declared "
    "modules and listed in __all__, deprecated shims out of __all__ "
    "and unused inside the repo"))
def check_api_surface(project):
    ctx = project.module(_INIT_PATH)
    if ctx is None:
        yield project.finding(_INIT_PATH, 0, "package root not found",
                              symbol="missing-init")
        return
    bound = module_bound_names(ctx.tree)
    for hook in ("__getattr__", "__dir__"):
        if hook not in bound:
            yield ctx.finding(
                0, f"package root does not define {hook}() — the lazy "
                   f"PACKAGE_EXPORTS surface needs the PEP 562 hooks",
                symbol=f"hook.{hook}")

    exports_line, exports = _manifest_dict(ctx.tree, "PACKAGE_EXPORTS")
    if exports is None:
        yield ctx.finding(0, "package root does not bind a "
                             "PACKAGE_EXPORTS manifest dict",
                          symbol="no-manifest")
        return
    deprecated_line, deprecated = _manifest_dict(ctx.tree,
                                                 "_DEPRECATED_EXPORTS")
    deprecated = deprecated or {}

    all_line, all_names, starred = _all_entries(ctx.tree)
    if all_names is None:
        yield ctx.finding(0, "package root does not bind __all__",
                          symbol="no-all")
        return
    manifest_in_all = "PACKAGE_EXPORTS" in starred

    for name, (lineno, module) in exports.items():
        if module is None:
            yield ctx.finding(lineno, f"manifest entry {name!r} has no "
                                      f"module string", symbol=f"bad.{name}")
            continue
        found = _resolves(project, module, name)
        if found is None:
            yield ctx.finding(
                lineno, f"manifest maps {name!r} to unknown module "
                        f"{module!r}", symbol=f"module.{name}")
        elif not found:
            yield ctx.finding(
                lineno, f"manifest maps {name!r} to {module!r}, which "
                        f"never binds it — repro.{name} would raise "
                        f"AttributeError at first use",
                symbol=f"unresolved.{name}")
        if name in bound:
            yield ctx.finding(
                lineno, f"manifest name {name!r} is also bound eagerly "
                        f"at module level, shadowing the lazy export",
                symbol=f"eager.{name}")
        if not manifest_in_all and name not in all_names:
            yield ctx.finding(
                all_line, f"manifest name {name!r} is missing from "
                          f"__all__", symbol=f"all-missing.{name}")

    for name, (lineno, module) in deprecated.items():
        if name in all_names:
            yield ctx.finding(
                all_names[name], f"deprecated name {name!r} is listed in "
                                 f"__all__ — shims must not be part of "
                                 f"the supported surface",
                symbol=f"all-deprecated.{name}")
        if name in exports:
            yield ctx.finding(
                lineno, f"{name!r} is both exported and deprecated",
                symbol=f"both.{name}")
        if module is not None and not _resolves(project, module, name):
            yield ctx.finding(
                lineno, f"deprecation shim {name!r} points at {module!r}, "
                        f"which never binds it", symbol=f"shim.{name}")

    for entry, lineno in all_names.items():
        if entry in _EAGER_OK or entry in exports or entry in deprecated:
            continue          # deprecated entries already flagged above
        if entry not in bound:
            yield ctx.finding(
                lineno, f"__all__ names {entry!r} but the module neither "
                        f"binds it nor lists it in PACKAGE_EXPORTS "
                        f"(star-imports would fail)",
                symbol=f"all.{entry}")

    if not deprecated:
        return
    for module_ctx in project.modules():
        if module_ctx.relpath == _INIT_PATH:
            continue
        for stmt in ast.walk(module_ctx.tree):
            if isinstance(stmt, ast.ImportFrom) and stmt.module == "repro" \
                    and stmt.level == 0:
                for alias in stmt.names:
                    if alias.name in deprecated:
                        yield module_ctx.finding(
                            stmt.lineno,
                            f"imports deprecated top-level spelling "
                            f"repro.{alias.name} — use its canonical "
                            f"module (see _DEPRECATED_EXPORTS)",
                            symbol=f"use.{alias.name}")
