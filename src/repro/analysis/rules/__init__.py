"""The rule catalog.  Importing this package registers every rule.

One module per concern, mirroring the invariants they guard:

=================  ====================================================
``state.py``       no module-level mutable state in the simulation core
                   (the PR 3 ``backend.py`` bug class)
``determinism.py`` unordered-set iteration, ``id()`` keys, wall-clock /
                   unseeded-random calls in deterministic code
``cachekey.py``    cache-key completeness: every ``AcceleratorConfig``
                   field and every ``SweepJob`` axis reaches the key
``telemetry.py``   every ``FFWD_TELEMETRY`` key written anywhere is
                   zeroed by the engine-run-start reset
``compat.py``      the ``accel/engine`` re-export surface covers the
                   pre-split monolith; subnetworks implement the
                   tick/arb_key/restore_arb/counter_sites seam
``apisurface.py``  the package root exports exactly its frozen
                   ``PACKAGE_EXPORTS`` manifest (PEP 562 lazy surface,
                   deprecation shims out of ``__all__`` and unused
                   in-repo)
``exceptions.py``  no bare/broad excepts in engine code; raised errors
                   derive from :mod:`repro.errors`
``repo.py``        refolded repo guards: tracked bytecode, docs/cli.md
                   vs the real CLI, the BENCH history gate
``cseam.py``       the C↔Python ABI of the compiled SoA kernel: struct
                   layout, marshalled dtypes, counter slots, kernel ids
``forksafety.py``  multiprocessing hygiene in the sweep layer: shared
                   module state, non-atomic writes, captured handles
=================  ====================================================

``docs/linting.md`` is the human-readable catalog.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    apisurface,
    cachekey,
    compat,
    cseam,
    determinism,
    exceptions,
    forksafety,
    repo,
    state,
    telemetry,
)
