"""``module-state``: no module-level mutable state in the simulation core.

The PR 3 bug class: ``backend.py`` once shared module-level sink lists
across every live simulator of the same back-end width, so one
simulation mutated another's state.  Cycle-exactness and cache
correctness both assume a simulator owns *all* of its state, so in the
simulation core (``accel/``, ``mdp/``, ``hw/``) any module-scope or
class-scope binding of a mutable container is a finding — even an
ALL_CAPS one, because naming a ``dict`` like a constant does not freeze
it.  Fixes, in preference order: make it per-instance; freeze it
(``tuple`` / ``frozenset`` / ``types.MappingProxyType``); or baseline
it with a justification naming the discipline that keeps it safe (the
``FFWD_TELEMETRY`` entry is the worked example — its discipline is
enforced by the ``telemetry-reset`` rule).

Each finding carries *mutation-site evidence* from the dataflow layer:
which functions in the module actually write the container and how.  A
binding nothing mutates reads as "(no in-module mutation sites — "
"likely freezable)", which is the one-line triage hint: those fixes
are a type change, not a redesign.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import (
    assign_targets,
    is_mutable_container,
    module_level_statements,
)
from repro.analysis.dataflow import module_global_mutations
from repro.analysis.registry import rule

#: The simulation core: every byte of state here feeds cycle counts.
CORE_DIRS = ("src/repro/accel", "src/repro/mdp", "src/repro/hw")

#: Conventional module-level names that are written once at import time
#: and treated as frozen by the whole ecosystem.
_EXEMPT_NAMES = frozenset({"__all__"})


@rule("module-state", scope="module", dirs=CORE_DIRS, description=(
    "module- or class-scope mutable container in the simulation core "
    "(shared across simulator instances — the PR 3 backend.py bug class)"))
def check(ctx):
    mutations = _mutation_sites(ctx)
    for stmt in module_level_statements(ctx.tree):
        yield from _bindings(ctx, stmt, mutations, qualifier="")
        if isinstance(stmt, ast.ClassDef):
            for class_stmt in stmt.body:
                yield from _bindings(ctx, class_stmt, mutations,
                                     qualifier=f"{stmt.name}.")


def _mutation_sites(ctx):
    """``{name: [Mutation, ...]}`` for module-level names, site order."""
    sites = {}
    for mutation in module_global_mutations(ctx):
        sites.setdefault(mutation.name, []).append(mutation)
    return sites


def _evidence(name, mutations, qualifier):
    if qualifier:
        # class attributes are written through the class or instance,
        # which the module-global pass deliberately does not model
        return ""
    sites = mutations.get(name, ())
    if not sites:
        return " (no in-module mutation sites — likely freezable)"
    shown = ", ".join(f"{m.function}() at line {m.line} [{m.how}]"
                      for m in sites[:3])
    more = f" and {len(sites) - 3} more" if len(sites) > 3 else ""
    return f" (mutated by {shown}{more})"


def _bindings(ctx, stmt, mutations, qualifier):
    for name, value, lineno in assign_targets(stmt):
        if value is None or name in _EXEMPT_NAMES:
            continue
        kind = is_mutable_container(value)
        if kind is None:
            continue
        where = "class" if qualifier else "module"
        symbol = f"{qualifier}{name}"
        yield ctx.finding(
            lineno,
            f"{where}-level mutable {kind} {symbol!r} is shared across "
            f"every simulator in the process; make it per-instance, "
            f"freeze it (tuple/frozenset/MappingProxyType), or baseline "
            f"it with the discipline that keeps it safe"
            + _evidence(name, mutations, qualifier),
            symbol=symbol)
