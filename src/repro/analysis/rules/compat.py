"""Back-compat surface of the ``accel/engine`` package split.

PR 5 replaced the 1,825-line ``accel/engine.py`` monolith with a
package and promised ``from repro.accel.engine import ...`` keeps
working for every name the monolith bound.  Two rules hold it to that:

* ``engine-compat`` — the package ``__init__`` must re-export the
  frozen manifest of monolith names below (public API plus the
  underscore names the test-suite and perf tooling import), and every
  ``__all__`` entry must actually be bound.
* ``engine-seam`` — the per-subnetwork window/replay machinery keys on
  a structural seam: every subnetwork class (identified by its
  ``kind`` class attribute) must implement ``arb_key`` /
  ``restore_arb`` / ``counter_sites``, plus ``tick`` for the
  frontend/edge stages and ``reduce_sites`` for the propagation
  adapters.  A third engine's subnetworks get checked the moment their
  module carries ``kind``-tagged classes.
* ``engine-registry`` — registering an engine is a three-point
  contract (PR 7 added the third engine, ``soa``, and mechanized it):
  every name in the registry's ``ENGINES`` tuple must carry a
  ``_ENGINE_EQUIVALENCE`` entry (cache keys would ``KeyError``
  without one), at most one engine may rely on ``make_engine``'s
  fallback branch, and stale equivalence entries for unregistered
  engines are rejected.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import (
    class_attr_names,
    class_methods,
    module_bound_names,
)
from repro.analysis.registry import rule

_INIT_PATH = "src/repro/accel/engine/__init__.py"

#: Every top-level name the pre-split ``accel/engine.py`` monolith bound
#: that external code imported (frozen from commit 14fb013: the public
#: surface plus the underscore names tests and the perf probe reach
#: for).  Names may move between submodules freely; they must stay
#: importable from the package root forever.
MONOLITH_EXPORTS = (
    "ENGINES",
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "FFWD_TELEMETRY",
    "reset_ffwd_telemetry",
    "resolve_engine",
    "engine_cache_token",
    "make_engine",
    "ReferenceEngine",
    "BatchedEngine",
    "_EQUIVALENCE_CLASS",
    "_FastMdpNet",
    "_FastRangeNet",
    "_FastXbar",
)

#: Names added to the package surface *after* the split (one entry per
#: engine-growing PR; unlike the frozen monolith manifest, this tuple
#: grows).  PR 7 added the ``soa`` engine's class.
PACKAGE_EXPORTS = (
    "SoaEngine",
)

_REGISTRY_PATH = "src/repro/accel/engine/registry.py"

#: subnetwork module -> methods its ``kind``-tagged classes must have.
SEAM = {
    "src/repro/accel/engine/frontends.py":
        ("tick", "arb_key", "restore_arb", "counter_sites"),
    "src/repro/accel/engine/edgestage.py":
        ("tick", "arb_key", "restore_arb", "counter_sites"),
    "src/repro/accel/engine/propagation.py":
        ("arb_key", "restore_arb", "counter_sites", "reduce_sites"),
}


@rule("engine-compat", scope="project", description=(
    "the accel/engine package __init__ must re-export every name the "
    "pre-split monolith bound (frozen manifest), and every __all__ "
    "entry must be bound"))
def check_exports(project):
    ctx = project.module(_INIT_PATH)
    if ctx is None:
        yield project.finding(_INIT_PATH, 0,
                              "engine package __init__ not found",
                              symbol="missing-init")
        return
    bound = module_bound_names(ctx.tree)
    for name in MONOLITH_EXPORTS:
        if name not in bound:
            yield ctx.finding(
                0, f"pre-split monolith name {name!r} is no longer "
                   f"importable from repro.accel.engine — re-export it "
                   f"(back-compat promise of the PR 5 package split)",
                symbol=f"export.{name}")
    for name in PACKAGE_EXPORTS:
        if name not in bound:
            yield ctx.finding(
                0, f"post-split package name {name!r} is no longer "
                   f"importable from repro.accel.engine — re-export it",
                symbol=f"export.{name}")
    for lineno, entry in _all_entries(ctx.tree):
        if entry not in bound:
            yield ctx.finding(
                lineno, f"__all__ names {entry!r} but the module never "
                        f"binds it (star-imports would fail)",
                symbol=f"all.{entry}")


def _all_entries(tree: ast.Module):
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in stmt.targets) \
                and isinstance(stmt.value, (ast.List, ast.Tuple)):
            for element in stmt.value.elts:
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    yield element.lineno, element.value


@rule("engine-seam", scope="project", description=(
    "every engine subnetwork class (kind-tagged) must implement the "
    "phase-window seam: arb_key/restore_arb/counter_sites plus "
    "tick (front/edge) or reduce_sites (propagation)"))
def check_seam(project):
    for relpath, required in SEAM.items():
        ctx = project.module(relpath)
        if ctx is None:
            yield project.finding(relpath, 0,
                                  "engine subnetwork module not found",
                                  symbol=f"missing.{relpath}")
            continue
        for stmt in ctx.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            if "kind" not in class_attr_names(stmt):
                continue
            methods = class_methods(stmt)
            for method in required:
                if method not in methods:
                    yield ctx.finding(
                        stmt.lineno,
                        f"subnetwork class {stmt.name!r} lacks seam "
                        f"method {method}() — whole-phase windows "
                        f"cannot key, restore or replay it",
                        symbol=f"{stmt.name}.{method}")


def _tuple_assignment(tree: ast.Module, name: str):
    """String elements of ``name = ("...", ...)``, with the lineno."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == name
                        for t in stmt.targets) \
                and isinstance(stmt.value, (ast.Tuple, ast.List)):
            values = [e.value for e in stmt.value.elts
                      if isinstance(e, ast.Constant)
                      and isinstance(e.value, str)]
            return stmt.lineno, values
    return 0, None


def _equivalence_keys(tree: ast.Module):
    """String keys of the ``_ENGINE_EQUIVALENCE`` mapping literal
    (written as ``types.MappingProxyType({...})``)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name)
                        and t.id == "_ENGINE_EQUIVALENCE"
                        for t in node.targets):
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Dict):
                    return node.lineno, [k.value for k in inner.keys
                                         if isinstance(k, ast.Constant)
                                         and isinstance(k.value, str)]
            return node.lineno, []
    return 0, None


def _make_engine_branches(tree: ast.Module):
    """String constants ``make_engine`` compares its argument against."""
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "make_engine":
            return stmt.lineno, sorted({
                node.value for compare in ast.walk(stmt)
                if isinstance(compare, ast.Compare)
                for node in [compare.left, *compare.comparators]
                if isinstance(node, ast.Constant)
                and isinstance(node.value, str)})
    return 0, None


@rule("engine-registry", scope="project", description=(
    "every engine in the registry's ENGINES tuple must carry a "
    "cache-equivalence entry and (all but one fallback) a make_engine "
    "branch; stale equivalence entries are rejected"))
def check_registry(project):
    ctx = project.module(_REGISTRY_PATH)
    if ctx is None:
        yield project.finding(_REGISTRY_PATH, 0,
                              "engine registry module not found",
                              symbol="missing-registry")
        return
    eng_line, engines = _tuple_assignment(ctx.tree, "ENGINES")
    if engines is None:
        yield ctx.finding(0, "registry does not bind an ENGINES tuple "
                             "of string literals", symbol="no-engines")
        return
    equiv_line, equivalence = _equivalence_keys(ctx.tree)
    if equivalence is None:
        yield ctx.finding(0, "registry does not bind _ENGINE_EQUIVALENCE",
                          symbol="no-equivalence")
        return
    for engine in engines:
        if engine not in equivalence:
            yield ctx.finding(
                equiv_line,
                f"engine {engine!r} is registered but has no "
                f"_ENGINE_EQUIVALENCE entry — engine_cache_token() "
                f"would raise for it",
                symbol=f"no-class.{engine}")
    for engine in equivalence:
        if engine not in engines:
            yield ctx.finding(
                equiv_line,
                f"_ENGINE_EQUIVALENCE names unregistered engine "
                f"{engine!r} — stale entry, or the ENGINES tuple "
                f"was not updated",
                symbol=f"stale-class.{engine}")
    make_line, branches = _make_engine_branches(ctx.tree)
    if branches is None:
        yield ctx.finding(0, "registry does not define make_engine()",
                          symbol="no-make-engine")
        return
    unmatched = [e for e in engines if e not in branches]
    if len(unmatched) > 1:
        yield ctx.finding(
            make_line,
            f"make_engine() has no branch for engines {unmatched!r} — "
            f"at most one engine may rely on the fallback return",
            symbol="fallback." + ".".join(unmatched))
