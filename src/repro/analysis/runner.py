"""Rule execution, suppression and reporting for ``repro lint``.

Pipeline: run every selected rule over the project, stamp rule id /
severity onto each finding, drop findings carrying an inline
``# lint: allow=<rule>`` comment, split the remainder into *active*
vs *baselined* against ``lint-baseline.json``, and report stale or
unjustified baseline entries so the grandfather file only ever shrinks.

Exit-code contract (the CI gate): active **error** findings fail;
**warning** findings are advisory unless ``strict``; a clean tree with
a fully-justified baseline exits 0.

Module-scope rules replay from the per-file incremental cache
(:mod:`repro.analysis.cache`) when the file and the analyzer itself are
unchanged; project-scope rules re-run every time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analysis.baseline import (
    BASELINE_NAME,
    TODO_JUSTIFICATION,
    Baseline,
    BaselineEntry,
)
from repro.analysis.context import Project
from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.registry import Rule, select_rules


@dataclass
class LintReport:
    """Everything one ``repro lint`` invocation decided."""

    root: str
    rules_run: list[str]
    findings: list[Finding]                 # active (fail candidates)
    baselined: list[tuple[Finding, BaselineEntry]] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    unjustified: list[BaselineEntry] = field(default_factory=list)
    suppressed_inline: int = 0
    # --update-baseline diff (empty unless an update ran this invocation)
    baseline_added: list[BaselineEntry] = field(default_factory=list)
    baseline_removed: list[BaselineEntry] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self, strict: bool = False) -> int:
        """0 = clean; 1 = findings.  Warnings (including stale or
        TODO-justified baseline entries) fail only under ``strict``."""
        if self.errors:
            return 1
        if strict and (self.warnings or self.stale_baseline
                       or self.unjustified):
            return 1
        return 0

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "rules": self.rules_run,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [
                {**f.to_dict(), "justification": e.justification}
                for f, e in self.baselined],
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "unjustified_baseline": [e.to_dict() for e in self.unjustified],
            "suppressed_inline": self.suppressed_inline,
            "baseline_added": [e.to_dict() for e in self.baseline_added],
            "baseline_removed": [e.to_dict() for e in self.baseline_removed],
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
        }


# ----------------------------------------------------------------------

def _stamp(finding: Finding, rule: Rule) -> Finding:
    """Fill rule id and severity where the check left them empty."""
    severity = finding.severity if finding.severity in SEVERITIES \
        else rule.severity
    return replace(finding, rule=rule.id, severity=severity)


def run_rules(root: str | Path, rule_ids: list[str] | None = None,
              project: Project | None = None,
              cache=None) -> tuple[list[Finding], list[str]]:
    """Run rules and return (raw findings, rule ids run).

    Inline-allow suppression and the baseline are applied by
    :func:`lint`; this layer reports everything, which is what
    ``--update-baseline`` and the fixture tests want.

    ``cache`` (an :class:`repro.analysis.cache.AnalysisCache`) replays
    module-scope results for unchanged files; project-scope rules are
    never cached (they read across files).
    """
    project = project if project is not None else Project(root)
    rules = select_rules(rule_ids)
    findings: list[Finding] = []
    syntax_seen: set[str] = set()
    digests: dict[str, str] = {}
    for rule in rules:
        if rule.scope == "project":
            findings.extend(_stamp(f, rule) for f in rule.check(project))
            continue
        for ctx in project.modules(under=rule.dirs):
            if cache is not None:
                digest = digests.get(ctx.relpath)
                if digest is None:
                    from repro.analysis.cache import content_digest
                    digest = digests[ctx.relpath] = content_digest(ctx.source)
                hit = cache.lookup(ctx.relpath, digest, rule.id)
                if hit is not None:
                    findings.extend(hit)
                    continue
            try:
                ctx.tree
            except SyntaxError as exc:
                if ctx.relpath not in syntax_seen:
                    syntax_seen.add(ctx.relpath)
                    findings.append(Finding(
                        path=ctx.relpath, line=exc.lineno or 0,
                        message=f"syntax error: {exc.msg}",
                        symbol="syntax", rule="syntax", severity="error"))
                continue
            produced = [_stamp(f, rule) for f in rule.check(ctx)]
            findings.extend(produced)
            if cache is not None:
                cache.store(ctx.relpath, digests[ctx.relpath], rule.id,
                            produced)
    return findings, [r.id for r in rules]


def lint(root: str | Path, rule_ids: list[str] | None = None,
         baseline_path: str | Path | None = None,
         update_baseline: bool = False,
         use_cache: bool = True) -> LintReport:
    """The full pipeline behind ``repro lint``."""
    root = Path(root).resolve()
    project = Project(root)
    baseline_path = (Path(baseline_path) if baseline_path is not None
                     else root / BASELINE_NAME)
    baseline = Baseline.load(baseline_path)

    cache = None
    if use_cache:
        from repro.analysis.cache import AnalysisCache
        cache = AnalysisCache.load(root)

    raw, rules_run = run_rules(root, rule_ids, project=project, cache=cache)
    if cache is not None:
        cache.save()

    visible: list[Finding] = []
    suppressed_inline = 0
    for finding in raw:
        if finding.rule in project.allowed_rules(finding.path, finding.line):
            suppressed_inline += 1
        else:
            visible.append(finding)

    baseline_added: list[BaselineEntry] = []
    baseline_removed: list[BaselineEntry] = []
    if update_baseline:
        new_baseline = Baseline.from_findings(visible, previous=baseline)
        if rule_ids is not None:
            # a partial --rule update must not drop other rules' entries
            ran = set(rules_run)
            new_baseline = Baseline(
                new_baseline.entries
                + [e for e in baseline.entries if e.rule not in ran])
        old_keys = {e.key() for e in baseline.entries}
        new_keys = {e.key() for e in new_baseline.entries}
        baseline_added = [e for e in new_baseline.entries
                          if e.key() not in old_keys]
        baseline_removed = [e for e in baseline.entries
                            if e.key() not in new_keys]
        new_baseline.save(baseline_path)
        baseline = new_baseline

    active: list[Finding] = []
    baselined: list[tuple[Finding, BaselineEntry]] = []
    matched: set[tuple[str, str, str]] = set()
    for finding in visible:
        entry = baseline.match(finding)
        if entry is None:
            active.append(finding)
        else:
            matched.add(entry.key())
            baselined.append((finding, entry))

    # a partial --rule run legitimately leaves *other* rules' entries
    # unmatched, so staleness is judged per rule actually run; a full
    # run additionally reports entries naming retired rule ids
    if rule_ids is None:
        stale = baseline.stale(matched)
    else:
        ran = set(rules_run)
        stale = [e for e in baseline.stale(matched) if e.rule in ran]
    unjustified = [e for _, e in baselined
                   if not e.justification
                   or e.justification == TODO_JUSTIFICATION]

    return LintReport(root=str(root), rules_run=rules_run, findings=active,
                      baselined=baselined, stale_baseline=stale,
                      unjustified=unjustified,
                      suppressed_inline=suppressed_inline,
                      baseline_added=baseline_added,
                      baseline_removed=baseline_removed,
                      cache_hits=cache.hits if cache is not None else 0,
                      cache_misses=cache.misses if cache is not None else 0)


# ----------------------------------------------------------------------

def format_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report (the CLI's default output)."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(finding.format())
    if verbose:
        for finding, entry in report.baselined:
            lines.append(f"{finding.format()}  [baselined: "
                         f"{entry.justification or 'no justification'}]")
    for entry in report.stale_baseline:
        lines.append(
            f"{BASELINE_NAME}: warning: stale baseline entry "
            f"[{entry.rule}] {entry.path} :: {entry.symbol} — the finding "
            f"no longer occurs; delete the entry")
    for entry in report.unjustified:
        lines.append(
            f"{BASELINE_NAME}: warning: baseline entry [{entry.rule}] "
            f"{entry.path} :: {entry.symbol} has no real justification — "
            f"explain why it is suppressed")
    for entry in report.baseline_added:
        lines.append(f"{BASELINE_NAME}: added [{entry.rule}] {entry.path} "
                     f":: {entry.symbol} — replace the TODO justification "
                     f"with a real sentence")
    for entry in report.baseline_removed:
        lines.append(f"{BASELINE_NAME}: removed [{entry.rule}] {entry.path} "
                     f":: {entry.symbol} — the finding is gone")
    if report.baseline_added or report.baseline_removed:
        lines.append(f"{BASELINE_NAME}: updated "
                     f"(+{len(report.baseline_added)} "
                     f"-{len(report.baseline_removed)})")
    errors, warnings = report.errors, report.warnings
    lines.append(
        f"repro lint: {len(report.rules_run)} rule(s) over {report.root}: "
        f"{len(errors)} error(s), {len(warnings)} warning(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed_inline} inline-allowed, "
        f"{len(report.stale_baseline)} stale baseline entr"
        f"{'y' if len(report.stale_baseline) == 1 else 'ies'}")
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
