"""BENCH history validation: schema, equivalence gate, trajectory watch.

``benchmarks/results/bench_history.jsonl`` accumulates one JSON record
per ``scripts/perf_probe.py`` run.  The checks live here so the
``bench-history`` lint rule and the standalone
``scripts/check_bench_history.py`` gate share one implementation:

* **schema** — every line must parse and carry the required fields with
  the right types (fatal);
* **equivalence** — ``stats_identical`` must be true on every record: a
  false value means a probe run caught the engines disagreeing, and the
  history then contains evidence of a broken contract (fatal);
* **trajectory** — a newest-record ``speedup`` more than ``tolerance``
  below the best *comparable* record (equal ``scales`` and ``jobs``)
  is an advisory warning: shared CI runners are too noisy for a hard
  perf floor (see ``docs/performance.md``).
"""

from __future__ import annotations

import json

#: required field -> accepted types (bool checked before int: bool is a
#: subclass of int in Python, so isinstance(True, int) would pass)
SCHEMA: dict[str, tuple] = {
    "bench": (str,),
    "utc": (str,),
    "datasets": (list,),
    "algorithms": (list,),
    "scales": (dict,),
    "jobs": (int,),
    "reference_seconds": (int, float),
    "batched_seconds": (int, float),
    "speedup": (int, float),
    "median_job_speedup": (int, float),
    "stats_identical": (bool,),
    "engine_equivalence_class": (str,),
    "python": (str,),
    "machine": (str,),
}

#: optional field -> accepted types (older records predate these; the
#: ``soa`` engine joined the probe after the first records were laid
#: down, so its timings are optional forever)
OPTIONAL_SCHEMA: dict[str, tuple] = {
    "ffwd": (dict,),
    "soa_seconds": (int, float),
    "speedup_soa": (int, float),
    "median_job_speedup_soa": (int, float),
    "pr10_seconds": (int, float),
    "speedup_soa_pr10": (int, float),
}

#: optional numeric fields that must be positive when present
_OPTIONAL_POSITIVE = ("soa_seconds", "speedup_soa", "median_job_speedup_soa",
                      "pr10_seconds", "speedup_soa_pr10")


def validate_record(record: dict, lineno: int) -> list[str]:
    """Return schema violations for one parsed record."""
    errors = []
    for field, types in SCHEMA.items():
        if field not in record:
            errors.append(f"line {lineno}: missing field {field!r}")
        elif field != "stats_identical" and isinstance(record[field], bool) \
                and bool not in types:
            errors.append(f"line {lineno}: field {field!r} must be "
                          f"{'/'.join(t.__name__ for t in types)}, got bool")
        elif not isinstance(record[field], types):
            errors.append(
                f"line {lineno}: field {field!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(record[field]).__name__}")
    for field, types in OPTIONAL_SCHEMA.items():
        if field not in record:
            continue
        if (isinstance(record[field], bool) and bool not in types) \
                or not isinstance(record[field], types):
            errors.append(
                f"line {lineno}: field {field!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(record[field]).__name__}")
    if not errors:
        if record["jobs"] < 1:
            errors.append(f"line {lineno}: jobs must be >= 1")
        for field in ("reference_seconds", "batched_seconds", "speedup",
                      "median_job_speedup"):
            if record[field] <= 0:
                errors.append(f"line {lineno}: {field} must be positive")
        for field in _OPTIONAL_POSITIVE:
            if field in record and record[field] <= 0:
                errors.append(f"line {lineno}: {field} must be positive")
    return errors


def comparability_key(record: dict):
    """Records are comparable when bench, workload size and scales match.

    The probe appends more than one trajectory per run (the fig8 matrix
    and the PageRank x10 record), so the bench name keeps the
    trajectories from being compared against each other.
    """
    return (record["bench"], record["jobs"],
            tuple(sorted(record["scales"].items())))


def check_history(records: list[dict], tolerance: float = 0.2):
    """Run all checks on parsed records.

    Returns ``(fatal_errors, warnings)`` — schema problems and
    ``stats_identical`` violations are fatal, trajectory regressions
    are warnings.
    """
    fatal: list[str] = []
    warnings: list[str] = []
    for i, record in enumerate(records, 1):
        fatal.extend(validate_record(record, i))
    if fatal:
        return fatal, warnings
    for i, record in enumerate(records, 1):
        if not record["stats_identical"]:
            fatal.append(
                f"line {i}: stats_identical is false — the {record['utc']} "
                "probe run caught the engines disagreeing (equivalence "
                "contract broken)")
    if fatal or not records:
        return fatal, warnings
    # one watch per trajectory: the newest record of every bench is
    # compared against the best earlier comparable record of that bench
    # (a probe run appends both a fig8 and a pr10 record, so "the last
    # line" alone would leave the fig8 trajectory unwatched)
    newest_by_bench: dict[str, dict] = {}
    for record in records:
        newest_by_bench[record["bench"]] = record
    for bench, newest in newest_by_bench.items():
        peers = [r for r in records
                 if r is not newest
                 and comparability_key(r) == comparability_key(newest)]
        if not peers:
            continue
        best = max(p["speedup"] for p in peers)
        floor = best * (1.0 - tolerance)
        if newest["speedup"] < floor:
            warnings.append(
                f"trajectory regression: newest {bench} record "
                f"({newest['utc']}) speedup {newest['speedup']:.3f}x is "
                f"more than {tolerance:.0%} below the best comparable "
                f"record ({best:.3f}x over {len(peers)} peer(s))")
    return fatal, warnings


def load_history(path: str) -> list[dict]:
    """Parse one-record-per-line JSON.

    Raises ``SystemExit`` with a ``path:line`` location on malformed
    input — the historical contract of the standalone checker script
    (callers that want an exception catch ``SystemExit``; the
    ``bench-history`` lint rule does).
    """
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"{path}:{lineno}: not valid JSON ({exc})") from exc
            if not isinstance(record, dict):
                raise SystemExit(f"{path}:{lineno}: record is not an object")
            records.append(record)
    return records
