"""Parsed-source contexts handed to rule checks.

:class:`ModuleContext` wraps one source file (text, line table, parsed
AST); :class:`Project` wraps a repository root and memoizes module
contexts so every rule shares one parse per file.  Both expose a
``finding(...)`` helper so rule bodies never touch the
:class:`~repro.analysis.findings.Finding` constructor directly.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.findings import Finding

#: Inline suppression: ``# lint: allow=<rule-id>[,<rule-id>...]`` on the
#: flagged line or the line directly above it.
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow=([A-Za-z0-9_,-]+)")

#: Source tree that module-scope rules walk, relative to the root.
SOURCE_ROOT = "src/repro"


class ModuleContext:
    """One parsed source file."""

    def __init__(self, root: Path, path: Path) -> None:
        self.root = root
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self._tree: ast.Module | None = None

    @property
    def tree(self) -> ast.Module:
        """The parsed AST (raises ``SyntaxError``; the runner reports it)."""
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=self.relpath)
        return self._tree

    def finding(self, line: int, message: str, symbol: str = "",
                severity: str = "") -> Finding:
        return Finding(path=self.relpath, line=line, message=message,
                       symbol=symbol, severity=severity)

    def allowed_rules(self, line: int) -> set[str]:
        """Rule ids suppressed at ``line`` by an inline allow comment."""
        allowed: set[str] = set()
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(self.lines):
                match = _ALLOW_RE.search(self.lines[lineno - 1])
                if match:
                    allowed.update(
                        part.strip() for part in match.group(1).split(","))
        return allowed


class Project:
    """A repository root plus memoized module contexts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).resolve()
        self._modules: dict[str, ModuleContext | None] = {}
        self._callgraph = None

    # ------------------------------------------------------------------
    def module(self, relpath: str) -> ModuleContext | None:
        """The context for one repo-relative file (None if unreadable)."""
        if relpath not in self._modules:
            path = self.root / relpath
            try:
                self._modules[relpath] = ModuleContext(self.root, path)
            except (OSError, UnicodeDecodeError):
                self._modules[relpath] = None
        return self._modules[relpath]

    def modules(self, under: tuple[str, ...] = ()) -> list[ModuleContext]:
        """Every ``.py`` module under ``src/repro`` (sorted, memoized),
        optionally filtered to repo-relative directory prefixes."""
        source_root = self.root / SOURCE_ROOT
        if not source_root.is_dir():
            return []
        contexts = []
        for path in sorted(source_root.rglob("*.py")):
            ctx = self.module(path.relative_to(self.root).as_posix())
            if ctx is None:
                continue
            if under and not ctx.relpath.startswith(under):
                continue
            contexts.append(ctx)
        return contexts

    def callgraph(self):
        """The project call graph, built once per lint run and shared
        by every interprocedural rule (import is lazy: module-only
        lints never pay for the build)."""
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph
            self._callgraph = CallGraph(self)
        return self._callgraph

    def finding(self, relpath: str, line: int, message: str,
                symbol: str = "", severity: str = "") -> Finding:
        return Finding(path=relpath, line=line, message=message,
                       symbol=symbol, severity=severity)

    def allowed_rules(self, relpath: str, line: int) -> set[str]:
        """Inline-allow lookup for any repo file (module cache reused)."""
        if line < 1 or not relpath.endswith(".py"):
            return set()
        ctx = self.module(relpath)
        return ctx.allowed_rules(line) if ctx is not None else set()
