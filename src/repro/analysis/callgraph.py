"""Project call graph for the interprocedural rules.

Builds one static call graph over every module under ``src/repro``:
nodes are functions and methods keyed ``(relpath, qualname)``, edges are
the calls (and bare callable *references* — callbacks handed to pools)
that a shallow but honest resolver can pin to a definition.  Resolution
covers the idioms this codebase actually uses:

* bare calls to module-level functions, same module or imported
  (``from repro.x import f`` / ``import repro.x as m; m.f()``);
* ``self.method()`` inside a class body;
* ``Class.method()`` where ``Class`` is defined or imported;
* a function *named* without being called (``pool.imap_unordered(f,
  jobs)``, ``Process(target=f)``) — recorded in :attr:`CallGraph.refs`
  so fork-reachability can follow worker callbacks.

Anything dynamic (``getattr``, dict-of-callables dispatch, methods on
unknown objects) is deliberately unresolved: the interprocedural rules
under-approximate rather than guess.  The graph is memoized on the
:class:`~repro.analysis.context.Project` (see ``Project.callgraph``
users) so every project-scope rule shares one build per lint run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutils import dotted_name
from repro.analysis.context import ModuleContext, Project, SOURCE_ROOT

#: Node key: (repo-relative path, dotted qualname inside the module).
Key = tuple[str, str]


@dataclass(eq=False)
class FunctionInfo:
    """One function or method definition in the graph."""

    relpath: str
    qualname: str               # "func", "Class.method", "outer.inner"
    node: ast.AST               # FunctionDef | AsyncFunctionDef
    line: int

    @property
    def key(self) -> Key:
        return (self.relpath, self.qualname)

    @property
    def class_name(self) -> str | None:
        return self.qualname.rsplit(".", 1)[0] if "." in self.qualname \
            else None


@dataclass(eq=False)
class ModuleSymbols:
    """What one module binds at top level, for callee resolution."""

    functions: set[str] = field(default_factory=set)
    classes: set[str] = field(default_factory=set)
    #: local name -> module relpath (``import repro.x as m``)
    module_imports: dict[str, str] = field(default_factory=dict)
    #: local name -> (module relpath, symbol) (``from repro.x import f``)
    symbol_imports: dict[str, Key] = field(default_factory=dict)


def _module_relpath(project: Project, dotted: str) -> str | None:
    """``repro.sweep.jobs`` -> ``src/repro/sweep/jobs.py`` (or the
    package ``__init__.py``), None when not a repo module."""
    if not dotted.startswith("repro"):
        return None
    tail = dotted.split(".")[1:]
    base = SOURCE_ROOT + ("/" + "/".join(tail) if tail else "")
    for candidate in (base + ".py", base + "/__init__.py"):
        if (project.root / candidate).is_file():
            return candidate
    return None


def _resolve_relative(ctx: ModuleContext, level: int, module: str) -> str:
    """Absolute dotted path of a ``from ...x import y`` source."""
    # repro/a/b.py and repro/a/__init__.py both live in package repro.a
    package = ctx.relpath[len("src/"):].split("/")[:-1]
    base = package[:len(package) - (level - 1)] if level > 1 else package
    return ".".join(base + ([module] if module else []))


class CallGraph:
    """Static call graph over the project's ``src/repro`` tree."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: dict[Key, FunctionInfo] = {}
        self.calls: dict[Key, set[Key]] = {}
        self.refs: dict[Key, set[Key]] = {}
        self._symbols: dict[str, ModuleSymbols] = {}
        modules = []
        for ctx in project.modules():
            try:
                ctx.tree
            except SyntaxError:
                continue                    # the syntax rule reports it
            modules.append(ctx)
            self._collect_definitions(ctx)
        for ctx in modules:
            self._collect_edges(ctx)

    # ------------------------------------------------------------------
    def _collect_definitions(self, ctx: ModuleContext) -> None:
        symbols = ModuleSymbols()
        self._symbols[ctx.relpath] = symbols
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    target = _module_relpath(self.project, alias.name)
                    if target:
                        local = alias.asname or alias.name.split(".")[0]
                        # ``import repro.sweep.jobs`` binds ``repro``;
                        # only an asname gives a usable direct handle
                        if alias.asname or "." not in alias.name:
                            symbols.module_imports[local] = target
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.level:
                    dotted = _resolve_relative(ctx, stmt.level,
                                               stmt.module or "")
                else:
                    dotted = stmt.module or ""
                source = _module_relpath(self.project, dotted)
                if source is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    submodule = _module_relpath(
                        self.project, f"{dotted}.{alias.name}")
                    if submodule:
                        symbols.module_imports[local] = submodule
                    else:
                        symbols.symbol_imports[local] = (source, alias.name)
        self._walk_definitions(ctx, ctx.tree.body, prefix="",
                               symbols=symbols)

    def _walk_definitions(self, ctx: ModuleContext, body: list[ast.stmt],
                          prefix: str, symbols: ModuleSymbols) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + stmt.name
                info = FunctionInfo(relpath=ctx.relpath, qualname=qualname,
                                    node=stmt, line=stmt.lineno)
                self.functions[info.key] = info
                if not prefix:
                    symbols.functions.add(stmt.name)
                self._walk_definitions(ctx, stmt.body, qualname + ".",
                                       symbols)
            elif isinstance(stmt, ast.ClassDef):
                if not prefix:
                    symbols.classes.add(stmt.name)
                self._walk_definitions(ctx, stmt.body, prefix + stmt.name
                                       + ".", symbols)
            elif isinstance(stmt, (ast.If, ast.Try)):
                self._walk_definitions(ctx, list(ast.iter_child_nodes(stmt)),
                                       prefix, symbols)

    # ------------------------------------------------------------------
    def _collect_edges(self, ctx: ModuleContext) -> None:
        for info in list(self.functions.values()):
            if info.relpath != ctx.relpath:
                continue
            calls = self.calls.setdefault(info.key, set())
            refs = self.refs.setdefault(info.key, set())
            callee_nodes = set()
            for sub in ast.walk(info.node):
                if isinstance(sub, ast.Call):
                    callee_nodes.add(id(sub.func))
                    target = self._resolve(ctx, info, dotted_name(sub.func))
                    if target is not None:
                        calls.add(target)
            # bare references to known functions (callbacks): any name
            # chain that resolves but is not itself a call's callee
            for sub in ast.walk(info.node):
                if isinstance(sub, (ast.Name, ast.Attribute)) \
                        and id(sub) not in callee_nodes \
                        and isinstance(getattr(sub, "ctx", None), ast.Load):
                    target = self._resolve(ctx, info, dotted_name(sub))
                    if target is not None:
                        refs.add(target)

    def _resolve(self, ctx: ModuleContext, caller: FunctionInfo,
                 name: str) -> Key | None:
        """Pin a dotted callee name to a function key, or give up."""
        if not name:
            return None
        symbols = self._symbols[ctx.relpath]
        parts = name.split(".")
        if parts[0] == "self" and caller.class_name is not None:
            if len(parts) == 2:
                key = (ctx.relpath, f"{caller.class_name}.{parts[1]}")
                return key if key in self.functions else None
            return None
        if len(parts) == 1:
            if parts[0] in symbols.functions:
                key = (ctx.relpath, parts[0])
                return key if key in self.functions else None
            target = symbols.symbol_imports.get(parts[0])
            if target is not None and target in self.functions:
                return target
            return None
        if len(parts) == 2:
            first, second = parts
            if first in symbols.classes:
                key = (ctx.relpath, f"{first}.{second}")
                return key if key in self.functions else None
            module = symbols.module_imports.get(first)
            if module is not None:
                key = (module, second)
                return key if key in self.functions else None
            target = symbols.symbol_imports.get(first)
            if target is not None:
                # imported class: Class.method
                key = (target[0], f"{target[1]}.{second}")
                return key if key in self.functions else None
        return None

    # ------------------------------------------------------------------
    def function(self, relpath: str, qualname: str) -> FunctionInfo | None:
        return self.functions.get((relpath, qualname))

    def reachable(self, roots, include_refs: bool = True) -> set[Key]:
        """Every function key reachable from ``roots`` over call edges
        (and, by default, callable-reference edges)."""
        seen: set[Key] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            for nxt in self.calls.get(key, ()):
                stack.append(nxt)
            if include_refs:
                for nxt in self.refs.get(key, ()):
                    stack.append(nxt)
        return seen
