"""SARIF 2.1.0 export for ``repro lint``.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
CI understands natively — GitHub's ``upload-sarif`` action turns each
result into an annotation on the offending line.  The mapping is
deliberately minimal and lossless for our model:

* every active finding → a ``result`` with ``level`` = severity;
* every **baselined** finding → a ``result`` carrying a ``suppressions``
  entry (``kind: external``) whose justification is the baseline
  sentence, so suppressed findings stay *visible* in CI instead of
  silently vanishing;
* file- or project-level findings (``line == 0``) omit the ``region``
  entirely — SARIF regions are 1-based and a fake line 1 would pin an
  annotation to an innocent line of code;
* the rule catalog rides along under ``tool.driver.rules`` with each
  rule's one-line description, so viewers can show help text without
  access to this repository.
"""

from __future__ import annotations

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_TOOL_NAME = "repro-lint"


def _rule_descriptor(rule_id: str) -> dict:
    from repro.analysis.registry import all_rules
    rule = all_rules().get(rule_id)
    descriptor: dict = {"id": rule_id}
    if rule is not None:
        descriptor["shortDescription"] = {"text": rule.description}
        descriptor["defaultConfiguration"] = {"level": rule.severity}
    return descriptor


def _location(finding) -> dict:
    physical: dict = {
        "artifactLocation": {"uri": finding.path, "uriBaseId": "SRCROOT"},
    }
    if finding.line > 0:
        physical["region"] = {"startLine": finding.line}
    return {"physicalLocation": physical}


def _result(finding, suppression_justification: str | None = None) -> dict:
    result: dict = {
        "ruleId": finding.rule,
        "level": finding.severity if finding.severity else "error",
        "message": {"text": finding.message},
        "locations": [_location(finding)],
    }
    if finding.symbol:
        # stable identity for CI result-matching across commits, the
        # same key the baseline uses (line numbers excluded on purpose)
        result["partialFingerprints"] = {
            "reproLintKey/v1": "::".join(finding.key()),
        }
    if suppression_justification is not None:
        result["suppressions"] = [{
            "kind": "external",
            "justification": suppression_justification,
        }]
    return result


def sarif_log(report) -> dict:
    """The SARIF log object for one :class:`LintReport`."""
    rule_ids = sorted({f.rule for f in report.findings}
                      | {f.rule for f, _ in report.baselined}
                      | set(report.rules_run))
    results = [_result(f) for f in report.findings]
    results += [_result(f, suppression_justification=e.justification or
                        "baselined without justification")
                for f, e in report.baselined]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": _TOOL_NAME,
                "rules": [_rule_descriptor(rid) for rid in rule_ids],
            }},
            "originalUriBaseIds": {
                "SRCROOT": {"uri": f"file://{report.root}/"},
            },
            "results": results,
        }],
    }


def format_sarif(report) -> str:
    return json.dumps(sarif_log(report), indent=2, sort_keys=True)
