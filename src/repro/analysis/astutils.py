"""Shared AST helpers for the rule catalog."""

from __future__ import annotations

import ast
from typing import Iterator

#: Constructor names whose result is a mutable container.
MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict", "ChainMap",
})


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, '' for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(node: ast.Call) -> str:
    """Dotted name of a call's callee ('' when not a plain name chain)."""
    return dotted_name(node.func)


def is_mutable_container(value: ast.AST) -> str | None:
    """Classify a value expression as a mutable container.

    Returns the container kind (``"list"``/``"dict"``/``"set"``/the
    constructor name) or None.  Immutable wrappers — ``tuple(...)``,
    ``frozenset(...)``, ``MappingProxyType(...)`` — are None by
    construction: their names are simply not in :data:`MUTABLE_CALLS`.
    """
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        name = call_name(value).rsplit(".", 1)[-1]
        if name in MUTABLE_CALLS:
            return name
    return None


def is_setish(node: ast.AST) -> bool:
    """True when the expression is syntactically a set (unordered)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in ("set", "frozenset")
    return False


def assign_targets(stmt: ast.stmt) -> list[tuple[str, ast.AST | None, int]]:
    """``(name, value, lineno)`` for simple Assign/AnnAssign targets."""
    out: list[tuple[str, ast.AST | None, int]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                out.append((target.id, stmt.value, stmt.lineno))
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        out.append((stmt.target.id, stmt.value, stmt.lineno))
    return out


def module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into top-level ``if``/``try``
    bodies (version guards, optional-import guards) but never into
    function or class definitions."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body + stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body + stmt.orelse + stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)


def class_methods(node: ast.ClassDef) -> set[str]:
    """Names of functions defined directly in a class body."""
    return {stmt.name for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


def class_attr_names(node: ast.ClassDef) -> set[str]:
    """Names bound by simple assignments directly in a class body."""
    names: set[str] = set()
    for stmt in node.body:
        for name, _value, _lineno in assign_targets(stmt):
            names.add(name)
    return names


def dataclass_field_names(node: ast.ClassDef) -> list[tuple[str, int]]:
    """Annotated field names of a dataclass body, ``ClassVar`` excluded."""
    fields: list[tuple[str, int]] = []
    for stmt in node.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append((stmt.target.id, stmt.lineno))
    return fields


def find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def find_method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and stmt.name == name:
            return stmt
    return None


def self_attribute_loads(node: ast.AST) -> set[str]:
    """Every ``self.<attr>`` referenced anywhere under ``node``."""
    attrs: set[str] = set()
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"):
            attrs.add(sub.attr)
    return attrs


def module_bound_names(tree: ast.Module) -> set[str]:
    """Names bound at module level: imports, assignments, defs."""
    names: set[str] = set()
    for stmt in module_level_statements(tree):
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(stmt.name)
        else:
            for name, _value, _lineno in assign_targets(stmt):
                names.add(name)
    return names
