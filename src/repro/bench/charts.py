"""Terminal chart rendering for figure data (no plotting deps offline).

The paper's evaluation figures are bar/line charts; these helpers render
the regenerated series as unicode bar charts so ``python -m repro figure
...`` and the benchmark logs show the *shape* directly, not just rows.
"""

from __future__ import annotations

from repro.errors import ConfigError

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0:
        return ""
    cells = value / vmax * width
    full = int(cells)
    frac = int((cells - full) * 8)
    bar = "█" * full
    if frac and full < width:
        bar += _BLOCKS[frac]
    return bar


def bar_chart(rows: list[dict], label_key: str, value_key: str,
              title: str | None = None, width: int = 40,
              group_key: str | None = None) -> str:
    """Horizontal bar chart of ``value_key`` per row.

    ``group_key`` (optional) prefixes labels, rendering grouped series
    the way the paper's clustered bar figures do.
    """
    if not rows:
        return "(no data)\n"
    for key in (label_key, value_key):
        if key not in rows[0]:
            raise ConfigError(f"rows have no column {key!r}")
    values = [float(r[value_key]) for r in rows]
    vmax = max(values)
    labels = []
    for r in rows:
        label = str(r[label_key])
        if group_key is not None:
            label = f"{r[group_key]}/{label}"
        labels.append(label)
    label_w = max(len(l) for l in labels)
    lines = [] if title is None else [title]
    for label, value in zip(labels, values):
        lines.append(f"{label.ljust(label_w)} |{_bar(value, vmax, width).ljust(width)}| "
                     f"{value:.2f}")
    return "\n".join(lines) + "\n"


def series_chart(rows: list[dict], x_key: str, y_key: str, series_key: str,
                 title: str | None = None, width: int = 40) -> str:
    """Grouped bars per x value, one row per series — line-chart stand-in
    for the paper's sweep figures (Fig. 11, Fig. 12)."""
    if not rows:
        return "(no data)\n"
    vmax = max(float(r[y_key]) for r in rows)
    xs = list(dict.fromkeys(r[x_key] for r in rows))
    series = list(dict.fromkeys(r[series_key] for r in rows))
    lines = [] if title is None else [title]
    label_w = max(len(f"{s} @ {x}") for s in series for x in xs)
    for x in xs:
        for s in series:
            match = [r for r in rows if r[x_key] == x and r[series_key] == s]
            if not match:
                continue
            value = float(match[0][y_key])
            label = f"{s} @ {x}"
            lines.append(f"{label.ljust(label_w)} |"
                         f"{_bar(value, vmax, width).ljust(width)}| {value:.2f}")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"
