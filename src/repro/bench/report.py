"""Consolidated experiment report builder.

Collects the tables written under ``benchmarks/results/`` — by the
benchmark suite or by the cache-driven regeneration pipeline
(:mod:`repro.bench.regen`) — into one markdown document, the mechanical
companion to EXPERIMENTS.md (which adds the paper-vs-measured
commentary).

When a result cache directory is supplied, each section is checked for
**staleness**: a ``.txt`` older than the newest cache entry predates
the most recent simulation results, so the report says to regenerate it
with ``repro report`` instead of silently presenting old numbers.
"""

from __future__ import annotations

import os
from datetime import date
from pathlib import Path

#: Section order and titles for the consolidated report.
REPORT_SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1_configs", "Table 1 — configurations"),
    ("table2_datasets", "Table 2 — benchmark datasets"),
    ("fig04_crossbar_frequency", "Fig. 4 — crossbar frequency vs ports"),
    ("fig07_memory_layout", "Fig. 7 — on-chip memory layout"),
    ("fig08_speedup", "Fig. 8 — speedup over GraphDynS"),
    ("fig09_throughput", "Fig. 9 — throughput (GTEPS)"),
    ("fig10a_opt_throughput", "Fig. 10(a) — optimization ablation"),
    ("fig10b_starvation", "Fig. 10(b) — vPE starvation"),
    ("fig11_scalability", "Fig. 11 — back-end channel scaling"),
    ("fig12_buffer_size", "Fig. 12 — buffer size sweep"),
    ("sec54_radix", "Sec. 5.4 — radix design option"),
    ("sec54_area_power", "Sec. 5.4 — area and power"),
    ("discussion_slicing", "Sec. 5.3 — slicing + double buffering"),
    ("ablation_combining", "Ablation — vertex coalescing"),
    ("ablation_latency", "Ablation — latency vs throughput"),
)

#: What the report tells the reader to run for absent/stale sections.
REGEN_HINT = "regenerate with `repro report`"


def collect_results(results_dir: str) -> dict[str, str]:
    """Read every known results table that exists; key -> text."""
    found = {}
    for key, _title in REPORT_SECTIONS:
        path = os.path.join(results_dir, f"{key}.txt")
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                found[key] = fh.read()
    return found


def collect_charts(results_dir: str) -> dict[str, str]:
    """Read every section's rendered unicode chart, if present.

    Charts are written as ``<section>.chart.txt`` next to the tables by
    ``repro report --charts`` (:func:`repro.bench.regen.regenerate`);
    sections without a natural chart simply have no file.
    """
    found = {}
    for key, _title in REPORT_SECTIONS:
        path = os.path.join(results_dir, f"{key}.chart.txt")
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                found[key] = fh.read()
    return found


def newest_cache_mtime(cache_dir: str | os.PathLike | None) -> float | None:
    """Modification time of the youngest result-cache entry, if any.

    Delegates the on-disk layout to :class:`~repro.sweep.cache.
    ResultCache` so the staleness check can never drift from where the
    executor actually writes entries.
    """
    if cache_dir is None or not Path(cache_dir).is_dir():
        return None                  # also: don't mkdir a cache as a side effect
    from repro.sweep.cache import ResultCache
    entries = ResultCache(cache_dir).entries()
    return entries[-1].mtime if entries else None


def section_status(results_dir: str,
                   cache_dir: str | os.PathLike | None = None) -> dict[str, str]:
    """Freshness of every section: ``fresh`` | ``stale`` | ``missing``.

    A section is *stale* when its ``.txt`` is strictly older than the
    newest entry in the result cache — the table predates simulation
    results that may have changed it.  Without a cache directory no
    section can be judged stale.
    """
    cache_mtime = newest_cache_mtime(cache_dir)
    status = {}
    for key, _title in REPORT_SECTIONS:
        path = os.path.join(results_dir, f"{key}.txt")
        try:
            txt_mtime = os.stat(path).st_mtime
        except OSError:
            status[key] = "missing"
            continue
        if cache_mtime is not None and txt_mtime < cache_mtime:
            status[key] = "stale"
        else:
            status[key] = "fresh"
    return status


def build_report(results_dir: str, title: str = "HiGraph reproduction — "
                 "measured results", cache_dir: str | os.PathLike | None = None,
                 provenance: dict[str, str] | None = None,
                 charts: bool = False) -> str:
    """Render the consolidated markdown report.

    ``cache_dir`` enables the per-section staleness check (see
    :func:`section_status`).  ``charts`` appends each section's
    rendered unicode chart (``<section>.chart.txt``, written by
    ``repro report --charts``) under its table.  ``provenance`` adds a
    final section of ``label: value`` lines; callers must pass only
    run-independent values there so that regenerating from a warm
    cache reproduces the report byte-for-byte (volatile accounting
    belongs in the JSON sidecar written by
    :func:`repro.bench.regen.regenerate`).
    """
    tables = collect_results(results_dir)
    chart_texts = collect_charts(results_dir) if charts else {}
    status = section_status(results_dir, cache_dir)
    lines = [f"# {title}", "",
             f"Generated {date.today().isoformat()} from `{results_dir}`.",
             ""]
    missing = []
    for key, section_title in REPORT_SECTIONS:
        if key in tables:
            lines.append(f"## {section_title}")
            lines.append("")
            if status.get(key) == "stale":
                lines.append(f"*Stale: this table is older than the result "
                             f"cache — {REGEN_HINT}.*")
                lines.append("")
            lines.append("```")
            lines.append(tables[key].rstrip("\n"))
            lines.append("```")
            lines.append("")
            if key in chart_texts:
                lines.append("```")
                lines.append(chart_texts[key].rstrip("\n"))
                lines.append("```")
                lines.append("")
        else:
            missing.append(section_title)
    if missing:
        lines.append("## Missing sections")
        lines.append("")
        lines.append(f"Not found under `{results_dir}` — {REGEN_HINT} "
                     "(or run the benchmark suite) to produce:")
        for m in missing:
            lines.append(f"* {m}")
        lines.append("")
    if provenance:
        lines.append("## Provenance")
        lines.append("")
        for label, value in provenance.items():
            lines.append(f"* {label}: {value}")
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir: str, output_path: str,
                 cache_dir: str | os.PathLike | None = None) -> str:
    text = build_report(results_dir, cache_dir=cache_dir)
    with open(output_path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
