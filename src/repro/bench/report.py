"""Consolidated experiment report builder.

Collects the tables the benchmark suite wrote under
``benchmarks/results/`` into one markdown document — the mechanical
companion to EXPERIMENTS.md (which adds the paper-vs-measured
commentary).
"""

from __future__ import annotations

import os
from datetime import date

#: Section order and titles for the consolidated report.
REPORT_SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1_configs", "Table 1 — configurations"),
    ("table2_datasets", "Table 2 — benchmark datasets"),
    ("fig04_crossbar_frequency", "Fig. 4 — crossbar frequency vs ports"),
    ("fig07_memory_layout", "Fig. 7 — on-chip memory layout"),
    ("fig08_speedup", "Fig. 8 — speedup over GraphDynS"),
    ("fig09_throughput", "Fig. 9 — throughput (GTEPS)"),
    ("fig10a_opt_throughput", "Fig. 10(a) — optimization ablation"),
    ("fig10b_starvation", "Fig. 10(b) — vPE starvation"),
    ("fig11_scalability", "Fig. 11 — back-end channel scaling"),
    ("fig12_buffer_size", "Fig. 12 — buffer size sweep"),
    ("sec54_radix", "Sec. 5.4 — radix design option"),
    ("sec54_area_power", "Sec. 5.4 — area and power"),
    ("discussion_slicing", "Sec. 5.3 — slicing + double buffering"),
    ("ablation_combining", "Ablation — vertex coalescing"),
    ("ablation_latency", "Ablation — latency vs throughput"),
)


def collect_results(results_dir: str) -> dict[str, str]:
    """Read every known results table that exists; key -> text."""
    found = {}
    for key, _title in REPORT_SECTIONS:
        path = os.path.join(results_dir, f"{key}.txt")
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                found[key] = fh.read()
    return found


def build_report(results_dir: str, title: str = "HiGraph reproduction — "
                 "measured results") -> str:
    """Render the consolidated markdown report."""
    tables = collect_results(results_dir)
    lines = [f"# {title}", "",
             f"Generated {date.today().isoformat()} from `{results_dir}`.",
             ""]
    missing = []
    for key, section_title in REPORT_SECTIONS:
        if key in tables:
            lines.append(f"## {section_title}")
            lines.append("")
            lines.append("```")
            lines.append(tables[key].rstrip("\n"))
            lines.append("```")
            lines.append("")
        else:
            missing.append(section_title)
    if missing:
        lines.append("## Missing sections")
        lines.append("")
        lines.append("Run `pytest benchmarks/ --benchmark-only` to produce:")
        for m in missing:
            lines.append(f"* {m}")
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir: str, output_path: str) -> str:
    text = build_report(results_dir)
    with open(output_path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
