"""Benchmark harness: runs the paper's evaluation matrix and formats rows.

The harness is what the ``benchmarks/`` suite drives.  Dataset sizing:
pure-Python cycle simulation costs roughly a microsecond per
component-cycle, so the default harness runs **reduced-scale stand-ins**
(~60k-130k edges each, mean degree and hub skew preserved — see
``repro.graph.datasets``).  Set the ``REPRO_SCALE`` environment variable
to override, e.g. ``REPRO_SCALE=1.0`` for paper-sized graphs (slow: an
hour or more for the full matrix on one core).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.accel import AcceleratorConfig, SimStats, graphdyns, higraph, higraph_mini
from repro.algorithms import PAPER_ALGORITHMS, make_algorithm
from repro.graph import DATASET_ORDER, load
from repro.graph.datasets import SCALE_ENV_VAR
from repro.sweep import GraphSpec, plan_jobs, run_sweep

#: Default per-dataset scales: each stand-in lands at ~60k-130k edges so
#: the whole figure suite completes in minutes on one core.
DEFAULT_BENCH_SCALES: dict[str, float] = {
    "VT": 1.0,
    "EP": 0.125,
    "SL": 0.125,
    "TW": 0.0625,
    "R14": 0.125,
    "R16": 0.03125,
}

#: PageRank iterations used by the benches (documented in EXPERIMENTS.md;
#: throughput is iteration-count-insensitive because every iteration
#: processes the same all-active workload).
BENCH_PR_ITERATIONS = 2


def bench_scale(key: str) -> float:
    """Dataset scale for benches: REPRO_SCALE (if set) wins."""
    env = os.environ.get(SCALE_ENV_VAR)
    if env is not None:
        return float(env)
    return DEFAULT_BENCH_SCALES[key]


def bench_graph_spec(key: str) -> GraphSpec:
    """Symbolic sweep-job reference to one bench-scaled dataset."""
    return GraphSpec(key, scale=bench_scale(key))


def load_bench_graph(key: str):
    return bench_graph_spec(key).load()


def bench_algorithm_entry(name: str):
    """Sweep-planner algorithm entry matching :func:`make_bench_algorithm`."""
    if name == "PR":
        return ("PR", {"iterations": BENCH_PR_ITERATIONS})
    return name


def make_bench_algorithm(name: str):
    if name == "PR":
        return make_algorithm("PR", iterations=BENCH_PR_ITERATIONS)
    return make_algorithm(name)


def paper_configs() -> dict[str, AcceleratorConfig]:
    """The three Table 1 designs, in plotting order."""
    return {
        "GraphDynS": graphdyns(),
        "HiGraph-mini": higraph_mini(),
        "HiGraph": higraph(),
    }


@dataclass
class MatrixResult:
    """All (algorithm, dataset, config) runs of the Fig. 8/9 evaluation."""

    stats: dict[tuple[str, str, str], SimStats]

    def get(self, algorithm: str, dataset: str, config: str) -> SimStats:
        return self.stats[(algorithm, dataset, config)]

    def speedup_rows(self) -> list[dict]:
        """Fig. 8: speedup of HiGraph-mini / HiGraph over GraphDynS."""
        rows = []
        for alg in PAPER_ALGORITHMS:
            for ds in DATASET_ORDER:
                base = self.get(alg, ds, "GraphDynS")
                rows.append({
                    "algorithm": alg,
                    "dataset": ds,
                    "speedup_mini": self.get(alg, ds, "HiGraph-mini").speedup_over(base),
                    "speedup_higraph": self.get(alg, ds, "HiGraph").speedup_over(base),
                })
        return rows

    def throughput_rows(self) -> list[dict]:
        """Fig. 9: GTEPS for all three designs."""
        rows = []
        for alg in PAPER_ALGORITHMS:
            for ds in DATASET_ORDER:
                rows.append({
                    "algorithm": alg,
                    "dataset": ds,
                    "graphdyns_gteps": self.get(alg, ds, "GraphDynS").gteps,
                    "mini_gteps": self.get(alg, ds, "HiGraph-mini").gteps,
                    "higraph_gteps": self.get(alg, ds, "HiGraph").gteps,
                })
        return rows


def matrix_jobs(algorithms=PAPER_ALGORITHMS, datasets=DATASET_ORDER,
                configs=None, source: int = 0):
    """The Fig. 8/9 evaluation matrix as a sweep job list."""
    configs = configs or paper_configs()
    return plan_jobs(
        [bench_algorithm_entry(a) for a in algorithms],
        [bench_graph_spec(ds) for ds in datasets],
        configs,
        source=source,
    )


def matrix_from_outcome(outcome) -> MatrixResult:
    """Index a finished matrix sweep by (algorithm, dataset, config)."""
    stats: dict[tuple[str, str, str], SimStats] = {}
    for job, result in zip(outcome.jobs, outcome.stats):
        tags = job.tags
        stats[(tags["algorithm"], tags["graph"], tags["config"])] = result
    return MatrixResult(stats)


def run_matrix(algorithms=PAPER_ALGORITHMS, datasets=DATASET_ORDER,
               configs=None, source: int = 0, jobs: int | None = 1,
               cache=None) -> MatrixResult:
    """Run the full evaluation matrix (the engine behind Fig. 8 and 9).

    Built on the sweep engine: ``jobs`` shards the matrix across worker
    processes (1 = serial, ``None``/0 = one per CPU) and ``cache`` — a
    :class:`repro.sweep.ResultCache` or directory path — memoizes every
    cell on disk.  Results are identical regardless of either knob.
    """
    outcome = run_sweep(matrix_jobs(algorithms, datasets, configs, source),
                        num_workers=jobs, cache=cache)
    return matrix_from_outcome(outcome)


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------

def format_table(rows: list[dict], columns: list[str] | None = None,
                 title: str | None = None, floatfmt: str = ".2f") -> str:
    """Fixed-width text table (the shape the paper's figures report)."""
    if not rows:
        return "(no rows)\n"
    columns = columns or list(rows[0].keys())
    rendered = [[_fmt(row.get(col), floatfmt) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


def _fmt(value, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def save_rows(path: str, text: str) -> None:
    """Persist a rendered table next to the benchmark outputs."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
