"""Per-figure experiment definitions for the paper's evaluation section.

Each function regenerates the data series behind one figure and returns
plain row dicts; ``benchmarks/`` prints them as tables and asserts the
paper's qualitative claims.
"""

from __future__ import annotations

from repro.accel import ablation, graphdyns, higraph, simulate
from repro.bench.harness import load_bench_graph, make_bench_algorithm
from repro.graph.csr import CSRGraph

#: Ablation order of paper Fig. 10 (cumulative optimizations).
FIG10_STEPS = (
    ("Baseline", dict()),
    ("OPT-O", dict(opt_o=True)),
    ("OPT-O + OPT-E", dict(opt_o=True, opt_e=True)),
    ("OPT-O + OPT-E + OPT-D", dict(opt_o=True, opt_e=True, opt_d=True)),
)

#: Back-end channel sweep of paper Fig. 11.
FIG11_HIGRAPH_CHANNELS = (32, 64, 128, 256)
FIG11_GRAPHDYNS_CHANNELS = (32, 64)   # "does not support more than 64"

#: Per-channel FIFO entries swept in paper Fig. 12 (x-axis 0..350,
#: chosen operating point 160).
FIG12_BUFFER_SIZES = (8, 20, 40, 80, 160, 320)

#: Radix sweep of §5.4.  64 back-end channels admit radix 2, 4 and 8
#: (64 = 2^6 = 4^3 = 8^2) so one sweep covers the design space.
SEC54_RADICES = (2, 4, 8)
SEC54_CHANNELS = 64


def fig10_rows(dataset: str = "R14", algorithms=("BFS", "SSSP", "SSWP", "PR"),
               graph: CSRGraph | None = None) -> list[dict]:
    """Fig. 10(a) + (b): cumulative-optimization throughput & starvation."""
    graph = graph if graph is not None else load_bench_graph(dataset)
    rows = []
    for alg_name in algorithms:
        for label, opts in FIG10_STEPS:
            cfg = ablation(**opts)
            stats = simulate(cfg, graph, make_bench_algorithm(alg_name)).stats
            rows.append({
                "algorithm": alg_name,
                "step": label,
                "gteps": stats.gteps,
                "starvation_cycles": stats.vpe_starvation_cycles,
                "cycles": stats.total_cycles,
            })
    return rows


def fig11_rows(dataset: str = "R14", graph: CSRGraph | None = None) -> list[dict]:
    """Fig. 11: throughput versus number of back-end channels (PR/R14)."""
    graph = graph if graph is not None else load_bench_graph(dataset)
    rows = []
    for channels in FIG11_GRAPHDYNS_CHANNELS:
        cfg = graphdyns(back_channels=channels)
        stats = simulate(cfg, graph, make_bench_algorithm("PR")).stats
        rows.append({"design": "GraphDynS", "back_channels": channels,
                     "frequency_ghz": stats.frequency_ghz, "gteps": stats.gteps})
    for channels in FIG11_HIGRAPH_CHANNELS:
        cfg = higraph(back_channels=channels)
        stats = simulate(cfg, graph, make_bench_algorithm("PR")).stats
        rows.append({"design": "HiGraph", "back_channels": channels,
                     "frequency_ghz": stats.frequency_ghz, "gteps": stats.gteps})
    return rows


def fig12_rows(dataset: str = "R14", buffer_sizes=FIG12_BUFFER_SIZES,
               graph: CSRGraph | None = None) -> list[dict]:
    """Fig. 12: throughput versus per-channel FIFO buffer size.

    "We keep all designs in HiGraph the same except for the dataflow
    propagation stage, in which we replace MDP-network with
    FIFO-plus-crossbar design."
    """
    graph = graph if graph is not None else load_bench_graph(dataset)
    rows = []
    for entries in buffer_sizes:
        for prop_site, label in (("mdp", "MDP-network"),
                                 ("crossbar", "FIFO+crossbar")):
            cfg = higraph(propagation_site=prop_site, fifo_depth=entries)
            stats = simulate(cfg, graph, make_bench_algorithm("PR")).stats
            rows.append({"design": label, "buffer_entries": entries,
                         "gteps": stats.gteps})
    return rows


def sec54_radix_rows(dataset: str = "R14",
                     graph: CSRGraph | None = None) -> list[dict]:
    """§5.4 radix study: 'a too large radix still encounters design
    centralization, which degrades the performance'."""
    graph = graph if graph is not None else load_bench_graph(dataset)
    rows = []
    for radix in SEC54_RADICES:
        cfg = higraph(back_channels=SEC54_CHANNELS, front_channels=SEC54_CHANNELS,
                      radix=radix)
        stats = simulate(cfg, graph, make_bench_algorithm("PR")).stats
        rows.append({
            "radix": radix,
            "frequency_ghz": stats.frequency_ghz,
            "gteps": stats.gteps,
            "cycles": stats.total_cycles,
        })
    return rows


def combining_ablation_rows(dataset: str = "R14",
                            graph: CSRGraph | None = None) -> list[dict]:
    """Extension ablation: vertex coalescing on/off at the propagation
    site for both interconnects (design-choice study from DESIGN.md)."""
    graph = graph if graph is not None else load_bench_graph(dataset)
    rows = []
    for combining in (True, False):
        for maker, label in ((higraph, "HiGraph"), (graphdyns, "GraphDynS")):
            cfg = maker(vertex_combining=combining)
            stats = simulate(cfg, graph, make_bench_algorithm("PR")).stats
            rows.append({"design": label, "combining": combining,
                         "gteps": stats.gteps})
    return rows
