"""Per-figure experiment definitions for the paper's evaluation section.

Each figure is split into a **planner** (``fig*_jobs`` — returns the
:class:`~repro.sweep.jobs.SweepJob` list behind the figure) and an
**assembler** (``fig*_assemble`` — turns the finished
:class:`~repro.sweep.executor.SweepOutcome` into plain row dicts).  The
``fig*_rows`` convenience wrappers run both; ``benchmarks/`` prints the
rows as tables and asserts the paper's qualitative claims, and
:mod:`repro.bench.regen` drives the split form directly so the
consolidated report regenerates straight from a warm cache with full
execution accounting.

All figure sweeps run on the sweep engine (:mod:`repro.sweep`): every
``fig*_rows`` function accepts ``num_workers`` (process count; 1 =
serial) and ``cache`` (a :class:`repro.sweep.ResultCache` or directory
path) and produces identical rows regardless of either knob.
"""

from __future__ import annotations

from repro.accel import ablation, graphdyns, higraph, slice_load_cycles
from repro.bench.harness import (
    BENCH_PR_ITERATIONS,
    bench_algorithm_entry,
    bench_graph_spec,
    bench_scale,
    paper_configs,
)
from repro.graph import DATASET_ORDER, TABLE2, chain, partition_by_destination
from repro.graph.csr import CSRGraph
from repro.sweep import SweepJob, SweepOutcome, plan_jobs, run_sweep

#: Ablation order of paper Fig. 10 (cumulative optimizations).
FIG10_STEPS = (
    ("Baseline", dict()),
    ("OPT-O", dict(opt_o=True)),
    ("OPT-O + OPT-E", dict(opt_o=True, opt_e=True)),
    ("OPT-O + OPT-E + OPT-D", dict(opt_o=True, opt_e=True, opt_d=True)),
)

#: Back-end channel sweep of paper Fig. 11.
FIG11_HIGRAPH_CHANNELS = (32, 64, 128, 256)
FIG11_GRAPHDYNS_CHANNELS = (32, 64)   # "does not support more than 64"

#: Per-channel FIFO entries swept in paper Fig. 12 (x-axis 0..350,
#: chosen operating point 160).
FIG12_BUFFER_SIZES = (8, 20, 40, 80, 160, 320)

#: Radix sweep of §5.4.  64 back-end channels admit radix 2, 4 and 8
#: (64 = 2^6 = 4^3 = 8^2) so one sweep covers the design space.
SEC54_RADICES = (2, 4, 8)
SEC54_CHANNELS = 64

#: Latency-bound workload of the §2.2 ablation: BFS on a chain exposes
#: one full pipeline traversal per iteration.
LATENCY_CHAIN_VERTICES = 256

#: §5.3 slicing discussion defaults: 4 destination slices, 64 B/cycle
#: off-chip bandwidth (64 GB/s at the 1 GHz design point).
SLICING_NUM_SLICES = 4
SLICING_BYTES_PER_CYCLE = 64.0


def _figure_graph(dataset: str, graph: CSRGraph | None):
    """Inline graph if the caller provided one, else a symbolic bench spec."""
    return graph if graph is not None else bench_graph_spec(dataset)


# ----------------------------------------------------------------------
# Fig. 10 — cumulative optimization ablation
# ----------------------------------------------------------------------

def fig10_jobs(dataset: str = "R14",
               algorithms=("BFS", "SSSP", "SSWP", "PR"),
               graph: CSRGraph | None = None) -> list[SweepJob]:
    return plan_jobs(
        [bench_algorithm_entry(a) for a in algorithms],
        [_figure_graph(dataset, graph)],
        {label: ablation(**opts) for label, opts in FIG10_STEPS},
    )


def fig10_assemble(outcome: SweepOutcome) -> list[dict]:
    return [{
        "algorithm": job.tags["algorithm"],
        "step": job.tags["config"],
        "gteps": stats.gteps,
        "starvation_cycles": stats.vpe_starvation_cycles,
        "cycles": stats.total_cycles,
    } for job, stats in zip(outcome.jobs, outcome.stats)]


def fig10_rows(dataset: str = "R14", algorithms=("BFS", "SSSP", "SSWP", "PR"),
               graph: CSRGraph | None = None,
               num_workers: int | None = 1, cache=None) -> list[dict]:
    """Fig. 10(a) + (b): cumulative-optimization throughput & starvation."""
    outcome = run_sweep(fig10_jobs(dataset, algorithms, graph),
                        num_workers=num_workers, cache=cache)
    return fig10_assemble(outcome)


# ----------------------------------------------------------------------
# Fig. 11 — back-end channel scaling
# ----------------------------------------------------------------------

def fig11_jobs(dataset: str = "R14",
               graph: CSRGraph | None = None) -> list[SweepJob]:
    target = _figure_graph(dataset, graph)
    pr = bench_algorithm_entry("PR")
    jobs = plan_jobs([pr], [target], {"GraphDynS": graphdyns()},
                     sweep_axes={"back_channels": FIG11_GRAPHDYNS_CHANNELS})
    jobs += plan_jobs([pr], [target], {"HiGraph": higraph()},
                      sweep_axes={"back_channels": FIG11_HIGRAPH_CHANNELS})
    return jobs


def fig11_assemble(outcome: SweepOutcome) -> list[dict]:
    return [{
        "design": job.tags["config"],
        "back_channels": job.tags["back_channels"],
        "frequency_ghz": stats.frequency_ghz,
        "gteps": stats.gteps,
    } for job, stats in zip(outcome.jobs, outcome.stats)]


def fig11_rows(dataset: str = "R14", graph: CSRGraph | None = None,
               num_workers: int | None = 1, cache=None) -> list[dict]:
    """Fig. 11: throughput versus number of back-end channels (PR/R14)."""
    outcome = run_sweep(fig11_jobs(dataset, graph),
                        num_workers=num_workers, cache=cache)
    return fig11_assemble(outcome)


# ----------------------------------------------------------------------
# Fig. 12 — buffer size sweep
# ----------------------------------------------------------------------

def fig12_jobs(dataset: str = "R14", buffer_sizes=FIG12_BUFFER_SIZES,
               graph: CSRGraph | None = None) -> list[SweepJob]:
    """Fig. 12 job matrix.

    "We keep all designs in HiGraph the same except for the dataflow
    propagation stage, in which we replace MDP-network with
    FIFO-plus-crossbar design."  Buffer size is the outermost loop (the
    paper's x-axis order), so one planner call per size rather than one
    sweep_axes expansion.
    """
    target = _figure_graph(dataset, graph)
    pr = bench_algorithm_entry("PR")
    jobs = []
    for entries in buffer_sizes:
        jobs += plan_jobs([pr], [target], {
            "MDP-network": higraph(propagation_site="mdp", fifo_depth=entries),
            "FIFO+crossbar": higraph(propagation_site="crossbar",
                                     fifo_depth=entries),
        })
    return jobs


def fig12_assemble(outcome: SweepOutcome) -> list[dict]:
    return [{
        "design": job.tags["config"],
        "buffer_entries": job.config.fifo_depth,
        "gteps": stats.gteps,
    } for job, stats in zip(outcome.jobs, outcome.stats)]


def fig12_rows(dataset: str = "R14", buffer_sizes=FIG12_BUFFER_SIZES,
               graph: CSRGraph | None = None,
               num_workers: int | None = 1, cache=None) -> list[dict]:
    """Fig. 12: throughput versus per-channel FIFO buffer size."""
    outcome = run_sweep(fig12_jobs(dataset, buffer_sizes, graph),
                        num_workers=num_workers, cache=cache)
    return fig12_assemble(outcome)


# ----------------------------------------------------------------------
# §5.4 — radix design option
# ----------------------------------------------------------------------

def sec54_radix_jobs(dataset: str = "R14",
                     graph: CSRGraph | None = None) -> list[SweepJob]:
    return plan_jobs(
        [bench_algorithm_entry("PR")],
        [_figure_graph(dataset, graph)],
        {"HiGraph": higraph(back_channels=SEC54_CHANNELS,
                            front_channels=SEC54_CHANNELS)},
        sweep_axes={"radix": SEC54_RADICES},
    )


def sec54_radix_assemble(outcome: SweepOutcome) -> list[dict]:
    return [{
        "radix": job.tags["radix"],
        "frequency_ghz": stats.frequency_ghz,
        "gteps": stats.gteps,
        "cycles": stats.total_cycles,
    } for job, stats in zip(outcome.jobs, outcome.stats)]


def sec54_radix_rows(dataset: str = "R14", graph: CSRGraph | None = None,
                     num_workers: int | None = 1, cache=None) -> list[dict]:
    """§5.4 radix study: 'a too large radix still encounters design
    centralization, which degrades the performance'."""
    outcome = run_sweep(sec54_radix_jobs(dataset, graph),
                        num_workers=num_workers, cache=cache)
    return sec54_radix_assemble(outcome)


# ----------------------------------------------------------------------
# Ablation — vertex coalescing
# ----------------------------------------------------------------------

def combining_ablation_jobs(dataset: str = "R14",
                            graph: CSRGraph | None = None) -> list[SweepJob]:
    target = _figure_graph(dataset, graph)
    pr = bench_algorithm_entry("PR")
    jobs = []
    for combining in (True, False):
        jobs += plan_jobs([pr], [target], {
            "HiGraph": higraph(vertex_combining=combining),
            "GraphDynS": graphdyns(vertex_combining=combining),
        })
    return jobs


def combining_ablation_assemble(outcome: SweepOutcome) -> list[dict]:
    return [{
        "design": job.tags["config"],
        "combining": job.config.vertex_combining,
        "gteps": stats.gteps,
    } for job, stats in zip(outcome.jobs, outcome.stats)]


def combining_ablation_rows(dataset: str = "R14",
                            graph: CSRGraph | None = None,
                            num_workers: int | None = 1, cache=None) -> list[dict]:
    """Extension ablation: vertex coalescing on/off at the propagation
    site for both interconnects (design-choice study from DESIGN.md)."""
    outcome = run_sweep(combining_ablation_jobs(dataset, graph),
                        num_workers=num_workers, cache=cache)
    return combining_ablation_assemble(outcome)


# ----------------------------------------------------------------------
# Ablation — trading latency for throughput (§2.2)
# ----------------------------------------------------------------------

def latency_ablation_jobs(dataset: str = "R14",
                          graph: CSRGraph | None = None) -> list[SweepJob]:
    """A latency-bound chain-BFS pair plus a throughput-bound PR pair."""
    designs = {"HiGraph": higraph(), "GraphDynS": graphdyns()}
    jobs = plan_jobs(["BFS"], [chain(LATENCY_CHAIN_VERTICES)], designs)
    jobs += plan_jobs([bench_algorithm_entry("PR")],
                      [_figure_graph(dataset, graph)], designs)
    return jobs


def latency_ablation_assemble(outcome: SweepOutcome,
                              dataset: str = "R14") -> list[dict]:
    rows = []
    for job, stats in zip(outcome.jobs, outcome.stats):
        workload = ("chain-BFS (latency-bound)" if job.algorithm == "BFS"
                    else f"{dataset}-PR (throughput-bound)")
        rows.append({
            "workload": workload,
            "design": job.tags["config"],
            "cycles": stats.total_cycles,
            "cycles_per_iteration":
                stats.total_cycles / max(1, stats.iterations),
            "gteps": stats.gteps,
        })
    return rows


def latency_ablation_rows(dataset: str = "R14", graph: CSRGraph | None = None,
                          num_workers: int | None = 1, cache=None) -> list[dict]:
    """§2.2 premise probe: the MDP-network's extra stages are exposed on
    a serial frontier but vanish into a busy pipeline."""
    outcome = run_sweep(latency_ablation_jobs(dataset, graph),
                        num_workers=num_workers, cache=cache)
    return latency_ablation_assemble(outcome, dataset)


# ----------------------------------------------------------------------
# §5.3 Discussion — slicing + double buffering
# ----------------------------------------------------------------------

def slicing_jobs(dataset: str = "R14", graph: CSRGraph | None = None,
                 num_slices: int = SLICING_NUM_SLICES,
                 offchip_bytes_per_cycle: float = SLICING_BYTES_PER_CYCLE
                 ) -> list[SweepJob]:
    """One sliced, double-buffered PR run on the sweep engine."""
    target = _figure_graph(dataset, graph)
    return [SweepJob(
        graph=target,
        algorithm="PR",
        algorithm_kwargs={"iterations": BENCH_PR_ITERATIONS},
        config=higraph(),
        num_slices=num_slices,
        offchip_bytes_per_cycle=offchip_bytes_per_cycle,
        tags={"graph": dataset, "algorithm": "PR", "config": "HiGraph"},
    )]


def slicing_assemble(outcome: SweepOutcome) -> list[dict]:
    """Single-buffer vs double-buffer accounting for the sliced run.

    The raw (unoverlapped) load total is re-derived from the slice edge
    counts — a partitioning pass over the graph, never a simulation, so
    a warm cache still assembles with zero simulator invocations.
    """
    job, stats = outcome.jobs[0], outcome.stats[0]
    slices = partition_by_destination(job.resolve_graph(), job.num_slices)
    total_load = sum(slice_load_cycles(s.num_edges, job.offchip_bytes_per_cycle)
                     for s in slices) * stats.iterations
    compute = stats.scatter_cycles + stats.apply_cycles
    return [{
        "slices": stats.slices,
        "compute_cycles": compute,
        "raw_load_cycles": total_load,
        "exposed_load_cycles": stats.slice_load_cycles,
        "single_buffer_total": compute + total_load,
        "double_buffer_total": stats.total_cycles,
        "gteps_double_buffered": stats.gteps,
    }]


def slicing_rows(dataset: str = "R14", graph: CSRGraph | None = None,
                 num_slices: int = SLICING_NUM_SLICES,
                 offchip_bytes_per_cycle: float = SLICING_BYTES_PER_CYCLE,
                 num_workers: int | None = 1, cache=None) -> list[dict]:
    """§5.3: sliced execution with double buffering hides load traffic."""
    outcome = run_sweep(
        slicing_jobs(dataset, graph, num_slices, offchip_bytes_per_cycle),
        num_workers=num_workers, cache=cache)
    return slicing_assemble(outcome)


# ----------------------------------------------------------------------
# Tables 1 and 2 — pure registry/model lookups (no simulation)
# ----------------------------------------------------------------------

def table1_config_rows() -> list[dict]:
    """Table 1: the three designs and their synthesized geometry."""
    rows = []
    for name, cfg in paper_configs().items():
        rows.append({
            "design": name,
            "frequency_ghz": cfg.frequency_ghz(),
            "front_channels": cfg.front_channels,
            "back_channels": cfg.back_channels,
            "onchip_memory_mb": cfg.onchip_memory_bytes / 2**20,
            "offset_site": cfg.offset_site,
            "edge_site": cfg.edge_site,
            "propagation_site": cfg.propagation_site,
        })
    return rows


def table2_dataset_rows() -> list[dict]:
    """Table 2: paper sizes next to the generated bench-scale stand-ins."""
    from repro.bench.harness import load_bench_graph
    rows = []
    for key in DATASET_ORDER:
        spec = TABLE2[key]
        g = load_bench_graph(key)
        rows.append({
            "name": key,
            "paper_vertices": spec.num_vertices,
            "paper_edges": spec.num_edges,
            "paper_degree": spec.degree,
            "bench_scale": bench_scale(key),
            "bench_vertices": g.num_vertices,
            "bench_edges": g.num_edges,
            "bench_degree": round(g.mean_degree, 1),
        })
    return rows
