"""Per-figure experiment definitions for the paper's evaluation section.

Each function regenerates the data series behind one figure and returns
plain row dicts; ``benchmarks/`` prints them as tables and asserts the
paper's qualitative claims.

All figure sweeps run on the sweep engine (:mod:`repro.sweep`): the
row functions only *plan* their job matrix, so every one of them accepts
``num_workers`` (process count; 1 = serial) and ``cache`` (a
:class:`repro.sweep.ResultCache` or directory path) and produces
identical rows regardless of either knob.
"""

from __future__ import annotations

from repro.accel import ablation, graphdyns, higraph
from repro.bench.harness import bench_algorithm_entry, bench_graph_spec
from repro.graph.csr import CSRGraph
from repro.sweep import plan_jobs, run_sweep

#: Ablation order of paper Fig. 10 (cumulative optimizations).
FIG10_STEPS = (
    ("Baseline", dict()),
    ("OPT-O", dict(opt_o=True)),
    ("OPT-O + OPT-E", dict(opt_o=True, opt_e=True)),
    ("OPT-O + OPT-E + OPT-D", dict(opt_o=True, opt_e=True, opt_d=True)),
)

#: Back-end channel sweep of paper Fig. 11.
FIG11_HIGRAPH_CHANNELS = (32, 64, 128, 256)
FIG11_GRAPHDYNS_CHANNELS = (32, 64)   # "does not support more than 64"

#: Per-channel FIFO entries swept in paper Fig. 12 (x-axis 0..350,
#: chosen operating point 160).
FIG12_BUFFER_SIZES = (8, 20, 40, 80, 160, 320)

#: Radix sweep of §5.4.  64 back-end channels admit radix 2, 4 and 8
#: (64 = 2^6 = 4^3 = 8^2) so one sweep covers the design space.
SEC54_RADICES = (2, 4, 8)
SEC54_CHANNELS = 64


def _figure_graph(dataset: str, graph: CSRGraph | None):
    """Inline graph if the caller provided one, else a symbolic bench spec."""
    return graph if graph is not None else bench_graph_spec(dataset)


def fig10_rows(dataset: str = "R14", algorithms=("BFS", "SSSP", "SSWP", "PR"),
               graph: CSRGraph | None = None,
               num_workers: int | None = 1, cache=None) -> list[dict]:
    """Fig. 10(a) + (b): cumulative-optimization throughput & starvation."""
    jobs = plan_jobs(
        [bench_algorithm_entry(a) for a in algorithms],
        [_figure_graph(dataset, graph)],
        {label: ablation(**opts) for label, opts in FIG10_STEPS},
    )
    outcome = run_sweep(jobs, num_workers=num_workers, cache=cache)
    return [{
        "algorithm": job.tags["algorithm"],
        "step": job.tags["config"],
        "gteps": stats.gteps,
        "starvation_cycles": stats.vpe_starvation_cycles,
        "cycles": stats.total_cycles,
    } for job, stats in zip(outcome.jobs, outcome.stats)]


def fig11_rows(dataset: str = "R14", graph: CSRGraph | None = None,
               num_workers: int | None = 1, cache=None) -> list[dict]:
    """Fig. 11: throughput versus number of back-end channels (PR/R14)."""
    target = _figure_graph(dataset, graph)
    pr = bench_algorithm_entry("PR")
    jobs = plan_jobs([pr], [target], {"GraphDynS": graphdyns()},
                     sweep_axes={"back_channels": FIG11_GRAPHDYNS_CHANNELS})
    jobs += plan_jobs([pr], [target], {"HiGraph": higraph()},
                      sweep_axes={"back_channels": FIG11_HIGRAPH_CHANNELS})
    outcome = run_sweep(jobs, num_workers=num_workers, cache=cache)
    return [{
        "design": job.tags["config"],
        "back_channels": job.tags["back_channels"],
        "frequency_ghz": stats.frequency_ghz,
        "gteps": stats.gteps,
    } for job, stats in zip(outcome.jobs, outcome.stats)]


def fig12_rows(dataset: str = "R14", buffer_sizes=FIG12_BUFFER_SIZES,
               graph: CSRGraph | None = None,
               num_workers: int | None = 1, cache=None) -> list[dict]:
    """Fig. 12: throughput versus per-channel FIFO buffer size.

    "We keep all designs in HiGraph the same except for the dataflow
    propagation stage, in which we replace MDP-network with
    FIFO-plus-crossbar design."
    """
    target = _figure_graph(dataset, graph)
    pr = bench_algorithm_entry("PR")
    # buffer size outermost (the paper's x-axis order), so one planner
    # call per size rather than one sweep_axes expansion
    jobs = []
    for entries in buffer_sizes:
        jobs += plan_jobs([pr], [target], {
            "MDP-network": higraph(propagation_site="mdp", fifo_depth=entries),
            "FIFO+crossbar": higraph(propagation_site="crossbar",
                                     fifo_depth=entries),
        })
    outcome = run_sweep(jobs, num_workers=num_workers, cache=cache)
    return [{
        "design": job.tags["config"],
        "buffer_entries": job.config.fifo_depth,
        "gteps": stats.gteps,
    } for job, stats in zip(outcome.jobs, outcome.stats)]


def sec54_radix_rows(dataset: str = "R14", graph: CSRGraph | None = None,
                     num_workers: int | None = 1, cache=None) -> list[dict]:
    """§5.4 radix study: 'a too large radix still encounters design
    centralization, which degrades the performance'."""
    jobs = plan_jobs(
        [bench_algorithm_entry("PR")],
        [_figure_graph(dataset, graph)],
        {"HiGraph": higraph(back_channels=SEC54_CHANNELS,
                            front_channels=SEC54_CHANNELS)},
        sweep_axes={"radix": SEC54_RADICES},
    )
    outcome = run_sweep(jobs, num_workers=num_workers, cache=cache)
    return [{
        "radix": job.tags["radix"],
        "frequency_ghz": stats.frequency_ghz,
        "gteps": stats.gteps,
        "cycles": stats.total_cycles,
    } for job, stats in zip(outcome.jobs, outcome.stats)]


def combining_ablation_rows(dataset: str = "R14",
                            graph: CSRGraph | None = None,
                            num_workers: int | None = 1, cache=None) -> list[dict]:
    """Extension ablation: vertex coalescing on/off at the propagation
    site for both interconnects (design-choice study from DESIGN.md)."""
    target = _figure_graph(dataset, graph)
    pr = bench_algorithm_entry("PR")
    jobs = []
    for combining in (True, False):
        jobs += plan_jobs([pr], [target], {
            "HiGraph": higraph(vertex_combining=combining),
            "GraphDynS": graphdyns(vertex_combining=combining),
        })
    outcome = run_sweep(jobs, num_workers=num_workers, cache=cache)
    return [{
        "design": job.tags["config"],
        "combining": job.config.vertex_combining,
        "gteps": stats.gteps,
    } for job, stats in zip(outcome.jobs, outcome.stats)]
