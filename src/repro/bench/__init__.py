"""Benchmark harness regenerating every table and figure of the paper."""

from repro.bench.figures import (
    FIG10_STEPS,
    FIG11_GRAPHDYNS_CHANNELS,
    FIG11_HIGRAPH_CHANNELS,
    FIG12_BUFFER_SIZES,
    SEC54_RADICES,
    combining_ablation_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
    sec54_radix_rows,
)
from repro.bench.charts import bar_chart, series_chart
from repro.bench.report import REPORT_SECTIONS, build_report, collect_results, write_report
from repro.bench.harness import (
    BENCH_PR_ITERATIONS,
    DEFAULT_BENCH_SCALES,
    MatrixResult,
    bench_scale,
    format_table,
    load_bench_graph,
    make_bench_algorithm,
    paper_configs,
    run_matrix,
    save_rows,
)

__all__ = [
    "run_matrix",
    "MatrixResult",
    "paper_configs",
    "bench_scale",
    "load_bench_graph",
    "make_bench_algorithm",
    "format_table",
    "save_rows",
    "DEFAULT_BENCH_SCALES",
    "BENCH_PR_ITERATIONS",
    "fig10_rows",
    "fig11_rows",
    "fig12_rows",
    "sec54_radix_rows",
    "combining_ablation_rows",
    "FIG10_STEPS",
    "FIG11_HIGRAPH_CHANNELS",
    "FIG11_GRAPHDYNS_CHANNELS",
    "FIG12_BUFFER_SIZES",
    "SEC54_RADICES",
    "REPORT_SECTIONS",
    "build_report",
    "collect_results",
    "write_report",
    "bar_chart",
    "series_chart",
]
