"""Cache-driven report regeneration: cache → figures → report, one call.

Every section of the consolidated report
(:data:`repro.bench.report.REPORT_SECTIONS`) maps here to the sweep
planner/assembler pair that produces its rows (:data:`SECTIONS`).
:func:`regenerate` pulls each section through the sweep executor — so a
**warm result cache regenerates the whole report with zero simulator
invocations** — renders the per-section ``.txt`` tables exactly as the
benchmark suite does, and rebuilds ``REPORT.md``.

Two kinds of provenance are recorded:

* **deterministic** facts (code version, cache directory, planned job
  counts) go into ``REPORT.md`` itself, so a cold and a warm
  regeneration of the same configuration are byte-identical;
* **run accounting** (cache hit/miss counts, executed jobs, per-section
  and per-job wall times) necessarily differs between cold and warm
  runs and is written next to the report as
  ``REPORT.provenance.json`` and returned as :class:`RegenReport`.

Shared sweeps are planned once: Fig. 8 and Fig. 9 read one evaluation
matrix, Fig. 10(a) and 10(b) one ablation sweep.  Accounting for a
shared sweep is charged to the first section that triggers it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.figures import (
    combining_ablation_assemble,
    combining_ablation_jobs,
    fig10_assemble,
    fig10_jobs,
    fig11_assemble,
    fig11_jobs,
    fig12_assemble,
    fig12_jobs,
    latency_ablation_assemble,
    latency_ablation_jobs,
    sec54_radix_assemble,
    sec54_radix_jobs,
    slicing_assemble,
    slicing_jobs,
    table1_config_rows,
    table2_dataset_rows,
)
from repro.bench.harness import (
    format_table,
    matrix_from_outcome,
    matrix_jobs,
    save_rows,
)
from repro.bench.report import REPORT_SECTIONS, build_report
from repro.errors import SweepError
from repro.sweep import ResultCache, code_version, run_sweep

#: Figure-name shortcuts (CLI ``--figure`` / ``--section`` aliases) to
#: report section keys.
FIGURE_SECTIONS: dict[str, tuple[str, ...]] = {
    "table1": ("table1_configs",),
    "table2": ("table2_datasets",),
    "fig4": ("fig04_crossbar_frequency",),
    "fig7": ("fig07_memory_layout",),
    "fig8": ("fig08_speedup",),
    "fig9": ("fig09_throughput",),
    "fig10": ("fig10a_opt_throughput", "fig10b_starvation"),
    "fig11": ("fig11_scalability",),
    "fig12": ("fig12_buffer_size",),
    "radix": ("sec54_radix",),
    "area": ("sec54_area_power",),
    "slicing": ("discussion_slicing",),
    "combining": ("ablation_combining",),
    "latency": ("ablation_latency",),
}


class RegenContext:
    """Shared state for one regeneration pass: workers, cache, memos."""

    def __init__(self, num_workers: int | None = 1,
                 cache: ResultCache | str | os.PathLike | None = None,
                 runner: Callable | None = None) -> None:
        self.num_workers = num_workers
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        #: alternate sweep executor with run_sweep's signature; the serve
        #: daemon injects its scheduler here so report sections share the
        #: resident workers and in-flight dedup of directly submitted jobs
        self.runner = runner
        self._outcomes: dict[str, object] = {}

    def sweep(self, name: str, jobs_fn: Callable[[], list]):
        """Run (or reuse) one named sweep; returns (outcome, charged)."""
        outcome = self._outcomes.get(name)
        if outcome is not None:
            return outcome, False
        run = self.runner if self.runner is not None else run_sweep
        outcome = run(jobs_fn(), num_workers=self.num_workers,
                      cache=self.cache)
        self._outcomes[name] = outcome
        return outcome, True


def _accounting(outcome=None, charged: bool = False) -> dict:
    if outcome is None or not charged:
        return {"jobs": 0, "cache_hits": 0, "cache_misses": 0,
                "executed": 0, "sim_seconds": 0.0, "job_seconds": []}
    return {
        "jobs": len(outcome.jobs),
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "executed": outcome.executed,
        "sim_seconds": round(sum(outcome.job_seconds), 6),
        "job_seconds": [round(s, 6) for s in outcome.job_seconds],
    }


# ----------------------------------------------------------------------
# Section builders: ctx -> (rows, accounting)
# ----------------------------------------------------------------------

def _build_table1(ctx):
    return table1_config_rows(), _accounting()


def _build_table2(ctx):
    return table2_dataset_rows(), _accounting()


def _build_fig4(ctx):
    from repro.hw import fig4_rows
    return fig4_rows(), _accounting()


def _build_fig7(ctx):
    from repro.accel import fig7_layout
    return fig7_layout(), _accounting()


def _build_fig8(ctx):
    outcome, charged = ctx.sweep("matrix", matrix_jobs)
    return matrix_from_outcome(outcome).speedup_rows(), \
        _accounting(outcome, charged)


def _build_fig9(ctx):
    outcome, charged = ctx.sweep("matrix", matrix_jobs)
    return matrix_from_outcome(outcome).throughput_rows(), \
        _accounting(outcome, charged)


def _build_fig10(ctx):
    outcome, charged = ctx.sweep("fig10", fig10_jobs)
    return fig10_assemble(outcome), _accounting(outcome, charged)


def _build_fig11(ctx):
    outcome, charged = ctx.sweep("fig11", fig11_jobs)
    return fig11_assemble(outcome), _accounting(outcome, charged)


def _build_fig12(ctx):
    outcome, charged = ctx.sweep("fig12", fig12_jobs)
    return fig12_assemble(outcome), _accounting(outcome, charged)


def _build_radix(ctx):
    outcome, charged = ctx.sweep("radix", sec54_radix_jobs)
    return sec54_radix_assemble(outcome), _accounting(outcome, charged)


def _build_area(ctx):
    from repro.hw import sec54_rows
    return sec54_rows(), _accounting()


def _build_slicing(ctx):
    outcome, charged = ctx.sweep("slicing", slicing_jobs)
    return slicing_assemble(outcome), _accounting(outcome, charged)


def _build_combining(ctx):
    outcome, charged = ctx.sweep("combining", combining_ablation_jobs)
    return combining_ablation_assemble(outcome), _accounting(outcome, charged)


def _build_latency(ctx):
    outcome, charged = ctx.sweep("latency", latency_ablation_jobs)
    return latency_ablation_assemble(outcome), _accounting(outcome, charged)


@dataclass(frozen=True)
class SectionSpec:
    """How one report section regenerates and formats.

    ``table_title``/``columns``/``floatfmt`` mirror the ``emit(...)``
    calls of the benchmark suite exactly, so a regenerated ``.txt`` is
    byte-identical to what a benchmark run writes for the same rows.
    ``chart`` (optional) renders the rows as the section's unicode
    chart for ``repro report --charts``.
    """

    key: str
    build: Callable
    table_title: str
    columns: tuple[str, ...] | None = None
    floatfmt: str = ".2f"
    #: section rides the sweep engine (its rows come from cached sims)
    simulated: bool = True
    #: rows -> unicode chart text (``bench/charts.py``), or None
    chart: Callable | None = None


# -- chart builders (repro report --charts) ----------------------------
# The same bar/series shapes `repro figure` prints interactively, one
# per section whose rows have a natural chart.

def _chart_fig4(rows):
    from repro.bench.charts import bar_chart
    return bar_chart(rows, "ports", "frequency_ghz",
                     title="crossbar frequency (GHz) vs ports")


def _chart_fig8(rows):
    from repro.bench.charts import bar_chart
    return bar_chart(rows, "dataset", "speedup_higraph",
                     group_key="algorithm",
                     title="HiGraph speedup over GraphDynS")


def _chart_fig9(rows):
    from repro.bench.charts import bar_chart
    return bar_chart(rows, "dataset", "higraph_gteps",
                     group_key="algorithm", title="HiGraph GTEPS")


def _chart_fig10a(rows):
    from repro.bench.charts import bar_chart
    return bar_chart(rows, "step", "gteps", group_key="algorithm",
                     title="GTEPS per optimization step")


def _chart_fig10b(rows):
    from repro.bench.charts import bar_chart
    return bar_chart(rows, "step", "starvation_cycles",
                     group_key="algorithm",
                     title="vPE starvation cycles per optimization step")


def _chart_fig11(rows):
    from repro.bench.charts import series_chart
    return series_chart(rows, "back_channels", "gteps", "design",
                        title="GTEPS vs back-end channels")


def _chart_fig12(rows):
    from repro.bench.charts import series_chart
    return series_chart(rows, "buffer_entries", "gteps", "design",
                        title="GTEPS vs per-channel buffer entries")


def _chart_radix(rows):
    from repro.bench.charts import bar_chart
    return bar_chart(rows, "radix", "gteps", title="GTEPS per radix")


_SECTION_SPECS = (
    SectionSpec("table1_configs", _build_table1,
                "Table 1: configurations", simulated=False),
    SectionSpec("table2_datasets", _build_table2,
                "Table 2: benchmark datasets", floatfmt=".4g", simulated=False),
    SectionSpec("fig04_crossbar_frequency", _build_fig4,
                "Fig. 4: frequency vs crossbar ports", floatfmt=".3f",
                simulated=False, chart=_chart_fig4),
    SectionSpec("fig07_memory_layout", _build_fig7,
                "Fig. 7: on-chip memory layout", simulated=False),
    SectionSpec("fig08_speedup", _build_fig8,
                "Fig. 8: speedup over GraphDynS", chart=_chart_fig8),
    SectionSpec("fig09_throughput", _build_fig9,
                "Fig. 9: throughput (GTEPS)", chart=_chart_fig9),
    SectionSpec("fig10a_opt_throughput", _build_fig10,
                "Fig. 10(a): effect of optimizations on throughput (R14)",
                chart=_chart_fig10a),
    SectionSpec("fig10b_starvation", _build_fig10,
                "Fig. 10(b): vPE starvation cycles (R14)",
                columns=("algorithm", "step", "starvation_cycles"),
                floatfmt=".0f", chart=_chart_fig10b),
    SectionSpec("fig11_scalability", _build_fig11,
                "Fig. 11: throughput vs back-end channels (PR, R14)",
                chart=_chart_fig11),
    SectionSpec("fig12_buffer_size", _build_fig12,
                "Fig. 12: throughput vs FIFO buffer size (PR, R14)",
                chart=_chart_fig12),
    SectionSpec("sec54_radix", _build_radix,
                "Sec. 5.4: radix design option (PR, R14)", floatfmt=".3f",
                chart=_chart_radix),
    SectionSpec("sec54_area_power", _build_area,
                "Sec. 5.4: area and power of the propagation site",
                floatfmt=".3f", simulated=False),
    SectionSpec("discussion_slicing", _build_slicing,
                "Sec. 5.3: sliced execution with double buffering (PR, R14)",
                floatfmt=".1f"),
    SectionSpec("ablation_combining", _build_combining,
                "Ablation: vertex coalescing at the propagation site (PR, R14)"),
    SectionSpec("ablation_latency", _build_latency,
                "Ablation: trading latency for throughput (Sec. 2.2)"),
)

#: Section key -> spec, in report order.  Covers every REPORT_SECTIONS
#: key (asserted by the test suite).
SECTIONS: dict[str, SectionSpec] = {s.key: s for s in _SECTION_SPECS}


def resolve_sections(names=None) -> list[str]:
    """Expand section keys and figure aliases into report-ordered keys.

    ``None`` (or empty) selects every section.  Unknown names raise
    :class:`~repro.errors.SweepError` listing what is accepted.
    """
    if not names:
        return [key for key, _ in REPORT_SECTIONS]
    wanted: set[str] = set()
    for name in names:
        name = str(name).strip()
        if name in SECTIONS:
            wanted.add(name)
        elif name.lower() in FIGURE_SECTIONS:
            wanted.update(FIGURE_SECTIONS[name.lower()])
        else:
            known = sorted(SECTIONS) + sorted(FIGURE_SECTIONS)
            raise SweepError(
                f"unknown report section {name!r}; known sections/aliases: "
                f"{', '.join(known)}")
    return [key for key, _ in REPORT_SECTIONS if key in wanted]


@dataclass
class RegenReport:
    """What one :func:`regenerate` call produced and what it cost."""

    results_dir: str
    report_path: str
    provenance_path: str
    cache_dir: str | None
    code_version: str
    sections: list[dict] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def total_jobs(self) -> int:
        return sum(s["jobs"] for s in self.sections)

    @property
    def cache_hits(self) -> int:
        return sum(s["cache_hits"] for s in self.sections)

    @property
    def cache_misses(self) -> int:
        return sum(s["cache_misses"] for s in self.sections)

    @property
    def executed(self) -> int:
        return sum(s["executed"] for s in self.sections)

    def provenance(self) -> dict:
        """Run accounting for the JSON sidecar (volatile across runs)."""
        return {
            "results_dir": self.results_dir,
            "report": self.report_path,
            "cache_dir": self.cache_dir,
            "code_version": self.code_version,
            "wall_seconds": round(self.wall_seconds, 6),
            "totals": {
                "jobs": self.total_jobs,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "executed": self.executed,
            },
            "sections": self.sections,
        }


def regenerate(results_dir: str, sections=None, num_workers: int | None = 1,
               cache: ResultCache | str | os.PathLike | None = None,
               report_path: str | None = None,
               provenance_path: str | None = None,
               progress: Callable[[dict], None] | None = None,
               charts: bool = False,
               runner: Callable | None = None) -> RegenReport:
    """Regenerate section tables and the consolidated report from cache.

    Renders each selected section's ``.txt`` under ``results_dir`` (rows
    pulled through the sweep executor, so a warm ``cache`` simulates
    nothing), rebuilds ``REPORT.md`` from everything present in
    ``results_dir``, and writes the run-accounting sidecar.  With
    ``charts``, sections that declare a chart also render it as
    ``<key>.chart.txt`` and REPORT.md embeds the charts under the
    tables (same rows, so cold and warm runs stay byte-identical).
    ``progress``, if given, is called with each finished section record.
    ``runner`` substitutes the sweep executor (run_sweep's signature);
    the serve daemon passes its scheduler so section sweeps run on the
    resident worker pool.
    """
    keys = resolve_sections(sections)
    ctx = RegenContext(num_workers=num_workers, cache=cache, runner=runner)
    start = time.monotonic()
    os.makedirs(results_dir, exist_ok=True)

    records: list[dict] = []
    rendered: list[tuple[str, str]] = []
    rendered_charts: list[tuple[str, str]] = []
    for key in keys:
        spec = SECTIONS[key]
        t0 = time.perf_counter()
        rows, acct = spec.build(ctx)
        text = format_table(
            rows, columns=list(spec.columns) if spec.columns else None,
            title=spec.table_title, floatfmt=spec.floatfmt)
        rendered.append((key, text))
        if spec.chart is not None and (charts or os.path.exists(
                os.path.join(results_dir, f"{key}.chart.txt"))):
            # an existing chart file is refreshed even without --charts:
            # a chart must always derive from the same rows as the table
            # above it, never from a previous regeneration's cache state
            rendered_charts.append((key, spec.chart(rows)))
        record = {"section": key, "rows": len(rows), "simulated": spec.simulated,
                  "wall_seconds": round(time.perf_counter() - t0, 6), **acct}
        records.append(record)
        if progress is not None:
            progress(record)

    # write the tables only after every sweep has finished, so each
    # .txt postdates every cache entry this pass produced — the report's
    # staleness check must not flag its own output
    for key, text in rendered:
        save_rows(os.path.join(results_dir, f"{key}.txt"), text)
    for key, text in rendered_charts:
        save_rows(os.path.join(results_dir, f"{key}.chart.txt"), text)

    cache_dir = str(ctx.cache.root) if ctx.cache is not None else None
    report_path = report_path or os.path.join(results_dir, "REPORT.md")
    provenance_path = provenance_path or os.path.join(
        os.path.dirname(report_path) or ".", "REPORT.provenance.json")

    version = code_version()
    report_text = build_report(
        results_dir, cache_dir=cache_dir, charts=charts,
        provenance={
            "code version": version,
            "result cache": cache_dir or "(none — simulated in-process)",
            "sections regenerated":
                f"{len(records)} of {len(REPORT_SECTIONS)}",
            "sweep jobs planned": str(sum(r["jobs"] for r in records)),
            "run accounting": f"`{os.path.basename(provenance_path)}` "
                              "(hits/misses and wall times vary per run)",
        })
    with open(report_path, "w", encoding="utf-8") as fh:
        fh.write(report_text)

    report = RegenReport(
        results_dir=results_dir,
        report_path=report_path,
        provenance_path=provenance_path,
        cache_dir=cache_dir,
        code_version=version,
        sections=records,
        wall_seconds=time.monotonic() - start,
    )
    with open(provenance_path, "w", encoding="utf-8") as fh:
        json.dump(report.provenance(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return report
