"""Dispatcher (paper §4.2, last stage of Edge Array access).

"In the last stage, we just need to integrate a set of small and simple
units (i.e., Dispatcher) to distribute access requests to consecutive
output channels."

A Dispatcher owns a group of consecutive Edge Array banks.  Each cycle
it pops one {Off, Len} piece (already split to fit its group) and issues
``Len`` bank reads in parallel — one per consecutive bank — provided
every target ePE input queue can accept.  It interacts with only
``group_width`` banks, so it stays simple regardless of the total
channel count: the anti-centralization property.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hw.fifo import Fifo


class Dispatcher:
    """One consecutive-bank issue unit."""

    def __init__(self, index: int, banks: int, group_width: int,
                 queue_depth: int = 8) -> None:
        if group_width < 1 or banks < group_width:
            raise ConfigError("invalid dispatcher geometry")
        self.index = index
        self.banks = banks
        self.group_width = group_width
        self.bank_lo = index * group_width
        self.queue = Fifo(queue_depth)
        self.issued_requests = 0
        self.issued_reads = 0
        self.blocked_cycles = 0

    @property
    def can_accept(self) -> bool:
        return not self.queue.full

    def accept(self, off: int, length: int, payload) -> bool:
        """Queue a piece delivered by the range-splitting network."""
        if length < 1 or length > self.group_width:
            raise ConfigError(
                f"dispatcher {self.index}: piece len {length} exceeds group "
                f"width {self.group_width}")
        if self.queue.full:
            return False
        self.queue.push((off, length, payload))
        return True

    def issue(self, bank_space_free) -> list[tuple[int, int, object]]:
        """Issue the head piece's bank reads if all targets have space.

        ``bank_space_free(bank)`` tells whether the ePE input queue of a
        bank can take one more record this cycle.  Returns
        ``(bank, edge_index, payload)`` reads (empty when blocked/idle).
        """
        if self.queue.empty:
            return []
        off, length, payload = self.queue.peek()
        reads = [(off + j) % self.banks for j in range(length)]
        if any(not bank_space_free(b) for b in reads):
            self.blocked_cycles += 1
            return []
        self.queue.pop()
        self.issued_requests += 1
        self.issued_reads += length
        return [(b, off + j, payload) for j, b in enumerate(reads)]
