"""Replay Engine (paper §4.2).

"We insert Replay Engines to divide {Off, nOff} into several {Off, Len}
with an appropriate length."

A front-end request ``{Off, nOff}`` covers the edge indices
``[Off, nOff)``; those map onto interleaved Edge Array banks
``index mod m``.  The Replay Engine replays the request as pieces whose
bank spans are contiguous and **non-wrapping** (a piece never crosses
the bank m-1 -> 0 boundary) and no longer than ``max_len`` (default m,
the full bank window).  Non-wrapping pieces are what lets every later
MDP stage split a piece into at most ``radix`` contiguous sub-pieces.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError


def split_request(off: int, length: int, banks: int,
                  max_len: int | None = None) -> list[tuple[int, int]]:
    """Split ``{Off, Len}`` into non-wrapping pieces of bounded length.

    Pure function used by :class:`ReplayEngine` and by tests; the
    concatenation of the returned ``(off, len)`` pieces is exactly the
    input range.
    """
    if banks < 1:
        raise ConfigError(f"banks must be >= 1, got {banks}")
    if length < 0 or off < 0:
        raise ConfigError(f"invalid request off={off} len={length}")
    limit = banks if max_len is None else max_len
    if limit < 1:
        raise ConfigError(f"max_len must be >= 1, got {limit}")
    pieces = []
    while length > 0:
        start_bank = off % banks
        take = min(length, banks - start_bank, limit)
        pieces.append((off, take))
        off += take
        length -= take
    return pieces


class ReplayEngine:
    """Streams one request piece per cycle into the edge-access network.

    One engine serves one front-end channel (paper Fig. 6 shows a Replay
    Engine per channel feeding the MDP-network for Edge Array access).
    A multi-piece request occupies the engine for several cycles — the
    "replay" — while other engines keep issuing their own pieces, which
    is where the decentralization win over a single in-order window
    allocator comes from.
    """

    def __init__(self, banks: int, max_len: int | None = None,
                 queue_depth: int = 8) -> None:
        if queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        self.banks = banks
        self.max_len = banks if max_len is None else max_len
        self.queue_depth = queue_depth
        self._pending: deque = deque()   # (off, len, payload) requests
        self._pieces: deque = deque()    # pieces of the request in flight
        self.requests_accepted = 0
        self.pieces_emitted = 0

    @property
    def busy(self) -> bool:
        return bool(self._pending or self._pieces)

    @property
    def can_accept(self) -> bool:
        return len(self._pending) < self.queue_depth

    def accept(self, off: int, length: int, payload) -> bool:
        """Queue a front-end ``{Off, Len}`` request; False when full."""
        if not self.can_accept:
            return False
        self._pending.append((off, length, payload))
        self.requests_accepted += 1
        return True

    def emit(self):
        """The piece to present this cycle, or None (does not consume)."""
        if not self._pieces and self._pending:
            off, length, payload = self._pending.popleft()
            for p_off, p_len in split_request(off, length, self.banks, self.max_len):
                self._pieces.append((p_off, p_len, payload))
        return self._pieces[0] if self._pieces else None

    def consume(self) -> None:
        """Downstream accepted the emitted piece."""
        self._pieces.popleft()
        self.pieces_emitted += 1
