"""MDP-network variant for Edge Array access (paper §4.2).

Items are edge-fetch pieces ``{Off, Len}`` instead of single datums.
The network routes a piece toward the banks it covers; because "the
target range is becoming smaller as the data is propagated stage by
stage, correspondingly, we will split the input length into small
output length to make {Off, Len} fit in small target range."

The paper's worked example: with 16 banks, ``Off 4, Len 9`` spans banks
4..12; at the first stage (target ranges 0-7 / 8-15) it splits into
``Off 4, Len 4`` (banks 4-7) and ``Off 8, Len 5`` (banks 8-12).  After
the last stage each piece fits one Dispatcher's consecutive-bank group.

Positions correspond to dispatcher indices; a piece's destination
"address" is the dispatcher-index range covering its bank span, one
base-r digit resolved per stage, so the wiring plan is exactly the one
Algorithm 1 generates for ``num_dispatchers`` channels.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError, SimulationError
from repro.mdp.generator import generate_network


def split_by_blocks(off: int, length: int, banks: int,
                    block: int) -> list[tuple[int, int, int]]:
    """Cut a non-wrapping piece at ``block``-aligned bank boundaries.

    Returns ``(off, len, block_index)`` sub-pieces, where ``block_index``
    is ``start_bank // block`` — the quantity whose base-r digit routes
    the sub-piece.  Pure helper shared with tests.
    """
    if length < 0:
        raise ConfigError(f"negative length {length}")
    start_bank = off % banks
    if start_bank + length > banks:
        raise ConfigError(
            f"piece off={off} len={length} wraps the bank space "
            "(Replay Engine must pre-split)")
    pieces = []
    while length > 0:
        take = min(length, block - (start_bank % block))
        pieces.append((off, take, start_bank // block))
        off += take
        start_bank += take
        length -= take
    return pieces


class RangeSplitNetwork:
    """MDP-network whose stages split {Off, Len} pieces by target range.

    Parameters
    ----------
    banks:
        Total interleaved Edge Array banks (back-end channels, ``m``).
    num_dispatchers:
        Output positions; each covers ``banks / num_dispatchers``
        consecutive banks (the paper's Fig. 6 shows groups of 4).
    radix, fifo_depth:
        As in :class:`~repro.mdp.network.MdpNetworkSim`.
    """

    def __init__(self, banks: int, num_dispatchers: int, radix: int = 2,
                 fifo_depth: int = 16) -> None:
        if banks < 1 or num_dispatchers < 1:
            raise ConfigError("banks and num_dispatchers must be >= 1")
        if banks % num_dispatchers:
            raise ConfigError(
                f"banks {banks} not divisible by dispatchers {num_dispatchers}")
        if num_dispatchers < radix:
            raise ConfigError(
                f"need num_dispatchers >= radix, got {num_dispatchers} < {radix}")
        if fifo_depth < radix:
            raise ConfigError("fifo_depth must be >= radix")
        self.banks = banks
        self.num_dispatchers = num_dispatchers
        self.group_width = banks // num_dispatchers
        self.plan = generate_network(num_dispatchers, radix)
        self.radix = radix
        self.fifo_depth = fifo_depth
        self.num_stages = self.plan.num_stages
        self.stage_queues: list[list[deque]] = [
            [deque() for _ in range(num_dispatchers)] for _ in range(self.num_stages)
        ]
        # per stage: block size in banks + per-position module ports
        self._stage_block: list[int] = []
        self._stage_ports: list[list[tuple[int, ...]]] = []
        for stage in self.plan.stages:
            self._stage_block.append(self.group_width * radix ** stage.digit_index)
            ports: list[tuple[int, ...] | None] = [None] * num_dispatchers
            for module in stage.modules:
                for p in module.channels:
                    ports[p] = module.channels
            self._stage_ports.append(ports)  # type: ignore[arg-type]
        self.offered_pieces = 0
        self.offered_edges = 0
        self.delivered_pieces = 0
        self.delivered_edges = 0
        self.splits = 0
        self.stall_events = 0
        self.rejected_offers = 0

    # ------------------------------------------------------------------
    def _try_insert(self, stage: int, entry_pos: int, off: int, length: int,
                    payload) -> bool:
        """Split at ``stage`` granularity and push sub-pieces atomically."""
        block = self._stage_block[stage]
        ports = self._stage_ports[stage][entry_pos]
        subs = split_by_blocks(off, length, self.banks, block)
        targets = []
        for s_off, s_len, block_idx in subs:
            digit = block_idx % self.radix
            targets.append((ports[digit], s_off, s_len))
        queues = self.stage_queues[stage]
        if any(self.fifo_depth - len(queues[t]) < self.radix for t, _, _ in targets):
            return False
        for t, s_off, s_len in targets:
            queues[t].append((s_off, s_len, payload))
        self.splits += max(0, len(subs) - 1)
        return True

    def offer(self, channel: int, off: int, length: int, payload) -> bool:
        """Inject a Replay-Engine piece at input ``channel``."""
        if not 0 <= channel < self.num_dispatchers:
            raise ConfigError(f"input channel {channel} out of range")
        if length < 1:
            raise ConfigError(f"piece length must be >= 1, got {length}")
        if self._try_insert(0, channel, off, length, payload):
            self.offered_pieces += 1
            self.offered_edges += length
            return True
        self.rejected_offers += 1
        return False

    # ------------------------------------------------------------------
    def deliver(self, sink_ready) -> list[tuple[int, tuple[int, int, object]]]:
        """Pop one piece per ready dispatcher from the final stage.

        Returns ``(dispatcher, (off, len, payload))`` tuples; delivered
        pieces always fit the dispatcher's bank group.
        """
        out = []
        last = self.stage_queues[self.num_stages - 1]
        g = self.group_width
        for p in range(self.num_dispatchers):
            queue = last[p]
            if queue and sink_ready[p]:
                off, length, payload = queue.popleft()
                start_bank = off % self.banks
                if not (p * g <= start_bank and start_bank + length <= (p + 1) * g):
                    raise SimulationError(
                        f"piece off={off} len={length} outside dispatcher {p} group")
                out.append((p, (off, length, payload)))
                self.delivered_pieces += 1
                self.delivered_edges += length
        return out

    def advance(self) -> None:
        """Move heads one stage forward (with splitting), last stage first."""
        for s in range(self.num_stages - 1, 0, -1):
            prev = self.stage_queues[s - 1]
            for p in range(self.num_dispatchers):
                queue = prev[p]
                if not queue:
                    continue
                off, length, payload = queue[0]
                if self._try_insert(s, p, off, length, payload):
                    queue.popleft()
                else:
                    self.stall_events += 1

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(len(q) for stage in self.stage_queues for q in stage)

    @property
    def drained(self) -> bool:
        return all(not q for stage in self.stage_queues for q in stage)
