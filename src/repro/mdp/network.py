"""Cycle-level model of an MDP-network (paper §3).

Data is pushed in at any input channel together with its destination
channel id; every cycle each datum advances at most one stage, steered
by one base-r digit of the destination, and is buffered in the stage's
rW1R FIFO.  Propagation is deterministic — no arbitration anywhere —
so the only stall condition is a full downstream FIFO:

* the head-of-line datum never waits on a *grant* (crossbars lose slots
  to arbitration), and
* each FIFO interacts with exactly ``radix`` writers, keeping the
  implementation decentralized (frequency model: ``repro.hw.timing``).

Throughput is paid for with latency: ``num_stages`` cycles minimum per
datum, the paper's "trading latency for throughput".
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError, SimulationError
from repro.mdp.generator import NetworkPlan, generate_network


class MdpNetworkSim:
    """Simulates one MDP-network instance.

    Items are ``(dest, payload)``; ``dest`` is the output channel.
    Protocol per simulated cycle (driven by the owning pipeline stage):

    1. ``deliver(sink_ready)`` — pop at most one datum per output
       channel whose sink can accept, returning the deliveries.
    2. ``advance()`` — move stage ``s-1`` heads into stage ``s`` FIFOs,
       from the last stage backwards (single-cycle-per-stage movement).
    3. ``offer(channel, dest, payload)`` — external writers inject into
       stage 0; at most one offer per input channel per cycle.

    The conservative nW1R acceptance rule (free >= radix) from §3.1
    gates every write.
    """

    def __init__(self, channels: int, radix: int = 2, fifo_depth: int = 16,
                 plan: NetworkPlan | None = None, combine_fn=None) -> None:
        if fifo_depth < radix:
            raise ConfigError(
                f"fifo_depth {fifo_depth} must be >= radix {radix} "
                "(nW1R FIFO never ready otherwise)")
        #: optional tail-combining (coalescing): when a pushed payload and
        #: the FIFO tail belong together (e.g. same destination vertex),
        #: ``combine_fn(tail_payload, new_payload)`` returns the merged
        #: payload (or None to decline) and no FIFO slot is consumed.
        #: Combining compounds across stages, which is how a reduction
        #: hotspot is absorbed faster than one record per cycle.
        self._combine = combine_fn
        self.combined = 0
        self.plan = plan or generate_network(channels, radix)
        self.channels = self.plan.channels
        self.radix = self.plan.radix
        self.fifo_depth = fifo_depth
        self.num_stages = self.plan.num_stages
        # stage_queues[s][p]: deque at the output of stage s, position p
        self.stage_queues: list[list[deque]] = [
            [deque() for _ in range(self.channels)] for _ in range(self.num_stages)
        ]
        # Precomputed routing: for stage s, position p ->
        #   (digit_divisor, [dest position per digit value])
        self._route: list[list[tuple[int, tuple[int, ...]]]] = []
        for stage in self.plan.stages:
            divisor = self.radix ** stage.digit_index
            per_pos: list[tuple[int, tuple[int, ...]] | None] = [None] * self.channels
            for module in stage.modules:
                entry = (divisor, module.channels)
                for p in module.channels:
                    per_pos[p] = entry
            self._route.append(per_pos)  # type: ignore[arg-type]
        # statistics
        self.offered = 0
        self.rejected_offers = 0
        self.delivered = 0
        self.stall_events = 0          # head could not advance (downstream full)
        self.cycles = 0
        self.occupancy_integral = 0

    # ------------------------------------------------------------------
    def _ready(self, stage: int, pos: int) -> bool:
        """Conservative nW1R readiness: free slots >= radix."""
        return self.fifo_depth - len(self.stage_queues[stage][pos]) >= self.radix

    def offer(self, channel: int, dest: int, payload) -> bool:
        """Inject at input ``channel``; False when backpressured."""
        if not 0 <= dest < self.channels:
            raise ConfigError(f"dest {dest} out of range [0, {self.channels})")
        divisor, ports = self._route[0][channel]
        target = ports[(dest // divisor) % self.radix]
        queue = self.stage_queues[0][target]
        if self._combine is not None and queue:
            tail_dest, tail_payload = queue[-1]
            if tail_dest == dest:
                merged = self._combine(tail_payload, payload)
                if merged is not None:
                    queue[-1] = (dest, merged)
                    self.combined += 1
                    self.offered += 1
                    return True
        if self.fifo_depth - len(queue) < self.radix:
            self.rejected_offers += 1
            return False
        queue.append((dest, payload))
        self.offered += 1
        return True

    def can_offer(self, channel: int, dest: int) -> bool:
        divisor, ports = self._route[0][channel]
        target = ports[(dest // divisor) % self.radix]
        return self._ready(0, target)

    # ------------------------------------------------------------------
    def deliver(self, sink_ready) -> list[tuple[int, object]]:
        """Pop one datum per ready output channel from the final stage."""
        out = []
        last = self.stage_queues[self.num_stages - 1]
        for p in range(self.channels):
            queue = last[p]
            if queue and sink_ready[p]:
                dest, payload = queue.popleft()
                if dest != p:
                    raise SimulationError(
                        f"MDP routing invariant broken: dest {dest} at position {p}")
                out.append((dest, payload))
        self.delivered += len(out)
        return out

    def advance(self) -> None:
        """Move heads one stage forward, last stage first."""
        self.cycles += 1
        radix = self.radix
        depth = self.fifo_depth
        combine = self._combine
        for s in range(self.num_stages - 1, 0, -1):
            prev = self.stage_queues[s - 1]
            cur = self.stage_queues[s]
            route = self._route[s]
            for p in range(self.channels):
                queue = prev[p]
                if not queue:
                    continue
                dest = queue[0][0]
                divisor, ports = route[p]
                target = ports[(dest // divisor) % radix]
                tq = cur[target]
                if combine is not None and tq and tq[-1][0] == dest:
                    merged = combine(tq[-1][1], queue[0][1])
                    if merged is not None:
                        tq[-1] = (dest, merged)
                        queue.popleft()
                        self.combined += 1
                        continue
                if depth - len(tq) >= radix:
                    tq.append(queue.popleft())
                else:
                    self.stall_events += 1

    def tick(self, sink_ready) -> list[tuple[int, object]]:
        """Convenience: deliver then advance (callers then offer())."""
        out = self.deliver(sink_ready)
        self.advance()
        return out

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(len(q) for stage in self.stage_queues for q in stage)

    @property
    def drained(self) -> bool:
        return all(not q for stage in self.stage_queues for q in stage)

    def note_occupancy(self) -> None:
        """Accumulate occupancy statistics (call once per cycle if wanted)."""
        self.occupancy_integral += self.occupancy
