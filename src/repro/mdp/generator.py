"""Automatic MDP-network generator — paper Algorithm 1, generalized to radix r.

The paper's open-source artifact is an automatic generator that wires an
MDP-network for ``n`` channels out of small FIFO modules:

* **Step 1 — module construction**: ``r`` rW1R FIFOs form one "rWrR
  module" (the paper's 2W2R module for radix 2).
* **Step 2 — input ports connection**: for stage ``i`` the channels are
  divided into ``r**i`` groups (``target_group``), each of size
  ``group_base = n / r**i``; within a group, input ``k`` pairs with the
  inputs ``k + t * channel_step`` (``channel_step = group_base / r``)
  and the module routes by the ``(log_r(n) - 1 - i)``-th base-r digit of
  the destination address.

With radix 2 and n = 4 this reproduces the paper's Fig. 5(d) example:
stage 1 connects pairs {0, 2} and {1, 3} switched by ``addr[1]``, stage
2 connects {0, 1} and {2, 3} switched by ``addr[0]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ModuleSpec:
    """One rWrR module: ``r`` input/output positions plus its routing digit.

    ``channels[t]`` is both the t-th input port position and the output
    position selected by destination digit value ``t``.
    """

    stage: int
    index: int
    channels: tuple[int, ...]
    digit_index: int            # which base-r digit of the destination routes here

    @property
    def radix(self) -> int:
        return len(self.channels)


@dataclass(frozen=True)
class StagePlan:
    """All modules of one MDP-network stage (they partition the channels)."""

    index: int
    digit_index: int
    modules: tuple[ModuleSpec, ...]

    def module_of(self, channel: int) -> ModuleSpec:
        for m in self.modules:
            if channel in m.channels:
                return m
        raise ConfigError(f"channel {channel} not wired in stage {self.index}")


@dataclass(frozen=True)
class NetworkPlan:
    """Complete wiring of an MDP-network (the generator's output)."""

    channels: int
    radix: int
    stages: tuple[StagePlan, ...]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def digit(self, dest: int, digit_index: int) -> int:
        """Base-``radix`` digit of a destination address."""
        return (dest // self.radix ** digit_index) % self.radix

    def route(self, dest: int) -> list[int]:
        """Positions a datum for ``dest`` occupies after each stage.

        Deterministic propagation (§3.1): entering at *any* input, after
        stage ``i`` the datum sits at the position selected by the
        destination's digits — the final position is ``dest`` itself.
        """
        positions = []
        pos = 0  # entry position does not affect the out-position sequence
        for stage in self.stages:
            module = stage.module_of(pos)
            pos = module.channels[self.digit(dest, stage.digit_index)]
            positions.append(pos)
        return positions


def _int_log(n: int, base: int) -> int:
    """log_base(n) for exact powers; raises otherwise."""
    count, value = 0, 1
    while value < n:
        value *= base
        count += 1
    if value != n:
        raise ConfigError(f"{n} is not a power of {base}")
    return count


def generate_network(channels: int, radix: int = 2) -> NetworkPlan:
    """Run Algorithm 1: produce the stage-by-stage wiring plan.

    ``channels`` must be an exact power of ``radix`` (the paper's
    generator shares this restriction: ``log_2 n`` stages of radix-2
    modules).
    """
    if radix < 2:
        raise ConfigError(f"radix must be >= 2, got {radix}")
    if channels < radix:
        raise ConfigError(
            f"need at least one module: channels {channels} < radix {radix}")
    num_stages = _int_log(channels, radix)

    stages = []
    for i in range(num_stages):                      # stage i  (Alg. 1 line 2)
        target_group = radix ** i                    # line 4
        group_base = channels // target_group        # line 5
        channel_step = group_base // radix           # line 6
        digit_index = num_stages - 1 - i             # line 15 ("(log2 n - i)th bit")
        modules = []
        for j in range(target_group):                # group j (line 7)
            real_base = group_base * j               # line 8
            for k in range(channel_step):            # pair k (line 9)
                ports = tuple(real_base + k + t * channel_step
                              for t in range(radix))  # lines 10-12, radix-r
                modules.append(ModuleSpec(stage=i, index=len(modules),
                                          channels=ports, digit_index=digit_index))
        stages.append(StagePlan(index=i, digit_index=digit_index,
                                modules=tuple(modules)))
    return NetworkPlan(channels=channels, radix=radix, stages=tuple(stages))


def pair_list(plan: NetworkPlan, stage: int) -> list[list[int]]:
    """Algorithm 1's ``pair_list`` for one stage (test/debug helper)."""
    return [list(m.channels) for m in plan.stages[stage].modules]


def validate_plan(plan: NetworkPlan) -> None:
    """Structural invariants every generated plan must satisfy."""
    n, r = plan.channels, plan.radix
    if r ** plan.num_stages != n:
        raise ConfigError("stage count does not cover the address space")
    for stage in plan.stages:
        seen: set[int] = set()
        for m in stage.modules:
            if len(m.channels) != r:
                raise ConfigError(f"module {m} is not radix {r}")
            seen.update(m.channels)
        if seen != set(range(n)):
            raise ConfigError(
                f"stage {stage.index} modules do not partition the channels")
    # deterministic routing reaches every destination
    for dest in range(n):
        if plan.route(dest)[-1] != dest:
            raise ConfigError(f"routing failed for destination {dest}")
