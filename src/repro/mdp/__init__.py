"""MDP-network: the paper's contribution.

* :mod:`repro.mdp.generator` — Algorithm 1 wiring generator (radix-r).
* :mod:`repro.mdp.netlist` — structural netlist + Verilog emission (the
  open-source artifact the paper publishes).
* :mod:`repro.mdp.network` — cycle-level network model (§3).
* :mod:`repro.mdp.replay` — Replay Engine, {Off, nOff} -> {Off, Len} (§4.2).
* :mod:`repro.mdp.range_network` — length-splitting variant for Edge
  Array access (§4.2).
* :mod:`repro.mdp.dispatcher` — consecutive-bank issue unit (§4.2).
"""

from repro.mdp.dispatcher import Dispatcher
from repro.mdp.generator import (
    ModuleSpec,
    NetworkPlan,
    StagePlan,
    generate_network,
    pair_list,
    validate_plan,
)
from repro.mdp.netlist import (
    Netlist,
    build_netlist,
    emit_verilog,
    netlist_summary,
)
from repro.mdp.network import MdpNetworkSim
from repro.mdp.range_network import RangeSplitNetwork, split_by_blocks
from repro.mdp.replay import ReplayEngine, split_request

__all__ = [
    "ModuleSpec",
    "StagePlan",
    "NetworkPlan",
    "generate_network",
    "pair_list",
    "validate_plan",
    "Netlist",
    "build_netlist",
    "emit_verilog",
    "netlist_summary",
    "MdpNetworkSim",
    "RangeSplitNetwork",
    "split_by_blocks",
    "ReplayEngine",
    "split_request",
    "Dispatcher",
]
