"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine bugs (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """A graph container is structurally invalid (bad offsets, dangling edges...)."""


class GenerationError(ReproError):
    """A synthetic graph generator was given unusable parameters."""


class ConfigError(ReproError):
    """An accelerator / network configuration is inconsistent or unsupported."""


class CapacityError(ReproError):
    """A dataset does not fit the modelled on-chip memory and slicing is disabled."""


class SimulationError(ReproError):
    """The cycle simulator reached an inconsistent state (internal invariant broken)."""


class FifoOverflowError(SimulationError, OverflowError):
    """A writer pushed into a full FIFO (backpressure was ignored).

    Subclasses :class:`OverflowError` so callers that predate the
    :class:`ReproError` taxonomy keep working unchanged.
    """


class StatsSchemaError(ReproError, ValueError):
    """A serialized :class:`SimStats` payload does not match the schema.

    Subclasses :class:`ValueError` so callers that predate the
    :class:`ReproError` taxonomy (e.g. cache loaders catching
    ``ValueError``) keep working unchanged.
    """


class SweepError(ReproError):
    """A sweep plan or execution request is malformed (unknown axis, bad job count...)."""


class ProtocolError(ReproError):
    """A serve-protocol message is malformed (bad JSON, unknown type, missing field)."""


class ProtocolVersionError(ProtocolError):
    """Peer speaks an incompatible serve-protocol version."""


class ServeError(ReproError):
    """The serve daemon rejected a request or failed while executing it."""
