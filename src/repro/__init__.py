"""repro — reproduction of "Alleviating Datapath Conflicts and Design
Centralization in Graph Analytics Acceleration" (HiGraph / MDP-network,
DAC 2022).

Layers, bottom-up:

* :mod:`repro.graph` — CSR graphs, generators, paper Table 2 datasets,
  slicing for on-chip memory.
* :mod:`repro.algorithms` — VCPM kernels (BFS, SSSP, SSWP, PR) and the
  functional golden-model engine.
* :mod:`repro.hw` — hardware primitives: FIFOs, arbiters, crossbars,
  banked SRAM, the calibrated timing/area/power models.
* :mod:`repro.mdp` — the paper's contribution: the MDP-network generator
  (Algorithm 1), netlist emission, and cycle-level network models
  including the Replay-Engine/range-splitting variant for Edge Array
  access.
* :mod:`repro.accel` — cycle-level simulators of HiGraph, HiGraph-mini
  and the GraphDynS baseline (Table 1 presets, Opt-O/E/D ablations).
* :mod:`repro.sweep` — sweep execution engine: plans {algorithm x
  dataset x config x axis} matrices into independent jobs, shards them
  across worker processes and caches results on disk (docs/sweep.md).
* :mod:`repro.bench` — the experiment harness regenerating every figure
  and table of the paper's evaluation, built on the sweep engine.
"""

__version__ = "1.0.0"

from repro.errors import (
    CapacityError,
    ConfigError,
    FifoOverflowError,
    GenerationError,
    GraphFormatError,
    ReproError,
    SimulationError,
    SweepError,
)

__all__ = [
    "__version__",
    "ReproError",
    "GraphFormatError",
    "GenerationError",
    "ConfigError",
    "CapacityError",
    "SimulationError",
    "FifoOverflowError",
    "SweepError",
]
