"""repro — reproduction of "Alleviating Datapath Conflicts and Design
Centralization in Graph Analytics Acceleration" (HiGraph / MDP-network,
DAC 2022).

Layers, bottom-up:

* :mod:`repro.graph` — CSR graphs, generators, paper Table 2 datasets,
  slicing for on-chip memory.
* :mod:`repro.algorithms` — VCPM kernels (BFS, SSSP, SSWP, PR) and the
  functional golden-model engine.
* :mod:`repro.hw` — hardware primitives: FIFOs, arbiters, crossbars,
  banked SRAM, the calibrated timing/area/power models.
* :mod:`repro.mdp` — the paper's contribution: the MDP-network generator
  (Algorithm 1), netlist emission, and cycle-level network models
  including the Replay-Engine/range-splitting variant for Edge Array
  access.
* :mod:`repro.accel` — cycle-level simulators of HiGraph, HiGraph-mini
  and the GraphDynS baseline (Table 1 presets, Opt-O/E/D ablations).
* :mod:`repro.sweep` — sweep execution engine: plans {algorithm x
  dataset x config x axis} matrices into independent jobs, shards them
  across worker processes and caches results on disk (docs/sweep.md).
* :mod:`repro.bench` — the experiment harness regenerating every figure
  and table of the paper's evaluation, built on the sweep engine.
* :mod:`repro.serve` — the warm-cache simulation service: a resident
  daemon executing sweeps/reports over a unix socket (docs/serving.md).
* :mod:`repro.api` — the public :class:`~repro.api.Session` facade
  (local or remote) every front end goes through.

Public surface
--------------
The supported top-level names are exactly :data:`PACKAGE_EXPORTS` plus
the error types — everything else under ``repro.*`` is implementation
that may change without notice.  Exports resolve lazily (PEP 562), so
``import repro`` stays cheap; a handful of legacy top-level spellings
keep working through deprecation shims that point at the replacement.
The ``api-surface`` lint rule holds this module to that manifest.
"""

import importlib
import warnings
from types import MappingProxyType

__version__ = "1.1.0"

from repro.errors import (
    CapacityError,
    ConfigError,
    FifoOverflowError,
    GenerationError,
    GraphFormatError,
    ProtocolError,
    ProtocolVersionError,
    ReproError,
    ServeError,
    SimulationError,
    SweepError,
)

#: The supported public surface: exported name -> defining module.
#: Frozen on purpose — growing the API is a reviewed change to this
#: manifest (and to its tests), never a side effect of an import.
PACKAGE_EXPORTS: "MappingProxyType[str, str]" = MappingProxyType({
    # the Session facade (repro.api)
    "Session": "repro.api",
    "LocalSession": "repro.api",
    "RemoteSession": "repro.api",
    "session": "repro.api",
    # the serve daemon's client (repro.serve)
    "ServeClient": "repro.serve.client",
    # job planning / results vocabulary the facade speaks
    "SweepJob": "repro.sweep.jobs",
    "GraphSpec": "repro.sweep.jobs",
    "SweepOutcome": "repro.sweep.executor",
    "AcceleratorConfig": "repro.accel.config",
    "SimStats": "repro.accel.stats",
})

#: Legacy top-level spellings: name -> (defining module, replacement).
#: Access works but warns; the lint rule forbids in-repo use.
_DEPRECATED_EXPORTS: "MappingProxyType[str, tuple[str, str]]" = MappingProxyType({
    "run_sweep": ("repro.sweep.executor",
                  "repro.session(...).sweep(jobs) or repro.sweep.run_sweep"),
    "ResultCache": ("repro.sweep.cache",
                    "repro.session(cache_dir=...) or repro.sweep.ResultCache"),
    "code_version": ("repro.sweep.cache", "repro.sweep.code_version"),
})

__all__ = [
    "__version__",
    "PACKAGE_EXPORTS",
    "ReproError",
    "GraphFormatError",
    "GenerationError",
    "ConfigError",
    "CapacityError",
    "SimulationError",
    "FifoOverflowError",
    "SweepError",
    "ProtocolError",
    "ProtocolVersionError",
    "ServeError",
    *PACKAGE_EXPORTS,
]


def __getattr__(name: str):
    """PEP 562 lazy exports driven by the manifests above."""
    target = PACKAGE_EXPORTS.get(name)
    if target is not None:
        value = getattr(importlib.import_module(target), name)
        globals()[name] = value          # resolve once per process
        return value
    deprecated = _DEPRECATED_EXPORTS.get(name)
    if deprecated is not None:
        module, replacement = deprecated
        warnings.warn(
            f"repro.{name} is deprecated; use {replacement}",
            DeprecationWarning, stacklevel=2)
        return getattr(importlib.import_module(module), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(PACKAGE_EXPORTS)
                  | set(_DEPRECATED_EXPORTS))
