"""The serve job queue: content-addressed dedup + claimed execution.

Jobs are identified by their sweep cache key — graph fingerprint,
config hash, engine equivalence class, code version — which gives the
scheduler three tiers of "don't simulate again", checked in order:

1. **result cache** — the entry already exists: a hit, no work;
2. **in-flight dedup** — an identical job (same key) is already
   queued/running for *any* ticket in this daemon: the new job attaches
   to the existing execution's future, so concurrent identical
   submissions provably collapse to one simulation;
3. **cache claims** — another daemon/host sharing the cache directory
   holds the claim for this key: poll the cache until their entry
   lands (or their claim goes stale and we take over) instead of
   computing it twice.

Everything else reuses the sweep layer unchanged: dispatch order is
:func:`repro.sweep.executor.scheduled_order` ranked by the learned
per-family cost model when cache provenance allows, and completed
results are written back with the same provenance shape ``run_sweep``
writes (plus the daemon's code generation), so the cost model keeps
learning across daemon restarts and CLI runs alike.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field

from repro.accel.stats import SimStats
from repro.errors import ServeError
from repro.sweep.cache import ResultCache, code_generation
from repro.sweep.executor import (
    SweepOutcome,
    learned_cost_model,
    scheduled_order,
)
from repro.sweep.jobs import SweepJob
from repro.serve.workers import WorkerPool

#: Seconds between cache polls while another owner computes a key.
CLAIM_POLL_SECONDS = 0.05


@dataclass
class Ticket:
    """One submission: jobs, live progress, and (eventually) an outcome."""

    id: str
    jobs: list[SweepJob]
    state: str = "queued"             # queued | running | done | failed
    done: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    error: str | None = None
    outcome: SweepOutcome | None = None
    #: (done, total, job description) per finished job, for streaming
    events: list[tuple[int, int, str]] = field(default_factory=list)
    changed: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def total(self) -> int:
        return len(self.jobs)

    def _mark(self) -> None:
        # wake every streamer, then re-arm for the next event
        self.changed.set()
        self.changed = asyncio.Event()


class Scheduler:
    """Owns the ticket table and the in-flight key map."""

    def __init__(self, cache: ResultCache | None, pool: WorkerPool,
                 version: str) -> None:
        self.cache = cache
        self.pool = pool
        self.version = version
        self.tickets: dict[str, Ticket] = {}
        #: cache key -> future resolving to its SimStats (owner's run)
        self._inflight: dict[str, asyncio.Future] = {}
        self._ticket_ids = itertools.count(1)
        self.executed_total = 0
        self.hits_total = 0
        self.deduped_total = 0

    # ------------------------------------------------------------------
    def submit(self, jobs: list[SweepJob]) -> Ticket:
        """Register a submission and start it; returns immediately."""
        if not jobs:
            raise ServeError("submit requires at least one job")
        ticket = Ticket(id=f"t{next(self._ticket_ids)}", jobs=jobs)
        self.tickets[ticket.id] = ticket
        asyncio.get_running_loop().create_task(self._run_ticket(ticket))
        return ticket

    async def _run_ticket(self, ticket: Ticket) -> None:
        ticket.state = "running"
        try:
            ticket.outcome = await self.run_jobs(ticket.jobs, ticket=ticket)
            ticket.state = "done"
        except Exception as exc:         # lint: allow=exception-hygiene
            # a ticket failure must reach its (possibly not-yet-attached)
            # fetcher as a payload, not kill the daemon loop
            ticket.state = "failed"
            ticket.error = f"{type(exc).__name__}: {exc}"
        ticket._mark()

    async def wait(self, ticket: Ticket) -> SweepOutcome:
        while ticket.state not in ("done", "failed"):
            await ticket.changed.wait()
        if ticket.state == "failed":
            raise ServeError(f"ticket {ticket.id} failed: {ticket.error}")
        assert ticket.outcome is not None
        return ticket.outcome

    # ------------------------------------------------------------------
    async def run_jobs(self, jobs: list[SweepJob],
                       ticket: Ticket | None = None) -> SweepOutcome:
        """Execute a job list with dedup + claims; stats in job order.

        Accounting matches :func:`repro.sweep.executor.run_sweep`:
        duplicate keys inside one submission and attachments to another
        ticket's in-flight execution both count as cache hits (nothing
        was simulated for them); ``extra["deduped"]`` additionally
        reports how many attached to a concurrent execution.
        """
        start = time.monotonic()
        n = len(jobs)
        keys = [job.cache_key(self.version) for job in jobs]
        results: list[SimStats | None] = [None] * n
        job_seconds = [0.0] * n
        hits = executed = deduped = 0

        pending: list[tuple[int, SweepJob]] = []   # this ticket's own runs
        attached: list[tuple[int, asyncio.Future]] = []
        key_owner: dict[str, int] = {}
        for i, (job, key) in enumerate(zip(jobs, keys)):
            if key in key_owner:
                continue                 # filled from the owner's result
            stats = self.cache.get(key) if self.cache is not None else None
            if stats is not None:
                results[i] = stats
                hits += 1
                continue
            running = self._inflight.get(key)
            if running is not None:
                attached.append((i, running))
                deduped += 1
                continue
            key_owner[key] = i
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            pending.append((i, job))

        def _record_done(index: int) -> None:
            if ticket is not None:
                ticket.done += 1
                ticket.events.append(
                    (ticket.done, n, jobs[index].describe()))
                ticket._mark()

        # report cache hits as progress immediately, in job order
        for i in range(n):
            if results[i] is not None:
                _record_done(i)

        async def _own(index: int, job: SweepJob) -> None:
            nonlocal executed
            key = keys[index]
            future = self._inflight[key]
            try:
                stats, seconds, ran = await self._execute_owned(key, job)
            except Exception as exc:     # lint: allow=exception-hygiene
                # attached waiters (this ticket's and other tickets')
                # must see the failure; re-raised below via the future
                self._inflight.pop(key, None)
                if not future.done():
                    future.set_exception(exc)
                    # mark retrieved: with no attached waiters the event
                    # loop would otherwise log "exception never retrieved"
                    future.exception()
                raise
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(stats)
            results[index] = stats
            if ran:
                job_seconds[index] = seconds
                executed += 1
                self.executed_total += 1
            _record_done(index)

        if pending:
            cost_fn = (learned_cost_model(
                self.cache, [job for _, job in pending])
                if len(pending) > self.pool.size else None)
            ordered = scheduled_order(pending, cost_fn)
            await asyncio.gather(*(_own(i, job) for i, job in ordered))

        for index, future in attached:
            results[index] = await asyncio.shield(future)
            hits += 1
            _record_done(index)

        # duplicate keys inside this submission fill from their owner
        by_key = {keys[i]: results[i] for i in range(n)
                  if results[i] is not None}
        for i in range(n):
            if results[i] is None:
                results[i] = by_key[keys[i]]
                hits += 1
                _record_done(i)

        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise ServeError(f"jobs {missing} produced no result "
                             "(scheduler bug)")

        self.hits_total += hits
        self.deduped_total += deduped
        if ticket is not None:
            ticket.executed = executed
            ticket.cache_hits = hits
            ticket.deduped = deduped
        return SweepOutcome(
            jobs=jobs,
            stats=results,               # type: ignore[arg-type]
            cache_hits=hits,
            cache_misses=n - hits,
            executed=executed,
            workers_used=self.pool.size,
            wall_seconds=time.monotonic() - start,
            job_seconds=job_seconds,
            extra={"deduped": deduped},
        )

    async def _execute_owned(self, key: str, job: SweepJob):
        """Run one cache-missed job under the shared-cache claim protocol.

        Returns ``(stats, seconds, ran)`` — ``ran`` is False when a
        *foreign* owner (another daemon on this cache dir) computed the
        entry while we waited on its claim.
        """
        loop = asyncio.get_running_loop()
        claim = None
        if self.cache is not None:
            while True:
                stats = self.cache.get(key)
                if stats is not None:
                    return stats, 0.0, False
                claim = self.cache.claim(key)
                if claim is not None:
                    break
                await asyncio.sleep(CLAIM_POLL_SECONDS)
        try:
            stats, seconds = await self.pool.run(job, loop)
            if self.cache is not None:
                self.cache.put(key, stats, provenance={
                    "job": job.describe(),
                    "family": job.family(),
                    "tags": {k: repr(v) for k, v in job.tags.items()},
                    "config": job.config.to_dict(),
                    "wall_seconds": round(seconds, 6),
                    "generation": code_generation(),
                })
            return stats, seconds, True
        finally:
            if claim is not None:
                self.cache.release(claim)
