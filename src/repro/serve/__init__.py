"""``repro serve`` — the long-lived warm-cache simulation service.

Every CLI invocation used to be a cold process: graphs re-loaded, CSR
re-built, the code-version digest re-computed.  This package keeps all
of that resident:

* :mod:`repro.serve.protocol` — versioned JSON-over-socket messages
  (submit sweep, query status, stream progress, regenerate report
  sections, cache info/GC, reload, shutdown) plus the wire codec for
  :class:`~repro.sweep.jobs.SweepJob`.
* :mod:`repro.serve.workers` — the resident execution pool: N worker
  processes that hold loaded graphs/CSR warm across jobs (inline
  fallback when the platform has no usable multiprocessing).
* :mod:`repro.serve.scheduler` — the job queue: content-addressed
  dedup of in-flight identical jobs, cache claims so many daemons can
  share one cache directory, learned-cost dispatch ordering.
* :mod:`repro.serve.daemon` — the asyncio unix-socket server tying the
  three together, with generation-counter code-version invalidation
  (digest once at start, bumped on explicit ``reload``).
* :mod:`repro.serve.client` — the blocking client the CLI, the
  :class:`~repro.api.RemoteSession` facade and the tests all use.

See ``docs/serving.md`` for the daemon lifecycle and cache-ownership
rules.
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon, serve_in_thread
from repro.serve.protocol import PROTOCOL_VERSION

__all__ = [
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeDaemon",
    "serve_in_thread",
]
