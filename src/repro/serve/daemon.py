"""The ``repro serve`` daemon: an asyncio unix-socket job-queue server.

Lifecycle
---------
Startup pays every cold cost exactly once: the code-version digest
(:func:`repro.sweep.cache.code_version`), the result-cache handle and
the resident worker pool.  From then on the job path touches none of
them — cache keys reuse the resident digest, workers reuse loaded
graphs — until an explicit :class:`~repro.serve.protocol.Reload`
re-digests the tree, bumps the generation counter when it changed and
recycles the workers.  ``Shutdown`` drains and exits cleanly.

Connections are handled concurrently; requests on one connection are
handled in order.  Blocking work (regeneration, cache GC) runs on a
thread so the loop keeps serving; simulation itself runs on the worker
pool via the scheduler.

The report endpoint reuses :func:`repro.bench.regen.regenerate`
verbatim, but injects the scheduler as the sweep ``runner`` — section
sweeps go through the same dedup/claims/resident-worker path as
directly submitted jobs, and a warm cache regenerates every section
with zero simulations.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time

from repro.accel.engine import ENGINE_ENV_VAR
from repro.graph.datasets import SCALE_ENV_VAR
from repro.errors import (
    ProtocolError,
    ProtocolVersionError,
    ReproError,
    ServeError,
)
from repro.serve import protocol
from repro.serve.scheduler import Scheduler, Ticket
from repro.serve.workers import WorkerPool
from repro.sweep.cache import (
    ResultCache,
    code_generation,
    code_version,
    refresh_code_version,
)


@contextlib.contextmanager
def _scoped_env(name: str, value: str | None):
    """Set ``name=value`` for the duration; ``None`` leaves it alone."""
    if value is None:
        yield
        return
    previous = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous


class ServeDaemon:
    """One warm-cache simulation service bound to a unix socket."""

    def __init__(self, socket_path: str | os.PathLike,
                 cache_dir: str | os.PathLike | None = None,
                 workers: int = 0, engine: str | None = None) -> None:
        self.socket_path = str(socket_path)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        if engine is not None:
            # worker processes and regen planners read the environment;
            # a daemon-wide engine choice travels the same way the CLI's
            # --engine does (cache keys are engine-class independent)
            os.environ[ENGINE_ENV_VAR] = engine
        self.version = code_version()       # the one cold digest
        self.pool = WorkerPool(workers)
        self.scheduler = Scheduler(self.cache, self.pool, self.version)
        self.started_at = time.monotonic()
        self.loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        # regenerations may scope a client-supplied $REPRO_SCALE into
        # the (process-global) environment; serialize them so two
        # concurrent reports cannot see each other's scale
        self._regen_lock = threading.Lock()

    # ------------------------------------------------------------------
    async def run(self, on_started=None) -> None:
        """Bind the socket and serve until a shutdown request."""
        self.loop = asyncio.get_running_loop()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)     # stale socket from a crash
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path)
        if on_started is not None:
            on_started()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self.pool.close()
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)

    def request_stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = protocol.decode(line)
                except ProtocolVersionError as exc:
                    await self._send(writer, protocol.Error(
                        code="protocol-version", message=str(exc)))
                    break               # incompatible peer: hang up
                except ProtocolError as exc:
                    await self._send(writer, protocol.Error(
                        code="protocol", message=str(exc)))
                    continue
                try:
                    done = await self._dispatch(request, writer)
                except ReproError as exc:
                    await self._send(writer, protocol.Error(
                        code="bad-request", message=str(exc)))
                    continue
                if done:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass                        # client went away mid-reply
        finally:
            with contextlib.suppress(OSError):
                writer.close()

    async def _send(self, writer: asyncio.StreamWriter, msg) -> None:
        writer.write(protocol.encode(msg))
        await writer.drain()

    # ------------------------------------------------------------------
    async def _dispatch(self, request, writer) -> bool:
        """Handle one request; True means close this connection."""
        if isinstance(request, protocol.Ping):
            await self._send(writer, protocol.Pong(
                protocol=protocol.PROTOCOL_VERSION,
                generation=code_generation(),
                code_version=self.version))

        elif isinstance(request, protocol.SubmitSweep):
            jobs = [protocol.job_from_wire(j) for j in request.jobs]
            ticket = self.scheduler.submit(jobs)
            await self._send(writer, protocol.Submitted(
                ticket=ticket.id, jobs=len(jobs)))

        elif isinstance(request, protocol.QueryStatus):
            await self._send(writer, self._status_reply(request.ticket))

        elif isinstance(request, protocol.FetchSweep):
            ticket = self._ticket(request.ticket)
            outcome = await self.scheduler.wait(ticket)
            await self._send(writer, self._sweep_done(ticket, outcome))

        elif isinstance(request, protocol.StreamProgress):
            ticket = self._ticket(request.ticket)
            sent = 0
            while True:
                while sent < len(ticket.events):
                    done, total, job = ticket.events[sent]
                    sent += 1
                    await self._send(writer, protocol.Progress(
                        ticket=ticket.id, done=done, total=total, job=job))
                if ticket.state in ("done", "failed"):
                    break
                await ticket.changed.wait()
            outcome = await self.scheduler.wait(ticket)
            await self._send(writer, self._sweep_done(ticket, outcome))

        elif isinstance(request, protocol.RegenReport):
            reply = await self._regenerate(request)
            await self._send(writer, reply)

        elif isinstance(request, protocol.CacheInfo):
            if self.cache is None:
                await self._send(writer, protocol.CacheInfoReply(
                    cache_dir=None, code_version=self.version,
                    generation=code_generation()))
            else:
                entries = await asyncio.to_thread(self.cache.entries)
                await self._send(writer, protocol.CacheInfoReply(
                    cache_dir=str(self.cache.root),
                    entries=len(entries),
                    total_bytes=sum(e.size_bytes for e in entries),
                    code_version=self.version,
                    generation=code_generation(),
                    hits=self.cache.hits, misses=self.cache.misses))

        elif isinstance(request, protocol.CacheGc):
            if self.cache is None:
                raise ServeError("daemon runs without a result cache")
            stats = await asyncio.to_thread(
                self.cache.gc, request.max_age_seconds, request.max_bytes,
                None, request.dry_run)
            await self._send(writer, protocol.CacheGcReply(
                scanned=stats.scanned, removed=stats.removed,
                bytes_freed=stats.bytes_freed, bytes_kept=stats.bytes_kept,
                dry_run=request.dry_run))

        elif isinstance(request, protocol.Reload):
            previous = self.version
            self.version = await asyncio.to_thread(refresh_code_version)
            changed = self.version != previous
            if changed:
                await asyncio.to_thread(self.pool.recycle)
                self.scheduler.version = self.version
            await self._send(writer, protocol.Reloaded(
                code_version=self.version, generation=code_generation(),
                changed=changed))

        elif isinstance(request, protocol.Shutdown):
            await self._send(writer, protocol.ShuttingDown())
            self.request_stop()
            return True

        else:
            # a *response* type sent as a request — valid wire, wrong turn
            raise ServeError(
                f"unexpected message type {type(request).TYPE!r}")
        return False

    # ------------------------------------------------------------------
    def _ticket(self, ticket_id: str) -> Ticket:
        ticket = self.scheduler.tickets.get(ticket_id)
        if ticket is None:
            raise ServeError(f"unknown ticket {ticket_id!r}")
        return ticket

    def _status_reply(self, ticket_id: str | None) -> "protocol.StatusReply":
        if ticket_id is None:
            return protocol.StatusReply(
                state="serving",
                executed=self.scheduler.executed_total,
                cache_hits=self.scheduler.hits_total,
                deduped=self.scheduler.deduped_total,
                tickets=len(self.scheduler.tickets),
                workers=self.pool.size,
                generation=code_generation(),
                uptime_seconds=round(time.monotonic() - self.started_at, 3))
        ticket = self._ticket(ticket_id)
        return protocol.StatusReply(
            state=ticket.state, done=ticket.done, total=ticket.total,
            executed=ticket.executed, cache_hits=ticket.cache_hits,
            deduped=ticket.deduped, workers=self.pool.size,
            generation=code_generation())

    def _sweep_done(self, ticket: Ticket, outcome) -> "protocol.SweepDone":
        return protocol.SweepDone(
            ticket=ticket.id,
            stats=[s.to_dict() for s in outcome.stats],
            cache_hits=outcome.cache_hits,
            cache_misses=outcome.cache_misses,
            executed=outcome.executed,
            deduped=outcome.extra.get("deduped", 0),
            workers_used=outcome.workers_used,
            wall_seconds=round(outcome.wall_seconds, 6),
            job_seconds=[round(s, 6) for s in outcome.job_seconds])

    async def _regenerate(self, request: "protocol.RegenReport"):
        from repro.bench.regen import regenerate

        loop = asyncio.get_running_loop()

        def runner(jobs, num_workers=None, cache=None, progress=None):
            # regenerate() runs on a thread; its section sweeps hop back
            # into the loop so they share the scheduler's dedup + claims
            return asyncio.run_coroutine_threadsafe(
                self.scheduler.run_jobs(jobs), loop).result()

        def regen():
            # the figure job matrices read $REPRO_SCALE at build time;
            # a client-supplied scale must govern this regeneration so
            # remote reports hit the cache entries local runs wrote
            with self._regen_lock, _scoped_env(SCALE_ENV_VAR,
                                               request.scale):
                return regenerate(
                    request.results_dir,
                    sections=request.sections,
                    cache=self.cache,
                    report_path=request.out,
                    charts=request.charts,
                    runner=runner,
                )

        report = await asyncio.to_thread(regen)
        return protocol.ReportDone(
            results_dir=report.results_dir,
            report_path=report.report_path,
            provenance_path=report.provenance_path,
            cache_dir=report.cache_dir,
            code_version=report.code_version,
            sections=report.sections,
            wall_seconds=round(report.wall_seconds, 6))


# ----------------------------------------------------------------------
# Embedding helper (tests, CI, notebooks)
# ----------------------------------------------------------------------

@contextlib.contextmanager
def serve_in_thread(socket_path: str | os.PathLike,
                    cache_dir: str | os.PathLike | None = None,
                    workers: int = 0, engine: str | None = None,
                    start_timeout: float = 10.0):
    """Run a daemon on a background thread; yields the daemon.

    The context manager guarantees the socket is accepting before the
    body runs and that the daemon is stopped (and its thread joined)
    on exit, however the body ends.
    """
    daemon = ServeDaemon(socket_path, cache_dir=cache_dir,
                         workers=workers, engine=engine)
    started = threading.Event()
    loop_holder: dict[str, asyncio.AbstractEventLoop] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(daemon.run(on_started=started.set))
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(start_timeout):
        raise ServeError(f"daemon failed to bind {socket_path} "
                         f"within {start_timeout}s")
    try:
        yield daemon
    finally:
        loop = loop_holder.get("loop")
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(daemon.request_stop)
        thread.join(timeout=start_timeout)
