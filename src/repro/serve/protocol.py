"""Serve-protocol messages: versioned JSON over a stream socket.

Wire format
-----------
One message per line: a UTF-8 JSON object terminated by ``\\n``.  Every
message carries ``{"v": <int>, "type": "<name>", ...}``; the codec
rejects unknown types and — before anything else — any ``v`` other than
:data:`PROTOCOL_VERSION`, so an old client talking to a new daemon (or
vice versa) fails with one crisp error instead of a field mismatch
three requests later.

Messages are frozen dataclasses; the registry maps ``type`` strings to
classes, and :func:`encode` / :func:`decode` are the only (de)serializers
— both the daemon and the client import them, which is what keeps the
two ends structurally incapable of drifting apart.

Jobs on the wire
----------------
:func:`job_to_wire` / :func:`job_from_wire` round-trip a
:class:`~repro.sweep.jobs.SweepJob` exactly: symbolic
:class:`~repro.sweep.jobs.GraphSpec` references travel as their three
fields, inline :class:`~repro.graph.csr.CSRGraph` payloads as base64
int64 arrays.  The round-trip preserves the job's cache key (asserted
by the protocol test suite), which the scheduler's dedup relies on.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.accel.config import AcceleratorConfig
from repro.errors import ProtocolError, ProtocolVersionError
from repro.graph.csr import CSRGraph
from repro.sweep.jobs import GraphSpec, SweepJob

#: Bumped on any incompatible wire change.  Version negotiation is
#: deliberately absent: both ends ship in one repo, so a mismatch means
#: a stale daemon — the right fix is a reload/restart, not compat glue.
PROTOCOL_VERSION = 1

_MESSAGE_TYPES: dict[str, type] = {}


def message(type_name: str):
    """Register a frozen dataclass as a wire message."""
    def register(cls):
        cls = dataclass(frozen=True)(cls)
        cls.TYPE = type_name
        if type_name in _MESSAGE_TYPES:
            raise ProtocolError(f"duplicate message type {type_name!r}")
        _MESSAGE_TYPES[type_name] = cls
        return cls
    return register


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

@message("ping")
class Ping:
    """Liveness probe; the daemon answers :class:`Pong`."""


@message("submit_sweep")
class SubmitSweep:
    """Enqueue a job list; answered immediately with :class:`Submitted`.

    ``jobs`` is a list of wire-form job dicts (:func:`job_to_wire`).
    Results are collected later via :class:`FetchSweep` (blocking) or
    :class:`StreamProgress` (event stream) using the returned ticket.
    """

    jobs: list = field(default_factory=list)


@message("query_status")
class QueryStatus:
    """Status of one ticket (``ticket`` set) or of the whole daemon."""

    ticket: str | None = None


@message("stream_progress")
class StreamProgress:
    """Subscribe to a ticket's progress events.

    The daemon replays events already recorded, streams new ones as
    jobs finish, and terminates the stream with :class:`SweepDone`.
    """

    ticket: str


@message("fetch_sweep")
class FetchSweep:
    """Block until a ticket completes; answered with :class:`SweepDone`."""

    ticket: str


@message("report")
class RegenReport:
    """Regenerate report sections into ``results_dir`` on the daemon host.

    Mirrors :func:`repro.bench.regen.regenerate`, but the section
    sweeps run on the daemon's resident workers against its shared
    cache — a warm cache regenerates everything without one simulation.

    ``scale`` carries the client's ``$REPRO_SCALE`` (raw string): the
    figure job matrices are built daemon-side, so without it a remote
    regeneration would silently use the daemon's ambient scale and
    miss the cache entries a local run at the client's scale wrote.
    ``None`` leaves the daemon's own environment in charge.
    """

    results_dir: str
    sections: list | None = None
    out: str | None = None
    charts: bool = False
    scale: str | None = None


@message("cache_info")
class CacheInfo:
    """Cache + daemon accounting; answered with :class:`CacheInfoReply`."""


@message("cache_gc")
class CacheGc:
    """Evict cache entries beyond an age/size budget (see ``cache gc``)."""

    max_age_seconds: float | None = None
    max_bytes: int | None = None
    dry_run: bool = False


@message("reload")
class Reload:
    """Re-digest the code version and recycle the resident workers.

    The one deliberate cache-invalidation point of a running daemon:
    the code-version digest is computed at startup and **never** on the
    job path; editing the simulator while a daemon runs requires this
    request (or a restart) to take effect.
    """


@message("shutdown")
class Shutdown:
    """Drain and stop the daemon; answered with :class:`ShuttingDown`."""


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------

@message("pong")
class Pong:
    protocol: int = PROTOCOL_VERSION
    generation: int = 0
    code_version: str = ""


@message("submitted")
class Submitted:
    ticket: str
    jobs: int


@message("status_reply")
class StatusReply:
    state: str                      # "queued" | "running" | "done" | daemon: "serving"
    done: int = 0
    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    tickets: int = 0
    workers: int = 0
    generation: int = 0
    uptime_seconds: float = 0.0


@message("progress")
class Progress:
    """One finished job inside a streamed sweep."""

    ticket: str
    done: int
    total: int
    job: str = ""


@message("sweep_done")
class SweepDone:
    """Terminal reply of a sweep: stats dicts in job order + accounting."""

    ticket: str
    stats: list = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    deduped: int = 0
    workers_used: int = 1
    wall_seconds: float = 0.0
    job_seconds: list = field(default_factory=list)


@message("report_done")
class ReportDone:
    """Terminal reply of a report regeneration (RegenReport fields)."""

    results_dir: str
    report_path: str
    provenance_path: str
    cache_dir: str | None = None
    code_version: str = ""
    sections: list = field(default_factory=list)
    wall_seconds: float = 0.0


@message("cache_info_reply")
class CacheInfoReply:
    cache_dir: str | None
    entries: int = 0
    total_bytes: int = 0
    code_version: str = ""
    generation: int = 0
    hits: int = 0
    misses: int = 0


@message("cache_gc_reply")
class CacheGcReply:
    scanned: int = 0
    removed: int = 0
    bytes_freed: int = 0
    bytes_kept: int = 0
    dry_run: bool = False


@message("reloaded")
class Reloaded:
    code_version: str
    generation: int
    changed: bool


@message("shutting_down")
class ShuttingDown:
    pass


@message("error")
class Error:
    """Any request can be answered with this instead of its reply type."""

    code: str                       # "protocol" | "protocol-version" | "bad-request" | "failed"
    message: str


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------

def encode(msg) -> bytes:
    """One wire line (JSON + ``\\n``) for a registered message."""
    type_name = getattr(type(msg), "TYPE", None)
    if type_name not in _MESSAGE_TYPES:
        raise ProtocolError(f"not a wire message: {msg!r}")
    payload = {"v": PROTOCOL_VERSION, "type": type_name,
               **dataclasses.asdict(msg)}
    return (json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode(line: bytes | str):
    """Parse one wire line back into its message dataclass.

    Raises :class:`~repro.errors.ProtocolVersionError` on a version
    mismatch (checked before the type, so incompatible peers always get
    the version diagnosis) and :class:`~repro.errors.ProtocolError` on
    malformed JSON, unknown types or field mismatches.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed wire line: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"wire line is not an object: {payload!r}")
    version = payload.pop("v", None)
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this end speaks {PROTOCOL_VERSION}")
    type_name = payload.pop("type", None)
    cls = _MESSAGE_TYPES.get(type_name)
    if cls is None:
        raise ProtocolError(f"unknown message type {type_name!r}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolError(
            f"bad fields for message {type_name!r}: {exc}") from exc


# ----------------------------------------------------------------------
# SweepJob wire form
# ----------------------------------------------------------------------

def _array_to_wire(arr: np.ndarray) -> str:
    return base64.b64encode(np.ascontiguousarray(arr, dtype=np.int64)
                            .tobytes()).decode("ascii")


def _array_from_wire(text: str) -> np.ndarray:
    return np.frombuffer(base64.b64decode(text), dtype=np.int64)


def job_to_wire(job: SweepJob) -> dict:
    """JSON-serializable form of one job (cache-key preserving)."""
    if isinstance(job.graph, GraphSpec):
        graph: dict[str, Any] = {"kind": "spec", "key": job.graph.key,
                                 "scale": job.graph.scale,
                                 "seed": job.graph.seed}
    else:
        graph = {"kind": "csr", "name": job.graph.name,
                 "offsets": _array_to_wire(job.graph.offsets),
                 "dst": _array_to_wire(job.graph.dst),
                 "weights": _array_to_wire(job.graph.weights)}
    return {
        "graph": graph,
        "algorithm": job.algorithm,
        "algorithm_kwargs": dict(job.algorithm_kwargs),
        "config": job.config.to_dict(),
        "source": job.source,
        "max_iterations": job.max_iterations,
        "num_slices": job.num_slices,
        "offchip_bytes_per_cycle": job.offchip_bytes_per_cycle,
        "engine": job.engine,
        "tags": dict(job.tags),
    }


def job_from_wire(data: dict) -> SweepJob:
    """Rebuild a :class:`SweepJob` from its wire form."""
    if not isinstance(data, dict):
        raise ProtocolError(f"wire job is not an object: {data!r}")
    try:
        graph_data = data["graph"]
        kind = graph_data["kind"]
        if kind == "spec":
            graph: GraphSpec | CSRGraph = GraphSpec(
                key=graph_data["key"], scale=graph_data["scale"],
                seed=graph_data["seed"])
        elif kind == "csr":
            graph = CSRGraph(
                offsets=_array_from_wire(graph_data["offsets"]),
                dst=_array_from_wire(graph_data["dst"]),
                weights=_array_from_wire(graph_data["weights"]),
                name=graph_data["name"])
        else:
            raise ProtocolError(f"unknown graph kind {kind!r}")
        return SweepJob(
            graph=graph,
            algorithm=data["algorithm"],
            algorithm_kwargs=dict(data.get("algorithm_kwargs") or {}),
            config=AcceleratorConfig(**data["config"]),
            source=data.get("source", 0),
            max_iterations=data.get("max_iterations"),
            num_slices=data.get("num_slices", 1),
            offchip_bytes_per_cycle=data.get("offchip_bytes_per_cycle", 64.0),
            engine=data.get("engine"),
            tags=dict(data.get("tags") or {}),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire job: {exc}") from exc
