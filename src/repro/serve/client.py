"""Blocking client for the ``repro serve`` daemon.

One short-lived connection per request keeps the client stateless: the
daemon owns every ticket, so a submit on one connection can be fetched
on another (or by another process entirely).  Streaming requests keep
their single connection open for the duration and invoke a callback
per progress event.

All methods raise :class:`~repro.errors.ServeError` when the daemon
answers with an ``error`` message, and propagate the codec's
:class:`~repro.errors.ProtocolError` / ``ProtocolVersionError`` on
malformed or incompatible replies.
"""

from __future__ import annotations

import os
import socket

from repro.errors import ServeError
from repro.serve import protocol
from repro.sweep.jobs import SweepJob


class ServeClient:
    """Talk to one daemon socket; safe to share across threads."""

    def __init__(self, socket_path: str | os.PathLike,
                 timeout: float | None = 300.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServeError(
                f"cannot reach daemon at {self.socket_path}: {exc}") from exc
        return sock

    @staticmethod
    def _read_reply(stream):
        line = stream.readline()
        if not line:
            raise ServeError("daemon closed the connection mid-request")
        reply = protocol.decode(line)
        if isinstance(reply, protocol.Error):
            raise ServeError(f"[{reply.code}] {reply.message}")
        return reply

    def _request(self, msg, expect: type):
        """Send one message, read one reply, check its type."""
        with self._connect() as sock:
            sock.sendall(protocol.encode(msg))
            with sock.makefile("rb") as stream:
                reply = self._read_reply(stream)
        if not isinstance(reply, expect):
            raise ServeError(
                f"expected {expect.TYPE!r} reply, got {type(reply).TYPE!r}")
        return reply

    # ------------------------------------------------------------------
    def ping(self) -> "protocol.Pong":
        return self._request(protocol.Ping(), protocol.Pong)

    def submit_sweep(self, jobs: list[SweepJob]) -> str:
        """Enqueue jobs; returns the ticket id immediately."""
        reply = self._request(
            protocol.SubmitSweep(jobs=[protocol.job_to_wire(j) for j in jobs]),
            protocol.Submitted)
        return reply.ticket

    def fetch(self, ticket: str) -> "protocol.SweepDone":
        """Block until a previously submitted ticket completes."""
        return self._request(protocol.FetchSweep(ticket=ticket),
                             protocol.SweepDone)

    def status(self, ticket: str | None = None) -> "protocol.StatusReply":
        return self._request(protocol.QueryStatus(ticket=ticket),
                             protocol.StatusReply)

    def stream(self, ticket: str, on_progress=None) -> "protocol.SweepDone":
        """Follow a ticket's progress events until its terminal reply.

        ``on_progress`` is called with each :class:`protocol.Progress`
        (events recorded before subscribing are replayed first).
        """
        with self._connect() as sock:
            sock.sendall(protocol.encode(
                protocol.StreamProgress(ticket=ticket)))
            with sock.makefile("rb") as stream:
                while True:
                    reply = self._read_reply(stream)
                    if isinstance(reply, protocol.SweepDone):
                        return reply
                    if isinstance(reply, protocol.Progress):
                        if on_progress is not None:
                            on_progress(reply)
                        continue
                    raise ServeError(
                        f"unexpected {type(reply).TYPE!r} in progress stream")

    def run_sweep(self, jobs: list[SweepJob],
                  on_progress=None) -> "protocol.SweepDone":
        """Submit + follow to completion; the one-call sweep path."""
        ticket = self.submit_sweep(jobs)
        if on_progress is None:
            return self.fetch(ticket)
        return self.stream(ticket, on_progress)

    def regen_report(self, results_dir: str | os.PathLike,
                     sections: list[str] | None = None,
                     out: str | os.PathLike | None = None,
                     charts: bool = False,
                     scale: str | None = None) -> "protocol.ReportDone":
        """Regenerate report sections on the daemon's warm workers.

        ``scale`` (a raw ``$REPRO_SCALE`` string) scopes the client's
        dataset scale into the daemon-side job matrices; ``None``
        leaves the daemon's own environment in charge.
        """
        return self._request(
            protocol.RegenReport(
                results_dir=str(results_dir), sections=sections,
                out=None if out is None else str(out), charts=charts,
                scale=scale),
            protocol.ReportDone)

    def cache_info(self) -> "protocol.CacheInfoReply":
        return self._request(protocol.CacheInfo(), protocol.CacheInfoReply)

    def cache_gc(self, max_age_seconds: float | None = None,
                 max_bytes: int | None = None,
                 dry_run: bool = False) -> "protocol.CacheGcReply":
        return self._request(
            protocol.CacheGc(max_age_seconds=max_age_seconds,
                             max_bytes=max_bytes, dry_run=dry_run),
            protocol.CacheGcReply)

    def reload(self) -> "protocol.Reloaded":
        """Ask the daemon to re-digest the code version (see Reload)."""
        return self._request(protocol.Reload(), protocol.Reloaded)

    def shutdown(self) -> None:
        self._request(protocol.Shutdown(), protocol.ShuttingDown)
