"""The daemon's resident execution pool.

The whole point of ``repro serve`` is that workers survive across
jobs: each worker process resolves a :class:`~repro.sweep.jobs.GraphSpec`
once (the executor's per-process ``_GRAPH_MEMO``) and then reuses the
loaded CSR for every later job naming the same spec — R-MAT generation
is the dominant cold-start cost of small sweeps.

Two modes behind one interface:

* ``workers >= 1`` — a :class:`concurrent.futures.ProcessPoolExecutor`
  of N long-lived processes (fork context when available), each primed
  with the code-version digest at spawn so no worker ever hashes the
  source tree on the job path.
* ``workers == 0`` (or pool creation fails — no ``/dev/shm``, fork
  denied) — inline mode: jobs run on a single daemon-side thread.  The
  graph memo is process-global, so warmth is preserved; this is also
  the mode tests use to intercept execution deterministically.

``run(job)`` returns an :class:`asyncio.Future` resolving to
``(SimStats, wall_seconds)``; the pool never touches the cache — claim
handling and write-back belong to the scheduler.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
import time

from repro.errors import ServeError
from repro.sweep.cache import code_version
from repro.sweep.jobs import SweepJob


def _prime_worker() -> None:
    """Worker-process initializer: pay one-time costs off the job path."""
    code_version()


def _timed_execute(job: SweepJob):
    # late import through the module (not `from ... import execute_job`)
    # so monkeypatched executors are honoured in inline/thread mode
    from repro.sweep import executor
    t0 = time.perf_counter()
    stats = executor.execute_job(job)
    return stats, time.perf_counter() - t0


class WorkerPool:
    """N resident worker processes (or one inline thread) running jobs."""

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise ServeError(f"workers must be >= 0, got {workers}")
        self.requested = workers
        self._pool: concurrent.futures.Executor | None = None
        self.size = 1
        self.mode = "inline"
        self._start()

    def _start(self) -> None:
        if self.requested >= 1:
            try:
                methods = multiprocessing.get_all_start_methods()
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in methods else "spawn")
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.requested, mp_context=ctx,
                    initializer=_prime_worker)
                self.size = self.requested
                self.mode = "process"
                return
            except (OSError, ImportError):
                pass                      # fall through to inline mode
        # inline: one thread keeps the daemon loop responsive while a
        # job simulates; the graph memo lives in this process
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-worker")
        self.size = 1
        self.mode = "inline"

    def run(self, job: SweepJob,
            loop: asyncio.AbstractEventLoop) -> "asyncio.Future":
        """Dispatch one job; resolves to ``(SimStats, wall_seconds)``."""
        if self._pool is None:
            raise ServeError("worker pool is closed")
        return loop.run_in_executor(self._pool, _timed_execute, job)

    def recycle(self) -> None:
        """Tear down and respawn the workers (the ``reload`` request).

        Resident graph memos and any state spawned under the previous
        code generation die with the old processes; inline mode clears
        the in-process memo explicitly for the same effect.
        """
        self.close()
        if self.mode == "inline":
            from repro.sweep import executor
            executor._GRAPH_MEMO.clear()
        self._start()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
