"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``   run one algorithm/dataset on one design (or all three)
``sweep``      run a {algorithm x dataset x config} matrix, sharded
               across worker processes with on-disk result caching
               (``--figure fig8`` runs a paper figure's exact matrix)
``report``     regenerate figure tables + the consolidated REPORT.md
               straight from the result cache
``serve``      run the warm-cache simulation daemon on a unix socket
               (sweeps/reports submitted by ``--connect`` or
               :class:`repro.api.RemoteSession` reuse its resident
               workers and shared cache)
``cache``      result-cache maintenance (``info``, ``gc``)
``netlist``    generate an MDP-network and emit structural Verilog
``datasets``   print the Table 2 registry and generated stand-in sizes
``figure``     regenerate one of the paper's figure data series
``frequency``  print the Fig. 4 / MDP timing model for a structure

See ``docs/cli.md`` for copy-paste examples of every subcommand.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

from repro.accel import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINES,
    graphdyns,
    higraph,
    higraph_mini,
    simulate,
)
from repro.algorithms import make_algorithm
from repro.bench import format_table
from repro.errors import ReproError
from repro.graph import DATASET_ORDER, TABLE2, load

_CONFIG_MAKERS = {
    "higraph": higraph,
    "higraph-mini": higraph_mini,
    "graphdyns": graphdyns,
}

#: Environment fallbacks for the shared execution flags (the engine's
#: own ``$REPRO_ENGINE`` fallback lives in :mod:`repro.accel.engine`).
JOBS_ENV_VAR = "REPRO_JOBS"
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"


def _shared_parents() -> dict[str, argparse.ArgumentParser]:
    """Parent parsers for flags shared across subcommands.

    One definition per flag keeps simulate/sweep/report/serve
    consistent (same spelling, same help, same env fallback) — the
    cli-docs lint rule and test suite hold the subcommands to these.
    Environment fallbacks are resolved at parser-build time: string
    defaults go through the argument's ``type``, so a malformed
    ``$REPRO_JOBS`` fails at parse time like a malformed flag would.
    """
    engine = argparse.ArgumentParser(add_help=False)
    engine.add_argument("--engine", default=None, choices=list(ENGINES),
                        help="scatter engine (default: $REPRO_ENGINE, then "
                             f"{DEFAULT_ENGINE}); results and cache entries "
                             "are engine-independent")
    execution = argparse.ArgumentParser(add_help=False)
    execution.add_argument("--jobs", type=int,
                           default=os.environ.get(JOBS_ENV_VAR, 1),
                           help="worker processes (0 = one per CPU; "
                                "default: $REPRO_JOBS, then 1)")
    execution.add_argument("--cache-dir",
                           default=os.environ.get(CACHE_DIR_ENV_VAR),
                           help="result cache directory, created if missing "
                                "(default: $REPRO_CACHE_DIR, then no cache)")
    execution.add_argument("--no-cache", action="store_true",
                           help="ignore and bypass the result cache")
    connect = argparse.ArgumentParser(add_help=False)
    connect.add_argument("--connect", default=None, metavar="SOCKET",
                         help="execute on a running `repro serve` daemon at "
                              "this unix socket instead of in-process "
                              "(--jobs/--cache-dir/--no-cache/--engine then "
                              "come from the daemon and are ignored here)")
    return {"engine": engine, "execution": execution, "connect": connect}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HiGraph / MDP-network reproduction (DAC 2022)")
    sub = parser.add_subparsers(dest="command", required=True)
    parents = _shared_parents()

    sim = sub.add_parser("simulate", parents=[parents["engine"]],
                         help="cycle-simulate one workload")
    sim.add_argument("--dataset", default="R14", choices=sorted(TABLE2))
    sim.add_argument("--scale", type=float, default=0.0625,
                     help="dataset scale in (0, 1] (default 0.0625)")
    sim.add_argument("--algorithm", default="PR",
                     help="BFS | SSSP | SSWP | PR | CC | REACH")
    sim.add_argument("--config", default="all",
                     choices=sorted(_CONFIG_MAKERS) + ["all"])
    sim.add_argument("--source", type=int, default=0)
    sim.add_argument("--pr-iterations", type=int, default=2)

    swp = sub.add_parser(
        "sweep",
        parents=[parents["engine"], parents["execution"], parents["connect"]],
        help="run a simulation matrix in parallel with caching")
    swp.add_argument("--algorithms", default="BFS,SSSP,SSWP,PR",
                     help="comma-separated list (default: the paper's four)")
    swp.add_argument("--datasets", default="R14",
                     help=f"comma-separated keys from {sorted(TABLE2)}")
    swp.add_argument("--configs", default="all",
                     help="comma-separated subset of "
                          f"{sorted(_CONFIG_MAKERS)} (default: all)")
    swp.add_argument("--scale", type=float, default=None,
                     help="dataset scale in (0, 1] (default: bench scales)")
    swp.add_argument("--axis", action="append", default=[], metavar="FIELD=V1,V2",
                     help="sweep an AcceleratorConfig field over values, "
                          "e.g. --axis fifo_depth=40,160,320 (repeatable)")
    swp.add_argument("--source", type=int, default=0)
    swp.add_argument("--pr-iterations", type=int, default=2)
    swp.add_argument("--figure", default=None, metavar="NAME",
                     help="run the exact job matrix behind one paper "
                          "figure/section alias (fig8, fig10, radix, ...) "
                          "instead of the --algorithms/--datasets matrix")

    rep = sub.add_parser(
        "report",
        parents=[parents["engine"], parents["execution"], parents["connect"]],
        help="regenerate figure tables + REPORT.md from the cache")
    rep.add_argument("--results-dir", default=os.path.join("benchmarks", "results"),
                     help="where section .txt tables and REPORT.md live")
    rep.add_argument("--section", action="append", default=[], metavar="NAME",
                     help="section key or figure alias, repeatable "
                          "(default: every section); see --list-sections")
    rep.add_argument("--out", default=None,
                     help="REPORT.md path (default: <results-dir>/REPORT.md)")
    rep.add_argument("--charts", action="store_true",
                     help="also render each section's unicode chart "
                          "(<section>.chart.txt) and embed it in REPORT.md")
    rep.add_argument("--list-sections", action="store_true",
                     help="print section keys + figure aliases and exit")

    srv = sub.add_parser(
        "serve",
        parents=[parents["engine"], parents["execution"],
                 parents["connect"]],
        help="run the warm-cache simulation daemon (or poke a running one)")
    srv.add_argument("verb", nargs="?", choices=["reload", "status"],
                     help="instead of starting a daemon, ask the one at "
                          "--connect to re-digest the code version and "
                          "recycle its workers (reload) or print its "
                          "status line (status)")
    srv.add_argument("--socket", default=None, metavar="PATH",
                     help="unix socket path to bind (required when starting "
                          "a daemon; keep it short — the OS caps socket "
                          "paths around 100 characters)")

    cch = sub.add_parser("cache", help="result-cache maintenance")
    cch_sub = cch.add_subparsers(dest="cache_command", required=True)
    gc = cch_sub.add_parser("gc", help="evict entries beyond an age/size budget")
    gc.add_argument("--cache-dir", required=True)
    gc.add_argument("--max-age", default=None, metavar="AGE",
                    help="drop entries older than AGE: 30m, 12h, 7d or seconds")
    gc.add_argument("--max-bytes", default=None, metavar="SIZE",
                    help="shrink the cache to SIZE: 512K, 100M, 2G or bytes")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed, touch nothing")
    info = cch_sub.add_parser("info", help="entry count, size and age span")
    info.add_argument("--cache-dir", required=True)

    net = sub.add_parser("netlist", help="generate an MDP-network")
    net.add_argument("--channels", type=int, default=16)
    net.add_argument("--radix", type=int, default=2)
    net.add_argument("--depth", type=int, default=160)
    net.add_argument("-o", "--output", default=None,
                     help="write Verilog here (default: summary only)")

    sub.add_parser("datasets", help="print the Table 2 registry")

    fig = sub.add_parser("figure", help="regenerate a figure's data series")
    fig.add_argument("name", choices=["fig4", "fig10", "fig11", "fig12",
                                      "radix", "combining"])
    fig.add_argument("--dataset", default="R14")
    fig.add_argument("--scale", type=float, default=0.0625)

    freq = sub.add_parser("frequency", help="timing model lookup")
    freq.add_argument("--crossbar-ports", type=int, default=None)
    freq.add_argument("--mdp-channels", type=int, default=None)
    freq.add_argument("--radix", type=int, default=2)

    lnt = sub.add_parser(
        "lint", help="run the contract & determinism analyzer")
    lnt.add_argument("--root", default=".",
                     help="repository root to analyze (default: cwd)")
    lnt.add_argument("--rule", action="append", default=None, metavar="ID",
                     help="run only this rule (repeatable; default: all)")
    lnt.add_argument("--list-rules", action="store_true",
                     help="print the rule catalog and exit")
    lnt.add_argument("--catalog", action="store_true",
                     help="print the generated markdown rule catalog "
                          "(paste into docs/linting.md) and exit")
    lnt.add_argument("--baseline", default=None, metavar="PATH",
                     help="baseline file (default: <root>/lint-baseline.json)")
    lnt.add_argument("--update-baseline", action="store_true",
                     help="rewrite the baseline to cover current findings "
                          "(new entries get a TODO justification)")
    lnt.add_argument("--format", choices=["text", "json", "sarif"],
                     default="text")
    lnt.add_argument("--no-cache", action="store_true",
                     help="ignore and do not write the incremental "
                          "result cache (.repro-lint-cache.json)")
    lnt.add_argument("--strict", action="store_true",
                     help="also fail on warnings, stale baseline entries "
                          "and TODO justifications")
    lnt.add_argument("-v", "--verbose", action="store_true",
                     help="also print baselined findings")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "cache": _cmd_cache,
        "netlist": _cmd_netlist,
        "datasets": _cmd_datasets,
        "figure": _cmd_figure,
        "frequency": _cmd_frequency,
        "lint": _cmd_lint,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------

def _session_for(args):
    """The Session behind a sweep/report invocation (docs/serving.md).

    ``--connect`` routes execution to a running daemon (which owns the
    cache, the workers and the engine choice); otherwise execution is
    in-process with this invocation's flags.
    """
    from repro.api import LocalSession, RemoteSession

    if getattr(args, "connect", None):
        return RemoteSession(args.connect)
    cache = None if args.no_cache else args.cache_dir
    return LocalSession(cache_dir=cache, num_workers=args.jobs)


def _cmd_simulate(args) -> int:
    graph = load(args.dataset, scale=args.scale)
    print(f"workload: {args.algorithm} on {graph}")
    names = sorted(_CONFIG_MAKERS) if args.config == "all" else [args.config]
    rows = []
    for name in names:
        if args.algorithm.upper() in ("PR", "PAGERANK"):
            algorithm = make_algorithm("PR", iterations=args.pr_iterations)
        else:
            algorithm = make_algorithm(args.algorithm)
        stats = simulate(_CONFIG_MAKERS[name](), graph, algorithm,
                         source=args.source, engine=args.engine).stats
        rows.append(stats.summary())
    print(format_table(rows, columns=["config", "iterations", "cycles",
                                      "edges", "gteps", "edges_per_cycle",
                                      "vpe_starvation_cycles"]))
    return 0


def _parse_axis_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _cmd_sweep(args) -> int:
    from repro.bench import bench_graph_spec
    from repro.sweep import GraphSpec, plan_jobs

    if args.figure is not None:
        return _cmd_sweep_figure(args)

    algorithms = []
    for name in args.algorithms.split(","):
        name = name.strip().upper()
        if name in ("PR", "PAGERANK"):
            algorithms.append(("PR", {"iterations": args.pr_iterations}))
        else:
            algorithms.append(name)

    graphs = []
    for key in args.datasets.split(","):
        key = key.strip().upper()
        if key not in TABLE2:
            print(f"unknown dataset {key!r}; known: {sorted(TABLE2)}",
                  file=sys.stderr)
            return 2
        graphs.append(GraphSpec(key, scale=args.scale) if args.scale
                      else bench_graph_spec(key))

    names = sorted(_CONFIG_MAKERS) if args.configs == "all" else [
        c.strip() for c in args.configs.split(",")]
    configs = {}
    for name in names:
        if name not in _CONFIG_MAKERS:
            print(f"unknown config {name!r}; known: {sorted(_CONFIG_MAKERS)}",
                  file=sys.stderr)
            return 2
        cfg = _CONFIG_MAKERS[name]()
        configs[cfg.name] = cfg

    sweep_axes = {}
    for spec in args.axis:
        field, _, values = spec.partition("=")
        if not values:
            print(f"--axis expects FIELD=V1,V2,..., got {spec!r}", file=sys.stderr)
            return 2
        sweep_axes[field.strip()] = [
            _parse_axis_value(v.strip()) for v in values.split(",")]

    try:
        jobs = plan_jobs(algorithms, graphs, configs,
                         sweep_axes=sweep_axes or None, source=args.source,
                         engine=args.engine)
        with _session_for(args) as session:
            outcome = session.sweep(jobs)
    except (ReproError, ValueError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2

    rows = []
    for job, stats in zip(outcome.jobs, outcome.stats):
        row = {"algorithm": job.tags["algorithm"], "dataset": job.tags["graph"],
               "config": job.tags["config"]}
        for axis in sweep_axes:
            row[axis] = job.tags[axis]
        row.update(iterations=stats.iterations, cycles=stats.total_cycles,
                   edges=stats.edges_processed,
                   frequency_ghz=round(stats.frequency_ghz, 3),
                   gteps=round(stats.gteps, 3))
        rows.append(row)
    print(format_table(rows, title=f"sweep: {len(jobs)} jobs"))
    hit_pct = 100.0 * outcome.hit_rate
    print(f"jobs: {len(jobs)}  executed: {outcome.executed}  "
          f"cache hits: {outcome.cache_hits} ({hit_pct:.0f}%)  "
          f"workers: {outcome.workers_used}  "
          f"wall: {outcome.wall_seconds:.2f}s")
    return 0


@contextlib.contextmanager
def _engine_env(engine: str | None):
    """Scoped ``$REPRO_ENGINE`` override for figure/report builders.

    Those builders plan their own jobs, so the engine choice travels
    via the environment (worker processes inherit it either way); the
    previous value is restored afterwards so an in-process caller of
    ``main()`` does not leak engine selection into later work.
    """
    if engine is None:
        yield
        return
    previous = os.environ.get(ENGINE_ENV_VAR)
    os.environ[ENGINE_ENV_VAR] = engine
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENGINE_ENV_VAR, None)
        else:
            os.environ[ENGINE_ENV_VAR] = previous


def _cmd_sweep_figure(args) -> int:
    """``repro sweep --figure fig8``: warm the cache for one figure."""
    from repro.bench.regen import RegenContext, SECTIONS, resolve_sections
    from repro.bench import format_table

    # a figure owns its job matrix: refuse (don't silently ignore) the
    # free-form matrix flags, whose values could not take effect
    conflicting = [flag for flag, given in (
        ("--algorithms", args.algorithms != "BFS,SSSP,SSWP,PR"),
        ("--datasets", args.datasets != "R14"),
        ("--configs", args.configs != "all"),
        ("--scale", args.scale is not None),
        ("--axis", bool(args.axis)),
        ("--source", args.source != 0),
        ("--pr-iterations", args.pr_iterations != 2),
    ) if given]
    if conflicting:
        print(f"--figure runs that figure's own job matrix; "
              f"{', '.join(conflicting)} cannot apply (dataset scale comes "
              f"from the REPRO_SCALE environment variable)", file=sys.stderr)
        return 2

    cache = None if args.no_cache else args.cache_dir
    try:
        with _engine_env(args.engine), _session_for(args) as session:
            # figure sections plan their own jobs; route their sweeps
            # through the session so --connect reuses the daemon's
            # resident workers and shared cache
            def _runner(jobs, num_workers=None, cache=None, progress=None):
                return session.sweep(jobs)

            keys = resolve_sections([args.figure])
            ctx = RegenContext(num_workers=args.jobs, cache=cache,
                               runner=_runner)
            executed = hits = planned = 0
            for key in keys:
                spec = SECTIONS[key]
                rows, acct = spec.build(ctx)
                print(format_table(
                    rows, columns=list(spec.columns) if spec.columns else None,
                    title=spec.table_title, floatfmt=spec.floatfmt))
                executed += acct["executed"]
                hits += acct["cache_hits"]
                planned += acct["jobs"]
    except (ReproError, ValueError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    print(f"figure: {args.figure}  sections: {len(keys)}  jobs: {planned}  "
          f"executed: {executed}  cache hits: {hits}")
    return 0


def _cmd_report(args) -> int:
    from repro.bench.regen import FIGURE_SECTIONS, SECTIONS

    if args.list_sections:
        print("sections (report order):")
        for key in SECTIONS:
            print(f"  {key}")
        print("figure aliases:")
        for alias, keys in FIGURE_SECTIONS.items():
            print(f"  {alias:10s} -> {', '.join(keys)}")
        return 0

    def _progress(record):
        mode = ("sweep" if record["simulated"] else "model")
        print(f"  {record['section']:28s} {record['rows']:3d} rows  "
              f"[{mode}] jobs: {record['jobs']}  hits: {record['cache_hits']}  "
              f"executed: {record['executed']}  "
              f"wall: {record['wall_seconds']:.2f}s")

    try:
        # section builders plan their own jobs; the engine choice is
        # scoped to this regeneration (see _engine_env)
        with _engine_env(args.engine), _session_for(args) as session:
            report = session.report(
                args.results_dir,
                sections=args.section or None,
                out=args.out,
                charts=args.charts,
                on_progress=_progress,
            )
    except (ReproError, ValueError, OSError) as exc:
        print(f"report regeneration failed: {exc}", file=sys.stderr)
        return 2
    hit_pct = (100.0 * report.cache_hits / report.total_jobs
               if report.total_jobs else 0.0)
    print(f"sections: {len(report.sections)}  jobs: {report.total_jobs}  "
          f"cache hits: {report.cache_hits} ({hit_pct:.0f}%)  "
          f"executed: {report.executed}  wall: {report.wall_seconds:.2f}s")
    print(f"wrote {report.report_path}")
    print(f"wrote {report.provenance_path}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.daemon import ServeDaemon
    from repro.sweep.executor import resolve_workers

    if args.verb is not None:
        return _cmd_serve_verb(args)
    if args.socket is None:
        print("serve: --socket PATH is required to start a daemon "
              "(or pass a verb: `repro serve reload|status "
              "--connect SOCKET`)", file=sys.stderr)
        return 2
    cache = None if args.no_cache else args.cache_dir
    try:
        daemon = ServeDaemon(args.socket, cache_dir=cache,
                             workers=resolve_workers(args.jobs),
                             engine=args.engine)
    except (ReproError, OSError) as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 2
    print(f"repro serve: socket {args.socket}  "
          f"workers: {daemon.pool.size} ({daemon.pool.mode})  "
          f"cache: {cache or '(none)'}  "
          f"code version: {daemon.version[:12]}", flush=True)
    try:
        asyncio.run(daemon.run(
            on_started=lambda: print("ready", flush=True)))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve_verb(args) -> int:
    """``repro serve reload|status --connect SOCKET`` — client verbs
    against a running daemon (the daemon-side behavior is documented in
    docs/serving.md; these are thin ``ServeClient`` front ends)."""
    from repro.serve.client import ServeClient

    if args.connect is None:
        print(f"serve {args.verb}: --connect SOCKET is required "
              "(the running daemon to talk to)", file=sys.stderr)
        return 2
    client = ServeClient(args.connect)
    try:
        if args.verb == "reload":
            reply = client.reload()
            print(f"reloaded: code version {reply.code_version[:12]} "
                  f"({'changed' if reply.changed else 'unchanged'})  "
                  f"generation: {reply.generation}")
        else:
            reply = client.status()
            print(f"state: {reply.state}  workers: {reply.workers}  "
                  f"tickets: {reply.tickets}  "
                  f"generation: {reply.generation}  "
                  f"uptime: {reply.uptime_seconds:.0f}s")
            print(f"jobs: {reply.done}/{reply.total}  "
                  f"executed: {reply.executed}  "
                  f"cache hits: {reply.cache_hits}  "
                  f"deduped: {reply.deduped}")
    except ReproError as exc:
        print(f"serve {args.verb} failed: {exc}", file=sys.stderr)
        return 2
    return 0


#: Suffix multipliers for ``--max-age`` (seconds) and ``--max-bytes``.
_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
_SIZE_UNITS = {"b": 1, "k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}


def _parse_suffixed(text: str, units: dict, what: str) -> float:
    text = text.strip().lower()
    suffix = text[-1:] if text[-1:] in units else ""
    number = text[:-1] if suffix else text
    try:
        value = float(number)
    except ValueError:
        raise ValueError(
            f"malformed {what} {text!r}; expected NUMBER[{'|'.join(units)}]")
    if value < 0:
        raise ValueError(f"{what} must be >= 0, got {text!r}")
    return value * units[suffix or list(units)[0]]


def parse_age_seconds(text: str) -> float:
    """``30m`` / ``12h`` / ``7d`` / plain seconds -> seconds."""
    return _parse_suffixed(text, _AGE_UNITS, "age")


def parse_size_bytes(text: str) -> int:
    """``512K`` / ``100M`` / ``2G`` / plain bytes -> bytes."""
    return int(_parse_suffixed(text, _SIZE_UNITS, "size"))


def _cmd_cache(args) -> int:
    from repro.sweep import ResultCache

    # inspection/GC must not mkdir the cache as a side effect: a typoed
    # path should be an error, not a fresh empty directory
    if not os.path.isdir(args.cache_dir):
        print(f"cache {args.cache_command} failed: no such cache directory: "
              f"{args.cache_dir}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "info":
        entries = cache.entries()
        total = sum(e.size_bytes for e in entries)
        print(f"cache: {cache.root}")
        print(f"entries: {len(entries)}  bytes: {total}")
        if entries:
            import time as _time
            now = _time.time()
            print(f"oldest: {now - entries[0].mtime:.0f}s  "
                  f"newest: {now - entries[-1].mtime:.0f}s")
        return 0

    # gc
    try:
        max_age = (parse_age_seconds(args.max_age)
                   if args.max_age is not None else None)
        max_bytes = (parse_size_bytes(args.max_bytes)
                     if args.max_bytes is not None else None)
    except ValueError as exc:
        print(f"cache gc failed: {exc}", file=sys.stderr)
        return 2
    if max_age is None and max_bytes is None:
        print("cache gc: nothing to do (give --max-age and/or --max-bytes)",
              file=sys.stderr)
        return 2
    stats = cache.gc(max_age_seconds=max_age, max_bytes=max_bytes,
                     dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"cache gc: scanned {stats.scanned}  {verb} {stats.removed} "
          f"({stats.bytes_freed} bytes)  kept {stats.scanned - stats.removed} "
          f"({stats.bytes_kept} bytes)")
    return 0


def _cmd_netlist(args) -> int:
    from repro.mdp import build_netlist, emit_verilog, netlist_summary
    net = build_netlist(args.channels, args.radix, fifo_depth=args.depth)
    for key, value in netlist_summary(net).items():
        print(f"{key:20s}: {value}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(emit_verilog(net))
        print(f"wrote {args.output}")
    return 0


def _cmd_datasets(args) -> int:
    rows = []
    for key in DATASET_ORDER:
        spec = TABLE2[key]
        rows.append({
            "name": key,
            "vertices": spec.num_vertices,
            "edges": spec.num_edges,
            "degree": spec.degree,
            "description": spec.description,
        })
    print(format_table(rows, title="Table 2: benchmark datasets"))
    return 0


def _cmd_figure(args) -> int:
    from repro.bench import (
        combining_ablation_rows,
        fig10_rows,
        fig11_rows,
        fig12_rows,
        sec54_radix_rows,
    )
    from repro.hw import fig4_rows
    if args.name == "fig4":
        print(format_table(fig4_rows(), floatfmt=".3f"))
        return 0
    graph = load(args.dataset, scale=args.scale)
    rows = {
        "fig10": lambda: fig10_rows(graph=graph),
        "fig11": lambda: fig11_rows(graph=graph),
        "fig12": lambda: fig12_rows(graph=graph),
        "radix": lambda: sec54_radix_rows(graph=graph),
        "combining": lambda: combining_ablation_rows(graph=graph),
    }[args.name]()
    print(format_table(rows))
    from repro.bench import bar_chart, series_chart
    if args.name == "fig11":
        print(series_chart(rows, "back_channels", "gteps", "design",
                           title="GTEPS vs back-end channels"))
    elif args.name == "fig12":
        print(series_chart(rows, "buffer_entries", "gteps", "design",
                           title="GTEPS vs per-channel buffer entries"))
    elif args.name == "fig10":
        print(bar_chart(rows, "step", "gteps", group_key="algorithm",
                        title="GTEPS per optimization step"))
    elif args.name == "radix":
        print(bar_chart(rows, "radix", "gteps", title="GTEPS per radix"))
    return 0


def _cmd_frequency(args) -> int:
    from repro.hw import (
        crossbar_frequency_ghz,
        design_frequency_ghz,
        mdp_frequency_ghz,
    )
    if args.crossbar_ports:
        print(f"crossbar({args.crossbar_ports} ports): "
              f"{crossbar_frequency_ghz(args.crossbar_ports):.3f} GHz")
    if args.mdp_channels:
        print(f"mdp({args.mdp_channels} channels, radix {args.radix}): "
              f"{mdp_frequency_ghz(args.mdp_channels, args.radix):.3f} GHz")
    print(f"design frequency (capped at 1 GHz target): "
          f"{design_frequency_ghz(crossbar_ports=args.crossbar_ports, mdp_channels=args.mdp_channels, mdp_radix=args.radix):.3f} GHz")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import all_rules, format_text, lint
    from repro.analysis.runner import format_json

    if args.list_rules:
        for rule in sorted(all_rules().values(), key=lambda r: r.id):
            print(f"{rule.id:22s} {rule.severity:8s} {rule.description}")
        return 0
    if args.catalog:
        from repro.analysis.registry import rule_catalog_markdown
        print(rule_catalog_markdown())
        return 0
    try:
        report = lint(args.root, rule_ids=args.rule,
                      baseline_path=args.baseline,
                      update_baseline=args.update_baseline,
                      use_cache=not args.no_cache)
    except ReproError as exc:
        print(f"lint failed: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(report))
    elif args.format == "sarif":
        from repro.analysis.sarif import format_sarif
        print(format_sarif(report))
    else:
        print(format_text(report, verbose=args.verbose))
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
