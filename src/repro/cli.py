"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``   run one algorithm/dataset on one design (or all three)
``sweep``      run a {algorithm x dataset x config} matrix, sharded
               across worker processes with on-disk result caching
``netlist``    generate an MDP-network and emit structural Verilog
``datasets``   print the Table 2 registry and generated stand-in sizes
``figure``     regenerate one of the paper's figure data series
``frequency``  print the Fig. 4 / MDP timing model for a structure
"""

from __future__ import annotations

import argparse
import sys

from repro.accel import graphdyns, higraph, higraph_mini, simulate
from repro.algorithms import make_algorithm
from repro.bench import format_table
from repro.errors import ReproError
from repro.graph import DATASET_ORDER, TABLE2, load

_CONFIG_MAKERS = {
    "higraph": higraph,
    "higraph-mini": higraph_mini,
    "graphdyns": graphdyns,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HiGraph / MDP-network reproduction (DAC 2022)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="cycle-simulate one workload")
    sim.add_argument("--dataset", default="R14", choices=sorted(TABLE2))
    sim.add_argument("--scale", type=float, default=0.0625,
                     help="dataset scale in (0, 1] (default 0.0625)")
    sim.add_argument("--algorithm", default="PR",
                     help="BFS | SSSP | SSWP | PR | CC | REACH")
    sim.add_argument("--config", default="all",
                     choices=sorted(_CONFIG_MAKERS) + ["all"])
    sim.add_argument("--source", type=int, default=0)
    sim.add_argument("--pr-iterations", type=int, default=2)

    swp = sub.add_parser(
        "sweep", help="run a simulation matrix in parallel with caching")
    swp.add_argument("--algorithms", default="BFS,SSSP,SSWP,PR",
                     help="comma-separated list (default: the paper's four)")
    swp.add_argument("--datasets", default="R14",
                     help=f"comma-separated keys from {sorted(TABLE2)}")
    swp.add_argument("--configs", default="all",
                     help="comma-separated subset of "
                          f"{sorted(_CONFIG_MAKERS)} (default: all)")
    swp.add_argument("--scale", type=float, default=None,
                     help="dataset scale in (0, 1] (default: bench scales)")
    swp.add_argument("--axis", action="append", default=[], metavar="FIELD=V1,V2",
                     help="sweep an AcceleratorConfig field over values, "
                          "e.g. --axis fifo_depth=40,160,320 (repeatable)")
    swp.add_argument("--jobs", type=int, default=1,
                     help="worker processes (0 = one per CPU, default 1)")
    swp.add_argument("--cache-dir", default=None,
                     help="result cache directory (created if missing)")
    swp.add_argument("--no-cache", action="store_true",
                     help="ignore and bypass the result cache")
    swp.add_argument("--source", type=int, default=0)
    swp.add_argument("--pr-iterations", type=int, default=2)

    net = sub.add_parser("netlist", help="generate an MDP-network")
    net.add_argument("--channels", type=int, default=16)
    net.add_argument("--radix", type=int, default=2)
    net.add_argument("--depth", type=int, default=160)
    net.add_argument("-o", "--output", default=None,
                     help="write Verilog here (default: summary only)")

    sub.add_parser("datasets", help="print the Table 2 registry")

    fig = sub.add_parser("figure", help="regenerate a figure's data series")
    fig.add_argument("name", choices=["fig4", "fig10", "fig11", "fig12",
                                      "radix", "combining"])
    fig.add_argument("--dataset", default="R14")
    fig.add_argument("--scale", type=float, default=0.0625)

    freq = sub.add_parser("frequency", help="timing model lookup")
    freq.add_argument("--crossbar-ports", type=int, default=None)
    freq.add_argument("--mdp-channels", type=int, default=None)
    freq.add_argument("--radix", type=int, default=2)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
        "netlist": _cmd_netlist,
        "datasets": _cmd_datasets,
        "figure": _cmd_figure,
        "frequency": _cmd_frequency,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------

def _cmd_simulate(args) -> int:
    graph = load(args.dataset, scale=args.scale)
    print(f"workload: {args.algorithm} on {graph}")
    names = sorted(_CONFIG_MAKERS) if args.config == "all" else [args.config]
    rows = []
    for name in names:
        if args.algorithm.upper() in ("PR", "PAGERANK"):
            algorithm = make_algorithm("PR", iterations=args.pr_iterations)
        else:
            algorithm = make_algorithm(args.algorithm)
        stats = simulate(_CONFIG_MAKERS[name](), graph, algorithm,
                         source=args.source).stats
        rows.append(stats.summary())
    print(format_table(rows, columns=["config", "iterations", "cycles",
                                      "edges", "gteps", "edges_per_cycle",
                                      "vpe_starvation_cycles"]))
    return 0


def _parse_axis_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _cmd_sweep(args) -> int:
    from repro.bench import bench_graph_spec
    from repro.sweep import GraphSpec, plan_jobs, run_sweep

    algorithms = []
    for name in args.algorithms.split(","):
        name = name.strip().upper()
        if name in ("PR", "PAGERANK"):
            algorithms.append(("PR", {"iterations": args.pr_iterations}))
        else:
            algorithms.append(name)

    graphs = []
    for key in args.datasets.split(","):
        key = key.strip().upper()
        if key not in TABLE2:
            print(f"unknown dataset {key!r}; known: {sorted(TABLE2)}",
                  file=sys.stderr)
            return 2
        graphs.append(GraphSpec(key, scale=args.scale) if args.scale
                      else bench_graph_spec(key))

    names = sorted(_CONFIG_MAKERS) if args.configs == "all" else [
        c.strip() for c in args.configs.split(",")]
    configs = {}
    for name in names:
        if name not in _CONFIG_MAKERS:
            print(f"unknown config {name!r}; known: {sorted(_CONFIG_MAKERS)}",
                  file=sys.stderr)
            return 2
        cfg = _CONFIG_MAKERS[name]()
        configs[cfg.name] = cfg

    sweep_axes = {}
    for spec in args.axis:
        field, _, values = spec.partition("=")
        if not values:
            print(f"--axis expects FIELD=V1,V2,..., got {spec!r}", file=sys.stderr)
            return 2
        sweep_axes[field.strip()] = [
            _parse_axis_value(v.strip()) for v in values.split(",")]

    cache = None if args.no_cache else args.cache_dir
    try:
        jobs = plan_jobs(algorithms, graphs, configs,
                         sweep_axes=sweep_axes or None, source=args.source)
        outcome = run_sweep(jobs, num_workers=args.jobs, cache=cache)
    except (ReproError, ValueError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2

    rows = []
    for job, stats in zip(outcome.jobs, outcome.stats):
        row = {"algorithm": job.tags["algorithm"], "dataset": job.tags["graph"],
               "config": job.tags["config"]}
        for axis in sweep_axes:
            row[axis] = job.tags[axis]
        row.update(iterations=stats.iterations, cycles=stats.total_cycles,
                   edges=stats.edges_processed,
                   frequency_ghz=round(stats.frequency_ghz, 3),
                   gteps=round(stats.gteps, 3))
        rows.append(row)
    print(format_table(rows, title=f"sweep: {len(jobs)} jobs"))
    hit_pct = 100.0 * outcome.hit_rate
    print(f"jobs: {len(jobs)}  executed: {outcome.executed}  "
          f"cache hits: {outcome.cache_hits} ({hit_pct:.0f}%)  "
          f"workers: {outcome.workers_used}  "
          f"wall: {outcome.wall_seconds:.2f}s")
    return 0


def _cmd_netlist(args) -> int:
    from repro.mdp import build_netlist, emit_verilog, netlist_summary
    net = build_netlist(args.channels, args.radix, fifo_depth=args.depth)
    for key, value in netlist_summary(net).items():
        print(f"{key:20s}: {value}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(emit_verilog(net))
        print(f"wrote {args.output}")
    return 0


def _cmd_datasets(args) -> int:
    rows = []
    for key in DATASET_ORDER:
        spec = TABLE2[key]
        rows.append({
            "name": key,
            "vertices": spec.num_vertices,
            "edges": spec.num_edges,
            "degree": spec.degree,
            "description": spec.description,
        })
    print(format_table(rows, title="Table 2: benchmark datasets"))
    return 0


def _cmd_figure(args) -> int:
    from repro.bench import (
        combining_ablation_rows,
        fig10_rows,
        fig11_rows,
        fig12_rows,
        sec54_radix_rows,
    )
    from repro.hw import fig4_rows
    if args.name == "fig4":
        print(format_table(fig4_rows(), floatfmt=".3f"))
        return 0
    graph = load(args.dataset, scale=args.scale)
    rows = {
        "fig10": lambda: fig10_rows(graph=graph),
        "fig11": lambda: fig11_rows(graph=graph),
        "fig12": lambda: fig12_rows(graph=graph),
        "radix": lambda: sec54_radix_rows(graph=graph),
        "combining": lambda: combining_ablation_rows(graph=graph),
    }[args.name]()
    print(format_table(rows))
    from repro.bench import bar_chart, series_chart
    if args.name == "fig11":
        print(series_chart(rows, "back_channels", "gteps", "design",
                           title="GTEPS vs back-end channels"))
    elif args.name == "fig12":
        print(series_chart(rows, "buffer_entries", "gteps", "design",
                           title="GTEPS vs per-channel buffer entries"))
    elif args.name == "fig10":
        print(bar_chart(rows, "step", "gteps", group_key="algorithm",
                        title="GTEPS per optimization step"))
    elif args.name == "radix":
        print(bar_chart(rows, "radix", "gteps", title="GTEPS per radix"))
    return 0


def _cmd_frequency(args) -> int:
    from repro.hw import (
        crossbar_frequency_ghz,
        design_frequency_ghz,
        mdp_frequency_ghz,
    )
    if args.crossbar_ports:
        print(f"crossbar({args.crossbar_ports} ports): "
              f"{crossbar_frequency_ghz(args.crossbar_ports):.3f} GHz")
    if args.mdp_channels:
        print(f"mdp({args.mdp_channels} channels, radix {args.radix}): "
              f"{mdp_frequency_ghz(args.mdp_channels, args.radix):.3f} GHz")
    print(f"design frequency (capped at 1 GHz target): "
          f"{design_frequency_ghz(crossbar_ports=args.crossbar_ports, mdp_channels=args.mdp_channels, mdp_radix=args.radix):.3f} GHz")
    return 0


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
