"""Sweep execution subsystem: plan, shard and cache simulation matrices.

The paper's figures are matrices of independent cycle simulations;
this package turns a matrix description into :class:`SweepJob` lists
(:mod:`repro.sweep.jobs`), runs them across worker processes with
deterministic result ordering (:mod:`repro.sweep.executor`) and
memoizes results on disk keyed by content, not by name
(:mod:`repro.sweep.cache`).  See ``docs/sweep.md``.
"""

from repro.sweep.cache import (
    CacheClaim,
    CacheEntry,
    GcStats,
    ResultCache,
    code_generation,
    code_version,
    refresh_code_version,
)
from repro.sweep.executor import (
    SweepOutcome,
    execute_job,
    learned_cost_model,
    resolve_workers,
    run_sweep,
    scheduled_order,
)
from repro.sweep.jobs import GraphSpec, SweepJob, graph_fingerprint, plan_jobs

__all__ = [
    "GraphSpec",
    "SweepJob",
    "plan_jobs",
    "graph_fingerprint",
    "CacheClaim",
    "CacheEntry",
    "GcStats",
    "ResultCache",
    "code_version",
    "code_generation",
    "refresh_code_version",
    "SweepOutcome",
    "run_sweep",
    "execute_job",
    "resolve_workers",
    "scheduled_order",
    "learned_cost_model",
]
