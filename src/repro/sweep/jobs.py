"""Sweep job planning: expand {algorithms x graphs x configs x axes}.

A :class:`SweepJob` is one independent cycle simulation — everything a
worker process needs to produce one :class:`~repro.accel.stats.SimStats`
row, plus free-form ``tags`` so the caller can reassemble results into
figure tables without re-deriving which job was which.

Jobs reference their graph either **symbolically** (a :class:`GraphSpec`
naming a Table 2 dataset + scale, loaded lazily inside the worker and
memoized per process) or **inline** (a concrete
:class:`~repro.graph.csr.CSRGraph`, pickled to the worker).  Both forms
yield a stable fingerprint for the result cache: specs hash their
generator parameters (generator code is covered by the cache's code
version), inline graphs hash their CSR arrays.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.accel.config import AcceleratorConfig
from repro.accel.engine import engine_cache_token
from repro.algorithms import make_algorithm
from repro.errors import SweepError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import TABLE2, load


@dataclass(frozen=True)
class GraphSpec:
    """Symbolic reference to a Table 2 dataset at a given scale."""

    key: str
    scale: float = 1.0
    seed: int | None = None

    def load(self) -> CSRGraph:
        return load(self.key, scale=self.scale, seed=self.seed)

    def fingerprint(self) -> str:
        return f"spec:{self.key}:{self.scale!r}:{self.seed!r}"


def graph_fingerprint(graph: GraphSpec | CSRGraph) -> str:
    """Stable identity of a job's graph for cache keys and worker memos."""
    if isinstance(graph, GraphSpec):
        return graph.fingerprint()
    h = hashlib.sha256()
    h.update(graph.name.encode("utf-8"))
    for arr in (graph.offsets, graph.dst, graph.weights):
        h.update(arr.tobytes())
    return f"csr:{h.hexdigest()}"


@dataclass
class SweepJob:
    """One independent simulation: (graph, algorithm, config, source)."""

    graph: GraphSpec | CSRGraph
    algorithm: str
    config: AcceleratorConfig
    algorithm_kwargs: dict[str, Any] = field(default_factory=dict)
    source: int = 0
    max_iterations: int | None = None
    #: large-graph mode (§5.3): > 1 partitions the graph into that many
    #: destination intervals and runs the double-buffered sliced simulator
    num_slices: int = 1
    #: off-chip bandwidth for slice replacement, bytes per cycle (sliced
    #: mode only; ignored when ``num_slices == 1``)
    offchip_bytes_per_cycle: float = 64.0
    #: scatter engine ("reference" / "batched"); None defers to
    #: ``$REPRO_ENGINE`` then the package default.  Only the engine's
    #: *equivalence class* enters the cache key, so verified-equivalent
    #: engines share cache entries.
    engine: str | None = None
    #: caller-owned labels (dataset key, config name, swept-axis values ...)
    tags: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def resolve_graph(self) -> CSRGraph:
        if isinstance(self.graph, GraphSpec):
            return self.graph.load()
        return self.graph

    def make_algorithm(self):
        return make_algorithm(self.algorithm, **self.algorithm_kwargs)

    def cache_key(self, code_version: str) -> str:
        """Content-addressed identity of this job's *result*.

        Key material: graph fingerprint, algorithm (+ kwargs), config
        hash, run parameters, the simulator code version — so any
        change to the simulation semantics invalidates the cache without
        manual versioning — and the engine *equivalence class*: results
        from the reference and batched engines share entries exactly
        while the two are verified cycle-exact against each other (see
        :func:`repro.accel.engine.engine_cache_token`).
        """
        payload = json.dumps({
            "graph": graph_fingerprint(self.graph),
            "algorithm": self.algorithm,
            "algorithm_kwargs": self.algorithm_kwargs,
            "config": self.config.config_hash(),
            "source": self.source,
            "max_iterations": self.max_iterations,
            "num_slices": self.num_slices,
            "offchip_bytes_per_cycle":
                self.offchip_bytes_per_cycle if self.num_slices > 1 else None,
            "engine": engine_cache_token(self.engine),
            "code": code_version,
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def cost_hint(self) -> float:
        """Relative cost estimate (edges to traverse) for scheduling.

        Pool utilization on a skewed matrix improves when the largest
        jobs start first; this hint orders them without simulating.
        Symbolic specs estimate from the Table 2 registry sizes, inline
        graphs report their real edge count.  Only the *relative* order
        matters, so unknown keys degrade to "cheap", never to an error.
        """
        if isinstance(self.graph, GraphSpec):
            spec = TABLE2.get(self.graph.key)
            edges = spec.num_edges * self.graph.scale if spec else 1.0
        else:
            edges = float(self.graph.num_edges)
        if self.algorithm.upper() in ("PR", "PAGERANK"):
            # all-active iterations re-traverse every edge
            edges *= self.algorithm_kwargs.get("iterations", 2) or 1
        return edges

    def family(self) -> str:
        """Cost-model bucket: jobs over the same graph + algorithm have
        similar wall time regardless of config, so cached
        ``wall_seconds`` provenance from one family member is a better
        scheduling hint for the others than the static edge count.

        Memoized per job: inline-graph fingerprints hash the full CSR
        arrays, and the scheduler calls this once per pending job."""
        cached = self.__dict__.get("_family")
        if cached is None:
            cached = f"{self.algorithm}:{graph_fingerprint(self.graph)}"
            self.__dict__["_family"] = cached
        return cached

    def describe(self) -> str:
        graph = (self.graph.key if isinstance(self.graph, GraphSpec)
                 else self.graph.name)
        return f"{self.algorithm}/{graph}/{self.config.name}"


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------

def _normalize_algorithm(entry) -> tuple[str, dict]:
    if isinstance(entry, str):
        return entry, {}
    try:
        name, kwargs = entry
    except (TypeError, ValueError):
        raise SweepError(
            f"algorithm entry must be a name or (name, kwargs), got {entry!r}")
    return name, dict(kwargs)


def _normalize_graph(entry) -> GraphSpec | CSRGraph:
    if isinstance(entry, (GraphSpec, CSRGraph)):
        return entry
    if isinstance(entry, str):
        return GraphSpec(entry)
    raise SweepError(
        f"graph entry must be a GraphSpec, CSRGraph or dataset key, got {entry!r}")


def _axis_combos(sweep_axes: Mapping[str, Sequence] | None):
    """Cartesian product over sweep axes, deterministic axis order."""
    if not sweep_axes:
        yield {}
        return
    names = list(sweep_axes)
    combos: list[dict] = [{}]
    for name in names:
        values = list(sweep_axes[name])
        if not values:
            raise SweepError(f"sweep axis {name!r} has no values")
        combos = [{**combo, name: value} for combo in combos for value in values]
    yield from combos


def plan_jobs(
    algorithms: Iterable,
    graphs: Iterable,
    configs: Mapping[str, AcceleratorConfig] | Iterable[AcceleratorConfig],
    sweep_axes: Mapping[str, Sequence] | None = None,
    source: int = 0,
    max_iterations: int | None = None,
    engine: str | None = None,
) -> list[SweepJob]:
    """Expand the evaluation matrix into a deterministic job list.

    ``algorithms`` are names or ``(name, kwargs)`` pairs; ``graphs`` are
    dataset keys, :class:`GraphSpec` or :class:`CSRGraph`; ``configs``
    maps label -> config (or is a plain iterable, labelled by
    ``config.name``).  ``sweep_axes`` maps :class:`AcceleratorConfig`
    field names to value lists and multiplies every config by the
    cartesian product of the axes (applied via ``config.with_``).

    Job order is the nested loop graph > algorithm > config > axes, with
    graphs outermost so per-process graph memoization in the executor
    hits as often as possible.  Each job is tagged with ``graph``,
    ``algorithm``, ``config`` and one tag per swept axis.
    """
    if isinstance(configs, Mapping):
        config_items = list(configs.items())
    else:
        config_items = [(cfg.name, cfg) for cfg in configs]
    if not config_items:
        raise SweepError("no configs to sweep")
    alg_items = [_normalize_algorithm(a) for a in algorithms]
    if not alg_items:
        raise SweepError("no algorithms to sweep")
    graph_items = [_normalize_graph(g) for g in graphs]
    if not graph_items:
        raise SweepError("no graphs to sweep")

    jobs: list[SweepJob] = []
    for graph in graph_items:
        graph_label = graph.key if isinstance(graph, GraphSpec) else graph.name
        for alg_name, alg_kwargs in alg_items:
            for cfg_label, cfg in config_items:
                for combo in _axis_combos(sweep_axes):
                    try:
                        job_cfg = cfg.with_(**combo) if combo else cfg
                    except TypeError:
                        unknown = set(combo) - {f for f in cfg.to_dict()}
                        raise SweepError(
                            f"unknown sweep axis field(s): {sorted(unknown)}")
                    jobs.append(SweepJob(
                        graph=graph,
                        algorithm=alg_name,
                        algorithm_kwargs=alg_kwargs,
                        config=job_cfg,
                        source=source,
                        max_iterations=max_iterations,
                        engine=engine,
                        tags={"graph": graph_label, "algorithm": alg_name,
                              "config": cfg_label, **combo},
                    ))
    return jobs
