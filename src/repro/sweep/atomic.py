"""Atomic file writes for state shared across processes.

Every file that more than one process may read or write concurrently —
result-cache entries, the BENCH history, the lint baseline/cache — must
be written with the same discipline: write the full payload to a
temporary file in the *destination directory*, flush and fsync it, then
``os.replace`` it over the target.  ``os.replace`` is atomic on POSIX
and Windows when source and destination share a filesystem (which the
same-directory temp file guarantees), so a reader can observe the old
bytes or the new bytes but never a torn mixture, and two racing writers
converge on one winner instead of interleaving.

This module is the one blessed implementation; the ``fork-atomic-write``
lint rule flags direct write-mode ``open``/``write_text`` calls in the
sweep layer that bypass it.  It is also the first brick of the planned
``repro serve`` shared-cache protocol (N workers, one cache dir —
see ROADMAP.md).

``append_line`` covers the append-only JSONL case (the BENCH history):
a single ``write`` of one line on a file opened in append mode, which
POSIX guarantees lands contiguously for regular files when the payload
is below ``PIPE_BUF``-ish sizes — but the helper still routes through
one place so the discipline (and any future locking) has a home.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_json", "append_line",
           "exclusive_create"]


def exclusive_create(path: str | os.PathLike, text: str, *,
                     encoding: str = "utf-8") -> bool:
    """Create ``path`` with ``text`` iff it does not exist yet.

    ``O_CREAT | O_EXCL`` is the one primitive POSIX makes atomic across
    processes *and* NFS-style shared mounts, which is why the cache
    claim protocol (:meth:`repro.sweep.cache.ResultCache.claim`) builds
    on it: of N racing workers exactly one observes True.  Returns
    False when the file already exists; any other OS failure raises.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w", encoding=encoding) as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    return True


def atomic_write_text(path: str | os.PathLike, text: str, *,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp + fsync + replace).

    The parent directory is created if missing.  On any failure the
    temporary file is removed and the destination is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)       # atomic: racing writers converge
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str | os.PathLike, payload, *,
                      indent: int | None = 2, sort_keys: bool = True,
                      trailing_newline: bool = True) -> None:
    """Serialize ``payload`` deterministically and write it atomically."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    if trailing_newline:
        text += "\n"
    atomic_write_text(path, text)


def append_line(path: str | os.PathLike, line: str, *,
                encoding: str = "utf-8") -> None:
    """Append one line to a shared log file in a single write.

    ``line`` must not itself contain a newline (one record per call —
    the JSONL invariant); one is added.  The parent directory is
    created if missing.
    """
    if "\n" in line:
        raise ValueError("append_line writes exactly one record; "
                         "the line must not contain a newline")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding=encoding) as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
