"""Content-addressed on-disk result cache for sweep jobs.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the job's
sha256 cache key (see :meth:`repro.sweep.jobs.SweepJob.cache_key`).
Each entry stores the full :class:`~repro.accel.stats.SimStats` counter
set plus a human-readable provenance block, so a cache directory can be
audited with nothing but ``cat``.

The key folds in a **code version**: a digest over the source text of
every simulation-relevant subpackage (``accel``, ``hw``, ``mdp``,
``algorithms``, ``graph`` and the error taxonomy).  Editing the
simulator therefore invalidates stale results automatically; editing
orchestration layers (``bench``, ``sweep``, ``cli``) does not, because
they cannot change what a job computes.

Writes are atomic (temp file + ``os.replace``) so parallel executors and
concurrent sweep invocations can share one cache directory safely:
the worst case under a write/write race is one redundant simulation,
never a torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import repro
from repro.accel.stats import SimStats

#: Source subpackages whose text participates in the code version.
#: Orchestration layers (bench, sweep, cli) are deliberately excluded.
CODE_VERSION_SUBPACKAGES = ("accel", "hw", "mdp", "algorithms", "graph")
CODE_VERSION_MODULES = ("errors.py",)

_code_version_memo: str | None = None


def code_version() -> str:
    """Digest of the simulation-relevant source tree (memoized)."""
    global _code_version_memo
    if _code_version_memo is None:
        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        paths: list[Path] = [root / name for name in CODE_VERSION_MODULES]
        for sub in CODE_VERSION_SUBPACKAGES:
            paths.extend(sorted((root / sub).glob("*.py")))
        for path in paths:
            h.update(str(path.relative_to(root)).encode("utf-8"))
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version_memo = h.hexdigest()
    return _code_version_memo


class ResultCache:
    """On-disk SimStats store addressed by job cache key."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimStats | None:
        """Look up one entry; any unreadable/stale-schema entry is a miss."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            stats = SimStats.from_dict(payload["stats"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # corrupt or schema-incompatible entry: drop and recompute
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: SimStats, provenance: dict | None = None) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "provenance": provenance or {},
            "stats": stats.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultCache(root={str(self.root)!r}, "
                f"hits={self.hits}, misses={self.misses})")
