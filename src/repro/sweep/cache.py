"""Content-addressed on-disk result cache for sweep jobs.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the job's
sha256 cache key (see :meth:`repro.sweep.jobs.SweepJob.cache_key`).
Each entry stores the full :class:`~repro.accel.stats.SimStats` counter
set plus a human-readable provenance block, so a cache directory can be
audited with nothing but ``cat``.

The key folds in a **code version**: a digest over the source text of
every simulation-relevant subpackage (``accel``, ``hw``, ``mdp``,
``algorithms``, ``graph`` and the error taxonomy).  Editing the
simulator therefore invalidates stale results automatically; editing
orchestration layers (``bench``, ``sweep``, ``cli``) does not, because
they cannot change what a job computes.

Writes are atomic (temp file + ``os.replace``) so parallel executors and
concurrent sweep invocations can share one cache directory safely:
the worst case under a write/write race is one redundant simulation,
never a torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.accel.stats import SimStats
from repro.sweep.atomic import atomic_write_json, exclusive_create

#: Source subpackages whose text participates in the code version.
#: Orchestration layers (bench, sweep, cli) are deliberately excluded.
CODE_VERSION_SUBPACKAGES = ("accel", "hw", "mdp", "algorithms", "graph")
CODE_VERSION_MODULES = ("errors.py",)

_code_version_memo: str | None = None
#: Bumped whenever :func:`refresh_code_version` observes a digest
#: change; long-lived processes (the serve daemon) compare generations
#: instead of re-digesting the tree per request.
_code_generation = 0


def _digest_source_tree() -> str:
    root = Path(repro.__file__).parent
    h = hashlib.sha256()
    paths: list[Path] = [root / name for name in CODE_VERSION_MODULES]
    for sub in CODE_VERSION_SUBPACKAGES:
        # recursive: nested packages (e.g. accel/engine/) must
        # invalidate cache entries exactly like top-level modules
        paths.extend(sorted((root / sub).rglob("*.py")))
    for path in paths:
        h.update(str(path.relative_to(root)).encode("utf-8"))
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def code_version() -> str:
    """Digest of the simulation-relevant source tree (memoized).

    The digest is computed **once per process** and reused by every
    :meth:`SweepJob.cache_key <repro.sweep.jobs.SweepJob.cache_key>`
    call site; a long-lived daemon only re-reads the tree on an
    explicit :func:`refresh_code_version` (the serve ``reload``
    request), never on the job hot path.
    """
    global _code_version_memo
    if _code_version_memo is None:
        _code_version_memo = _digest_source_tree()
    return _code_version_memo


def code_generation() -> int:
    """Monotonic counter of observed code-version changes.

    Starts at 0 and only moves when :func:`refresh_code_version` finds
    the source digest changed — the generation-counter invalidation
    scheme of the serve daemon: workers stamp results with the
    generation they were spawned under, and a bumped generation tells
    resident state (graph memos, learned cost models) it is stale
    without any of them re-hashing the tree.
    """
    return _code_generation


def refresh_code_version() -> str:
    """Re-digest the source tree; bump the generation if it changed.

    This is the *only* way the memoized :func:`code_version` moves
    within a process.  Returns the (possibly unchanged) digest.
    """
    global _code_version_memo, _code_generation
    fresh = _digest_source_tree()
    if fresh != _code_version_memo and _code_version_memo is not None:
        _code_generation += 1
    _code_version_memo = fresh
    return fresh


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk result: identity, size and age, no payload."""

    key: str
    path: Path
    size_bytes: int
    mtime: float


@dataclass(frozen=True)
class CacheClaim:
    """Exclusive right to *compute* one cache entry (not to read it).

    Claims are advisory lock files next to the entry they cover
    (``<key>.claim``), taken with an atomic exclusive create so N
    workers — across processes and hosts sharing one cache directory —
    agree on a single owner per key.  Losing a claim race means someone
    else is already simulating that job: wait for the entry instead of
    duplicating the work.  A claim is *not* required for reads, and a
    crashed owner's claim goes stale after ``stale_after`` seconds, so
    the worst failure mode remains one redundant simulation, never a
    deadlock and never a torn entry.
    """

    key: str
    path: Path
    owner: str


@dataclass(frozen=True)
class GcStats:
    """Outcome of one :meth:`ResultCache.gc` pass."""

    scanned: int
    removed: int
    bytes_freed: int
    bytes_kept: int


class ResultCache:
    """On-disk SimStats store addressed by job cache key."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimStats | None:
        """Look up one entry; any unreadable/stale-schema entry is a miss."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            stats = SimStats.from_dict(payload["stats"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # corrupt or schema-incompatible entry: drop and recompute
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: SimStats, provenance: dict | None = None) -> None:
        payload = {
            "key": key,
            "provenance": provenance or {},
            "stats": stats.to_dict(),
        }
        # temp + fsync + replace: concurrent sweep workers sharing this
        # cache dir converge on one winner, never a torn entry
        atomic_write_json(self._path(key), payload, indent=1,
                          trailing_newline=False)

    # ------------------------------------------------------------------
    # Ownership: claim files for the shared-cache compute protocol
    # ------------------------------------------------------------------

    #: Seconds after which an unreleased claim is presumed dead and may
    #: be broken.  Generous: claims only outlive their owner on a crash,
    #: and a broken live claim costs one redundant simulation.
    DEFAULT_CLAIM_STALE_SECONDS = 600.0

    def _claim_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.claim"

    def claim(self, key: str, owner: str | None = None,
              stale_after: float = DEFAULT_CLAIM_STALE_SECONDS) -> CacheClaim | None:
        """Try to become the one worker computing entry ``key``.

        Returns a :class:`CacheClaim` on success, None when another
        live owner holds the claim.  A claim file older than
        ``stale_after`` seconds is treated as abandoned: it is removed
        and the create is retried, with the O_EXCL create — routed
        through :func:`repro.sweep.atomic.exclusive_create` — deciding
        any race among the breakers.  (The check-then-unlink window
        means two breakers can in theory both clear a *just-refreshed*
        claim; the cost is one redundant simulation, which the
        atomic-write cache tolerates by design.)
        """
        if owner is None:
            owner = f"{os.uname().nodename}:{os.getpid()}"
        path = self._claim_path(key)
        payload = json.dumps({"key": key, "owner": owner,
                              "claimed_at": time.time()}, sort_keys=True)
        for _ in range(2):                  # initial try + post-break retry
            if exclusive_create(path, payload):
                return CacheClaim(key=key, path=path, owner=owner)
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:
                continue                    # released mid-race: retry create
            if age <= stale_after:
                return None                 # live owner, back off
            try:
                path.unlink()               # abandoned: break and retry
            except OSError:
                pass
        return None

    def release(self, claim: CacheClaim) -> None:
        """Drop a claim (idempotent; a broken/stolen claim is a no-op)."""
        try:
            claim.path.unlink()
        except OSError:
            pass

    def claim_owner(self, key: str) -> str | None:
        """Owner string of a live claim on ``key``, if any."""
        try:
            with open(self._claim_path(key), encoding="utf-8") as fh:
                value = json.load(fh).get("owner")
            return str(value) if value is not None else None
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def entries(self) -> list[CacheEntry]:
        """Every readable entry, oldest first (entries that vanish
        mid-scan — a concurrent GC — are skipped, not errors)."""
        found = []
        for path in self.root.glob("*/*.json"):
            try:
                st = path.stat()
            except OSError:
                continue
            found.append(CacheEntry(key=path.stem, path=path,
                                    size_bytes=st.st_size, mtime=st.st_mtime))
        found.sort(key=lambda e: (e.mtime, e.key))
        return found

    def total_bytes(self) -> int:
        return sum(e.size_bytes for e in self.entries())

    def iter_provenance(self):
        """Yield every readable entry's provenance dict (oldest first).

        Used by the executor's learned cost model; unreadable or
        provenance-less entries are skipped, not errors.  Reads every
        entry file, so call it once per sweep, not per job.
        """
        for entry in self.entries():
            try:
                with open(entry.path, encoding="utf-8") as fh:
                    provenance = json.load(fh).get("provenance")
            except (OSError, ValueError):
                continue
            if isinstance(provenance, dict):
                yield provenance

    def wall_seconds(self, key: str) -> float | None:
        """Recorded simulation wall time of one entry, if any."""
        try:
            with open(self._path(key), encoding="utf-8") as fh:
                value = json.load(fh).get("provenance", {}).get("wall_seconds")
            return float(value) if value is not None else None
        except (OSError, ValueError, TypeError):
            return None

    def gc(self, max_age_seconds: float | None = None,
           max_bytes: int | None = None, now: float | None = None,
           dry_run: bool = False) -> GcStats:
        """Evict entries beyond an age and/or total-size budget.

        First drops everything older than ``max_age_seconds`` (by entry
        mtime), then — if the survivors still exceed ``max_bytes`` —
        drops oldest-first until the cache fits.  ``dry_run`` reports
        what would be removed without touching disk.  With neither
        budget set this is a no-op scan.
        """
        entries = self.entries()
        now = time.time() if now is None else now
        doomed: list[CacheEntry] = []
        kept: list[CacheEntry] = []
        for entry in entries:
            if max_age_seconds is not None and now - entry.mtime > max_age_seconds:
                doomed.append(entry)
            else:
                kept.append(entry)
        if max_bytes is not None:
            kept_bytes = sum(e.size_bytes for e in kept)
            for entry in list(kept):            # oldest first
                if kept_bytes <= max_bytes:
                    break
                kept.remove(entry)
                doomed.append(entry)
                kept_bytes -= entry.size_bytes
        removed = 0
        freed = 0
        for entry in doomed:
            if not dry_run:
                try:
                    entry.path.unlink()
                except OSError:
                    continue
            removed += 1
            freed += entry.size_bytes
        if not dry_run:
            self._prune_empty_shards()
        return GcStats(scanned=len(entries), removed=removed,
                       bytes_freed=freed,
                       bytes_kept=sum(e.size_bytes for e in kept))

    def _prune_empty_shards(self) -> None:
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()            # fails (correctly) if non-empty
                except OSError:
                    pass

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._prune_empty_shards()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultCache(root={str(self.root)!r}, "
                f"hits={self.hits}, misses={self.misses})")
