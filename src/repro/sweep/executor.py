"""Sweep execution: shard independent simulation jobs across processes.

The executor is deliberately boring: cycle simulation is deterministic,
so parallel execution only changes *when* a result is computed, never
*what* it is.  Results are re-ordered by job index before returning, so
``run_sweep(jobs, num_workers=8)`` is byte-for-byte identical to the
serial path — the property the benchmark suite asserts.

Cache protocol (when a :class:`~repro.sweep.cache.ResultCache` is
given):

1. every job's cache key is computed up front (one code-version digest,
   one config hash and one graph fingerprint per job);
2. hits are filled in immediately; identical keys inside one sweep are
   deduplicated so the simulation runs once;
3. only misses are dispatched to workers, serially when
   ``num_workers == 1`` or when no usable multiprocessing context
   exists, otherwise via a process pool in largest-job-first order
   (:func:`scheduled_order`) so a skewed matrix keeps the pool busy;
4. fresh results are written back with provenance — including the
   per-job simulation wall time — before returning.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.accel.accelerator import AcceleratorSim
from repro.accel.stats import SimStats
from repro.errors import SweepError
from repro.sweep.cache import ResultCache, code_version
from repro.sweep.jobs import GraphSpec, SweepJob, graph_fingerprint

#: Per-worker-process graph memo: loading a Table 2 stand-in is R-MAT
#: generation, which costs real time; each worker resolves a GraphSpec
#: once and reuses it for every job that names the same spec.
_GRAPH_MEMO: dict[str, object] = {}


def execute_job(job: SweepJob) -> SimStats:
    """Run one job to completion in the current process."""
    fp = graph_fingerprint(job.graph)
    graph = _GRAPH_MEMO.get(fp)
    if graph is None:
        graph = job.resolve_graph()
        if isinstance(job.graph, GraphSpec):
            _GRAPH_MEMO[fp] = graph
    if job.num_slices < 1:
        raise SweepError(f"num_slices must be >= 1, got {job.num_slices}")
    if job.num_slices > 1:
        from repro.accel.slicing import SlicedAcceleratorSim
        from repro.graph.partition import partition_by_destination
        sim = SlicedAcceleratorSim(
            job.config, graph, job.make_algorithm(),
            slices=partition_by_destination(graph, job.num_slices),
            offchip_bytes_per_cycle=job.offchip_bytes_per_cycle,
            engine=job.engine)
    else:
        sim = AcceleratorSim(job.config, graph, job.make_algorithm(),
                             engine=job.engine)
    return sim.run(source=job.source, max_iterations=job.max_iterations).stats


def _execute_indexed(payload: tuple[int, SweepJob]) -> tuple[int, SimStats, float]:
    index, job = payload
    t0 = time.perf_counter()
    stats = execute_job(job)
    return index, stats, time.perf_counter() - t0


def scheduled_order(pending: list[tuple[int, SweepJob]],
                    cost_fn=None) -> list[tuple[int, SweepJob]]:
    """Dispatch order for a worker pool: largest jobs first.

    Sorting by estimated cost (descending, index tie-break) keeps the
    pool busy at the tail of a skewed matrix — the big R-MAT jobs no
    longer land on one straggler worker after the small ones drain.
    ``cost_fn`` defaults to the static :meth:`SweepJob.cost_hint`; pass
    the result of :func:`learned_cost_model` to rank by measured
    wall-seconds instead.  Results are re-ordered by index afterwards,
    so this changes wall-clock only, never output.
    """
    if cost_fn is None:
        cost_fn = SweepJob.cost_hint
    return sorted(pending, key=lambda item: (-cost_fn(item[1]), item[0]))


def learned_cost_model(cache: "ResultCache | None",
                       jobs: list[SweepJob]):
    """Cost estimator preferring cached ``wall_seconds`` provenance.

    Scans the cache's provenance records for the (graph, algorithm)
    families present in ``jobs`` and averages their recorded simulation
    wall times.  Jobs whose family has measurements are ranked by those
    seconds; the rest fall back to the static edge-count hint, rescaled
    into seconds by the median seconds-per-edge of the measured jobs so
    the two populations interleave sensibly.  Returns None when the
    cache holds no usable measurements (callers then keep the static
    ranking) — unknown families degrade to the static hint, never to an
    error.
    """
    if cache is None:
        return None
    families = {job.family() for job in jobs}
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for prov in cache.iter_provenance():
        family = prov.get("family")
        seconds = prov.get("wall_seconds")
        if (family in families and isinstance(seconds, (int, float))
                and seconds > 0):
            sums[family] = sums.get(family, 0.0) + float(seconds)
            counts[family] = counts.get(family, 0) + 1
    if not sums:
        return None
    means = {family: sums[family] / counts[family] for family in sums}
    ratios = sorted(means[job.family()] / max(job.cost_hint(), 1.0)
                    for job in jobs if job.family() in means)
    seconds_per_edge = ratios[len(ratios) // 2]

    def cost(job: SweepJob) -> float:
        learned = means.get(job.family())
        if learned is not None:
            return learned
        return job.cost_hint() * seconds_per_edge

    return cost


def resolve_workers(num_workers: int | None) -> int:
    """Normalize a ``--jobs`` request: None/0 means one per CPU."""
    if num_workers is None or num_workers == 0:
        return os.cpu_count() or 1
    if num_workers < 0:
        raise SweepError(f"num_workers must be >= 0 or None, got {num_workers}")
    return num_workers


@dataclass
class SweepOutcome:
    """Results of one sweep, in job order, plus execution accounting."""

    jobs: list[SweepJob]
    stats: list[SimStats]
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    workers_used: int = 1
    wall_seconds: float = 0.0
    #: per-job simulation wall time, in job order; 0.0 for cache hits
    #: and duplicate-key fills (nothing was simulated for them)
    job_seconds: list[float] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def rows(self, metrics: tuple[str, ...] = ("gteps", "total_cycles")) -> list[dict]:
        """Tag dict + selected stat attributes per job, in job order."""
        out = []
        for job, stats in zip(self.jobs, self.stats):
            row = dict(job.tags)
            for metric in metrics:
                row[metric] = getattr(stats, metric)
            out.append(row)
        return out


def run_sweep(
    jobs: list[SweepJob],
    num_workers: int | None = 1,
    cache: ResultCache | str | os.PathLike | None = None,
    progress=None,
) -> SweepOutcome:
    """Execute a job list and return its stats in job order.

    ``num_workers``: 1 runs in-process (serial), ``None``/0 uses one
    worker per CPU, N > 1 shards across N processes.  ``cache`` may be a
    :class:`ResultCache` or a directory path; omit it to always
    simulate.  ``progress``, if given, is called as
    ``progress(done, total, job)`` after every completed job.
    """
    start = time.monotonic()
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    workers = resolve_workers(num_workers)

    results: list[SimStats | None] = [None] * len(jobs)
    hits = 0
    pending: list[tuple[int, SweepJob]] = []
    keys: list[str | None] = [None] * len(jobs)
    if cache is not None:
        version = code_version()
        key_owner: dict[str, int] = {}   # first pending job per duplicate key
        for i, job in enumerate(jobs):
            key = job.cache_key(version)
            keys[i] = key
            if key in key_owner:
                continue                 # resolved when the owner finishes
            stats = cache.get(key)
            if stats is not None:
                results[i] = stats
                hits += 1
            else:
                key_owner[key] = i
                pending.append((i, job))
    else:
        pending = list(enumerate(jobs))

    done = len(jobs) - len(pending)
    executed = 0
    workers_used = 1 if len(pending) <= 1 else workers
    job_seconds = [0.0] * len(jobs)

    def _complete(index: int, stats: SimStats, seconds: float) -> None:
        nonlocal done, executed
        results[index] = stats
        job_seconds[index] = seconds
        executed += 1
        done += 1
        if cache is not None:
            job = jobs[index]
            cache.put(keys[index], stats, provenance={
                "job": job.describe(),
                "family": job.family(),
                "tags": {k: repr(v) for k, v in job.tags.items()},
                "config": job.config.to_dict(),
                "wall_seconds": round(seconds, 6),
            })
        if progress is not None:
            progress(done, len(jobs), jobs[index])

    pool = None
    if workers_used > 1:
        workers_used = min(workers_used, len(pending))
        try:
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")
            pool = ctx.Pool(processes=workers_used)
        except (OSError, ImportError):   # no /dev/shm, fork denied ...
            workers_used = 1
    # only pool *creation* falls back to serial; errors raised while
    # consuming results (job failures, cache writes, progress callbacks)
    # propagate instead of silently re-running everything in-process
    if pool is not None:
        # learned per-family wall times (from cache provenance) rank the
        # pending jobs better than the static edge estimate on re-runs;
        # skipped when every pending job starts immediately anyway —
        # ordering only matters once jobs outnumber the workers, and the
        # model costs a full cache scan
        cost_fn = (learned_cost_model(cache, [job for _, job in pending])
                   if len(pending) > workers_used else None)
        with pool:
            for index, stats, seconds in pool.imap_unordered(
                    _execute_indexed, scheduled_order(pending, cost_fn),
                    chunksize=1):
                _complete(index, stats, seconds)
    else:
        for index, job in pending:
            t0 = time.perf_counter()
            stats = execute_job(job)
            _complete(index, stats, time.perf_counter() - t0)

    # fill duplicate-key jobs from their owner's result
    if cache is not None:
        by_key = {keys[i]: results[i] for i in range(len(jobs))
                  if results[i] is not None}
        for i in range(len(jobs)):
            if results[i] is None:
                results[i] = by_key[keys[i]]
                hits += 1

    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        raise SweepError(f"jobs {missing} produced no result (executor bug)")

    return SweepOutcome(
        jobs=jobs,
        stats=results,                     # type: ignore[arg-type]
        cache_hits=hits,
        cache_misses=len(jobs) - hits,
        executed=executed,
        workers_used=workers_used,
        wall_seconds=time.monotonic() - start,
        job_seconds=job_seconds,
    )
