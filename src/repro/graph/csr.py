"""Compressed Sparse Row graph container (paper Fig. 1).

A graph is encoded with three arrays, exactly as in the paper:

* ``offsets`` — indexed by vertex id; entry ``u`` stores the position of
  ``u``'s first outgoing edge inside ``dst``/``weights``.  Length ``V + 1``
  so that ``offsets[u + 1] - offsets[u]`` is the out-degree.
* ``dst`` — destination vertex id of every outgoing edge (the paper's
  Edge Array, which "maintains destination vertex ID and weight").
* ``weights`` — edge weight of every outgoing edge.

The Property Array of the paper (current per-vertex value) lives with the
algorithm state, not the topology, so it is not stored here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphFormatError

#: Bit width the paper quantizes vertex ids and property values to
#: ("The ID and property data of each vertex are quantified to 19 bits
#: to fully use on-chip memory capacity", Section 5.1).
PAPER_ID_BITS = 19
#: Edge weights also travel through the datapath; the RTL uses the same
#: quantization for the values carried per edge.
PAPER_WEIGHT_BITS = 19


@dataclass(frozen=True)
class MemoryFootprint:
    """On-chip buffer footprint of one graph, in bytes, per data array.

    Mirrors the arrays of the paper's Fig. 7 layout: Offset Array,
    Edge Array (destination ids), Edge Info Array (weights), Property
    Array, and the combined ActiveVertex + tProperty Array.
    """

    offset_bytes: int
    edge_bytes: int
    edge_info_bytes: int
    property_bytes: int
    active_and_tproperty_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.offset_bytes
            + self.edge_bytes
            + self.edge_info_bytes
            + self.property_bytes
            + self.active_and_tproperty_bytes
        )

    def fits(self, budget_bytes: int) -> bool:
        """True when every array fits the given on-chip budget."""
        return self.total_bytes <= budget_bytes


class CSRGraph:
    """Directed graph in CSR form with integer weights.

    Parameters
    ----------
    offsets:
        int64 array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``offsets[0] == 0`` and ``offsets[-1] == num_edges``.
    dst:
        int64 array of destination vertex ids, one per edge.
    weights:
        int64 array of edge weights, one per edge.  The paper assigns
        random integer weights to unweighted graphs (Section 5.1).
    name:
        Optional human-readable name (dataset registry fills this in).
    """

    def __init__(
        self,
        offsets: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray,
        name: str = "graph",
    ) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.int64)
        self.name = name
        self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges,
        weights=None,
        name: str = "graph",
        dedup: bool = False,
    ) -> "CSRGraph":
        """Build a CSR graph from an iterable of ``(src, dst)`` pairs.

        Edges are sorted by source (stable, so the relative order of one
        vertex's out-edges is preserved).  ``weights`` defaults to all
        ones; pass ``dedup=True`` to drop duplicate ``(src, dst)`` pairs
        (the first occurrence wins).
        """
        edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                              dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise GraphFormatError(
                f"edges must be an (E, 2) array, got shape {edge_arr.shape}"
            )
        if weights is None:
            weight_arr = np.ones(len(edge_arr), dtype=np.int64)
        else:
            weight_arr = np.asarray(weights, dtype=np.int64)
            if weight_arr.shape != (len(edge_arr),):
                raise GraphFormatError(
                    "weights must have one entry per edge: "
                    f"{weight_arr.shape} vs {len(edge_arr)} edges"
                )

        if dedup and len(edge_arr):
            _, keep = np.unique(edge_arr[:, 0] * (edge_arr[:, 1].max() + 1)
                                + edge_arr[:, 1], return_index=True)
            keep.sort()
            edge_arr = edge_arr[keep]
            weight_arr = weight_arr[keep]

        order = np.argsort(edge_arr[:, 0], kind="stable") if len(edge_arr) else np.array([], dtype=np.int64)
        src_sorted = edge_arr[order, 0] if len(edge_arr) else np.array([], dtype=np.int64)
        dst_sorted = edge_arr[order, 1] if len(edge_arr) else np.array([], dtype=np.int64)
        w_sorted = weight_arr[order] if len(edge_arr) else np.array([], dtype=np.int64)

        counts = np.bincount(src_sorted, minlength=num_vertices) if num_vertices else np.array([], dtype=np.int64)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(offsets, dst_sorted, w_sorted, name=name)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.dst)

    @property
    def mean_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def out_degree(self, u: int | None = None):
        """Out-degree of vertex ``u``, or the full degree array if omitted."""
        if u is None:
            return np.diff(self.offsets)
        return int(self.offsets[u + 1] - self.offsets[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Destination ids of ``u``'s outgoing edges."""
        return self.dst[self.offsets[u]:self.offsets[u + 1]]

    def edge_slice(self, u: int) -> tuple[int, int]:
        """``(Off, nOff)`` pair for vertex ``u`` — what the Offset Array read yields."""
        return int(self.offsets[u]), int(self.offsets[u + 1])

    def out_weights(self, u: int) -> np.ndarray:
        return self.weights[self.offsets[u]:self.offsets[u + 1]]

    def edges(self):
        """Iterate ``(src, dst, weight)`` triples in CSR order."""
        for u in range(self.num_vertices):
            for e in range(self.offsets[u], self.offsets[u + 1]):
                yield u, int(self.dst[e]), int(self.weights[e])

    def edge_sources(self) -> np.ndarray:
        """Per-edge source vertex ids (expanded from the offset array)."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                         np.diff(self.offsets))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """Graph with every edge direction flipped (weights preserved)."""
        srcs = self.edge_sources()
        pairs = np.stack([self.dst, srcs], axis=1)
        return CSRGraph.from_edges(self.num_vertices, pairs, self.weights,
                                   name=f"{self.name}-rev")

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """Copy of this graph with a replacement weight array."""
        return CSRGraph(self.offsets.copy(), self.dst.copy(),
                        np.asarray(weights, dtype=np.int64), name=self.name)

    def subgraph_by_destination(self, lo: int, hi: int) -> "CSRGraph":
        """Keep only edges whose destination lies in ``[lo, hi)``.

        Vertex ids are preserved (not compacted): this is the slicing
        primitive used by interval-shard partitioning, where each slice
        owns a destination interval but all sources remain visible.
        """
        mask = (self.dst >= lo) & (self.dst < hi)
        srcs = self.edge_sources()[mask]
        pairs = np.stack([srcs, self.dst[mask]], axis=1)
        return CSRGraph.from_edges(self.num_vertices, pairs, self.weights[mask],
                                   name=f"{self.name}[{lo}:{hi})")

    # ------------------------------------------------------------------
    # Validation and accounting
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`GraphFormatError` on any structural inconsistency."""
        if self.offsets.ndim != 1 or len(self.offsets) < 1:
            raise GraphFormatError("offsets must be a 1-D array of length >= 1")
        if self.offsets[0] != 0:
            raise GraphFormatError(f"offsets[0] must be 0, got {self.offsets[0]}")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphFormatError("offsets must be monotonically non-decreasing")
        if self.offsets[-1] != len(self.dst):
            raise GraphFormatError(
                f"offsets[-1]={self.offsets[-1]} does not match edge count {len(self.dst)}"
            )
        if len(self.weights) != len(self.dst):
            raise GraphFormatError(
                f"weights length {len(self.weights)} != edge count {len(self.dst)}"
            )
        if len(self.dst) and (self.dst.min() < 0 or self.dst.max() >= self.num_vertices):
            raise GraphFormatError("edge destination out of range")

    def memory_footprint(
        self,
        id_bits: int = PAPER_ID_BITS,
        property_bits: int = PAPER_ID_BITS,
        weight_bits: int = PAPER_WEIGHT_BITS,
        offset_bits: int = 32,
    ) -> MemoryFootprint:
        """On-chip buffer bytes needed for this graph (paper Fig. 7 layout).

        The paper quantizes vertex id and property data to 19 bits.  Bits
        are converted to bytes at the array level (total bits / 8) because
        on-chip SRAM macros pack entries tightly.
        """
        v, e = self.num_vertices, self.num_edges

        def _bytes(count: int, bits: int) -> int:
            return (count * bits + 7) // 8

        return MemoryFootprint(
            offset_bytes=_bytes(v + 1, offset_bits),
            edge_bytes=_bytes(e, id_bits),
            edge_info_bytes=_bytes(e, weight_bits),
            property_bytes=_bytes(v, property_bits),
            # ActiveVertex Array (id + property per active vertex, worst
            # case all vertices) plus tProperty Array (one slot/vertex).
            active_and_tproperty_bytes=_bytes(v, id_bits + property_bits)
            + _bytes(v, property_bits),
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSRGraph(name={self.name!r}, V={self.num_vertices}, "
                f"E={self.num_edges}, mean_degree={self.mean_degree:.1f})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (np.array_equal(self.offsets, other.offsets)
                and np.array_equal(self.dst, other.dst)
                and np.array_equal(self.weights, other.weights))

    __hash__ = None  # mutable arrays: not hashable
