"""Seeded synthetic graph generators.

The paper evaluates on two R-MAT graphs (Graph500 parameters) and four
SNAP social networks.  The SNAP downloads are unavailable offline, so the
dataset registry (:mod:`repro.graph.datasets`) instantiates skewed R-MAT
stand-ins with matching vertex/edge counts; this module provides the
generators themselves plus small deterministic fixtures used by tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GenerationError
from repro.graph.csr import CSRGraph

#: Graph500 R-MAT partition probabilities (Ang et al. 2010), used for the
#: paper's RMAT14 / RMAT16 datasets.
GRAPH500_A = 0.57
GRAPH500_B = 0.19
GRAPH500_C = 0.19

#: The paper assigns "random integer weights" to unweighted graphs.  We
#: draw uniformly from [1, DEFAULT_MAX_WEIGHT]; any positive bound works
#: for SSSP/SSWP since only relative order matters.
DEFAULT_MAX_WEIGHT = 63


def random_weights(num_edges: int, rng: np.random.Generator,
                   max_weight: int = DEFAULT_MAX_WEIGHT) -> np.ndarray:
    """Random integer weights in ``[1, max_weight]`` (paper Section 5.1)."""
    return rng.integers(1, max_weight + 1, size=num_edges, dtype=np.int64)


def rmat(
    scale: int,
    edge_factor: float,
    a: float = GRAPH500_A,
    b: float = GRAPH500_B,
    c: float = GRAPH500_C,
    seed: int = 1,
    name: str | None = None,
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> CSRGraph:
    """Recursive-MATrix power-law graph with ``2**scale`` vertices.

    ``edge_factor`` is the average out-degree; the total edge count is
    ``round(edge_factor * 2**scale)``.  Probabilities ``(a, b, c)`` and
    implied ``d = 1 - a - b - c`` steer each edge into the four quadrants
    of the adjacency matrix, one bit per recursion level, exactly as in
    the Graph500 reference generator.  Self-loops and duplicates are kept
    (hardware simulators process them like any other edge).

    As required by the Graph500 specification, vertex ids are scrambled
    with a random permutation after generation.  Without the scramble,
    R-MAT ids carry the recursion bias in their *low* bits (P(bit=0) =
    a+b per level), which would alias catastrophically with the
    accelerators' ``id mod banks`` interleaving — e.g. 0.76**5 = 25% of
    all edges would land in tProperty bank 0 of a 32-bank design.
    """
    if scale < 0 or scale > 30:
        raise GenerationError(f"rmat scale {scale} out of supported range [0, 30]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or a <= 0:
        raise GenerationError(f"invalid rmat probabilities a={a} b={b} c={c} (d={d:.3f})")

    num_vertices = 1 << scale
    num_edges = int(round(edge_factor * num_vertices))
    rng = np.random.default_rng(seed)

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # One recursion level per scale bit: pick the quadrant for all edges
    # at once, vectorized.
    for _level in range(scale):
        r = rng.random(num_edges)
        src_bit = (r >= a + b).astype(np.int64)          # quadrants c, d set the row bit
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit

    # Graph500 scramble step: relabel vertices with a random permutation.
    perm = rng.permutation(num_vertices).astype(np.int64)
    src = perm[src]
    dst = perm[dst]

    pairs = np.stack([src, dst], axis=1)
    weights = random_weights(num_edges, rng, max_weight)
    graph_name = name or f"rmat{scale}"
    return CSRGraph.from_edges(num_vertices, pairs, weights, name=graph_name)


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int = 1,
    name: str = "erdos-renyi",
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> CSRGraph:
    """Uniform random directed graph with exactly ``num_edges`` edges."""
    if num_vertices <= 0:
        raise GenerationError("erdos_renyi needs at least one vertex")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    weights = random_weights(num_edges, rng, max_weight)
    return CSRGraph.from_edges(num_vertices, np.stack([src, dst], axis=1),
                               weights, name=name)


def preferential_attachment(
    num_vertices: int,
    out_degree: int,
    seed: int = 1,
    name: str = "pref-attach",
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> CSRGraph:
    """Barabási–Albert-style graph: each new vertex attaches to ``out_degree``
    earlier vertices with probability proportional to their in-degree.

    Produces the heavy-tailed *in*-degree skew typical of social graphs —
    the distribution that stresses the dataflow-propagation site, because
    many edges funnel into few destination channels.
    """
    if num_vertices < 2 or out_degree < 1:
        raise GenerationError("preferential_attachment needs >=2 vertices, degree >=1")
    rng = np.random.default_rng(seed)
    targets: list[int] = []
    sources: list[int] = []
    # Repeated-node list trick: sampling uniformly from `attachment`
    # implements degree-proportional choice.
    attachment = [0]
    for v in range(1, num_vertices):
        k = min(out_degree, len(attachment))
        idx = rng.integers(0, len(attachment), size=k)
        chosen = [attachment[i] for i in idx]
        for t in chosen:
            sources.append(v)
            targets.append(t)
            attachment.append(t)
        attachment.append(v)
    pairs = np.stack([np.array(sources, dtype=np.int64),
                      np.array(targets, dtype=np.int64)], axis=1)
    weights = random_weights(len(sources), rng, max_weight)
    return CSRGraph.from_edges(num_vertices, pairs, weights, name=name)


# ----------------------------------------------------------------------
# Small deterministic fixtures (used heavily in unit tests and examples)
# ----------------------------------------------------------------------

def chain(num_vertices: int, weight: int = 1, name: str = "chain") -> CSRGraph:
    """Directed path 0 -> 1 -> ... -> V-1."""
    if num_vertices < 1:
        raise GenerationError("chain needs at least one vertex")
    pairs = np.stack([np.arange(num_vertices - 1, dtype=np.int64),
                      np.arange(1, num_vertices, dtype=np.int64)], axis=1)
    weights = np.full(num_vertices - 1, weight, dtype=np.int64)
    return CSRGraph.from_edges(num_vertices, pairs, weights, name=name)


def star(num_leaves: int, weight: int = 1, name: str = "star") -> CSRGraph:
    """Vertex 0 pointing at ``num_leaves`` leaves — a pure fan-out hotspot."""
    if num_leaves < 1:
        raise GenerationError("star needs at least one leaf")
    pairs = np.stack([np.zeros(num_leaves, dtype=np.int64),
                      np.arange(1, num_leaves + 1, dtype=np.int64)], axis=1)
    weights = np.full(num_leaves, weight, dtype=np.int64)
    return CSRGraph.from_edges(num_leaves + 1, pairs, weights, name=name)


def inverse_star(num_sources: int, weight: int = 1, name: str = "inverse-star") -> CSRGraph:
    """All vertices pointing at vertex 0 — a pure reduce hotspot that
    saturates one vPE and exposes head-of-line blocking in crossbars."""
    if num_sources < 1:
        raise GenerationError("inverse_star needs at least one source")
    pairs = np.stack([np.arange(1, num_sources + 1, dtype=np.int64),
                      np.zeros(num_sources, dtype=np.int64)], axis=1)
    weights = np.full(num_sources, weight, dtype=np.int64)
    return CSRGraph.from_edges(num_sources + 1, pairs, weights, name=name)


def complete(num_vertices: int, weight: int = 1, name: str = "complete") -> CSRGraph:
    """Complete directed graph without self loops."""
    if num_vertices < 1:
        raise GenerationError("complete needs at least one vertex")
    src, dst = np.meshgrid(np.arange(num_vertices), np.arange(num_vertices),
                           indexing="ij")
    mask = src != dst
    pairs = np.stack([src[mask], dst[mask]], axis=1).astype(np.int64)
    weights = np.full(len(pairs), weight, dtype=np.int64)
    return CSRGraph.from_edges(num_vertices, pairs, weights, name=name)


def grid_2d(rows: int, cols: int, weight: int = 1, name: str = "grid") -> CSRGraph:
    """Four-neighbour 2-D mesh (both directions) — the regular topology of
    EDA placement/routing workloads that motivate the paper's intro."""
    if rows < 1 or cols < 1:
        raise GenerationError("grid_2d needs positive dimensions")
    pairs = []
    def vid(r: int, c: int) -> int:
        return r * cols + c
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                pairs.append((vid(r, c), vid(r, c + 1)))
                pairs.append((vid(r, c + 1), vid(r, c)))
            if r + 1 < rows:
                pairs.append((vid(r, c), vid(r + 1, c)))
                pairs.append((vid(r + 1, c), vid(r, c)))
    arr = np.array(pairs, dtype=np.int64) if pairs else np.zeros((0, 2), dtype=np.int64)
    weights = np.full(len(arr), weight, dtype=np.int64)
    return CSRGraph.from_edges(rows * cols, arr, weights, name=name)
