"""Graph serialization: whitespace edge-list text and compressed ``.npz``.

The text format is the de-facto SNAP layout (``src dst [weight]`` per
line, ``#`` comments), so real datasets drop in unchanged when they are
available.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write ``src dst weight`` lines with a small header comment."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# {graph.name}\n")
        fh.write(f"# vertices: {graph.num_vertices} edges: {graph.num_edges}\n")
        srcs = graph.edge_sources()
        for s, d, w in zip(srcs, graph.dst, graph.weights):
            fh.write(f"{s} {d} {w}\n")


def load_edge_list(path: str | os.PathLike, num_vertices: int | None = None,
                   name: str | None = None) -> CSRGraph:
    """Read a SNAP-style edge list.

    Lines are ``src dst`` or ``src dst weight``; missing weights default
    to 1.  ``num_vertices`` defaults to ``max id + 1``.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[int] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(f"{path}:{lineno}: expected 2-3 fields, got {len(parts)}")
            try:
                s, d = int(parts[0]), int(parts[1])
                w = int(parts[2]) if len(parts) == 3 else 1
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer field") from exc
            srcs.append(s)
            dsts.append(d)
            weights.append(w)
    if num_vertices is None:
        num_vertices = (max(max(srcs, default=-1), max(dsts, default=-1)) + 1) if srcs else 0
    pairs = np.stack([np.array(srcs, dtype=np.int64), np.array(dsts, dtype=np.int64)],
                     axis=1) if srcs else np.zeros((0, 2), dtype=np.int64)
    return CSRGraph.from_edges(num_vertices, pairs,
                               np.array(weights, dtype=np.int64),
                               name=name or os.path.basename(str(path)))


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Binary round-trip format (fast, exact)."""
    np.savez_compressed(path, offsets=graph.offsets, dst=graph.dst,
                        weights=graph.weights, name=np.array(graph.name))


def load_npz(path: str | os.PathLike) -> CSRGraph:
    with np.load(path, allow_pickle=False) as data:
        return CSRGraph(data["offsets"], data["dst"], data["weights"],
                        name=str(data["name"]))
