"""Graph substrate: CSR container, generators, Table 2 datasets, slicing, IO."""

from repro.graph.csr import CSRGraph, MemoryFootprint, PAPER_ID_BITS
from repro.graph.datasets import DATASET_ORDER, TABLE2, DatasetSpec, load, table2_rows
from repro.graph.generators import (
    chain,
    complete,
    erdos_renyi,
    grid_2d,
    inverse_star,
    preferential_attachment,
    random_weights,
    rmat,
    star,
)
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz
from repro.graph.partition import (
    GraphSlice,
    partition_by_destination,
    partition_for_budget,
    slice_count_for_budget,
    validate_partition,
)

__all__ = [
    "CSRGraph",
    "MemoryFootprint",
    "PAPER_ID_BITS",
    "DATASET_ORDER",
    "TABLE2",
    "DatasetSpec",
    "load",
    "table2_rows",
    "chain",
    "complete",
    "erdos_renyi",
    "grid_2d",
    "inverse_star",
    "preferential_attachment",
    "random_weights",
    "rmat",
    "star",
    "load_edge_list",
    "load_npz",
    "save_edge_list",
    "save_npz",
    "GraphSlice",
    "partition_by_destination",
    "partition_for_budget",
    "slice_count_for_budget",
    "validate_partition",
]
