"""Graph slicing for on-chip memory (paper §5.3 Discussion).

"For the large graph processing, the graph can be partitioned into small
slices, so that each slice is processed on chip [Graphicionado].  ...
the time consumed in the replacement of slices can be overlapped using
double buffer design."

We implement the interval-shard scheme the cited works use: slice ``k``
owns a contiguous **destination-vertex interval** and contains every
edge pointing into it.  One scatter iteration processes slices
sequentially; tProperty for a slice fits on chip by construction.  The
double-buffer overlap model is in :mod:`repro.accel.accelerator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CapacityError
from repro.graph.csr import CSRGraph, MemoryFootprint


@dataclass(frozen=True)
class GraphSlice:
    """One destination interval of a sliced graph."""

    index: int
    dst_lo: int
    dst_hi: int
    graph: CSRGraph              # edges into [dst_lo, dst_hi), source ids preserved

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


def slice_count_for_budget(graph: CSRGraph, budget_bytes: int,
                           id_bits: int = 19) -> int:
    """Smallest slice count whose worst-case slice footprint fits the budget.

    The offset/property/active arrays are shared across slices; the edge
    arrays shrink proportionally with slicing.  A uniform-edge split is
    assumed for sizing (the partitioner then balances by construction of
    equal destination intervals; skew is tolerated via the ``safety``
    margin below).
    """
    fp = graph.memory_footprint(id_bits=id_bits)
    fixed = fp.offset_bytes + fp.property_bytes + fp.active_and_tproperty_bytes
    per_edge = fp.edge_bytes + fp.edge_info_bytes
    if fixed > budget_bytes:
        raise CapacityError(
            f"vertex-indexed arrays alone ({fixed} B) exceed the on-chip budget "
            f"({budget_bytes} B); graph {graph.name} cannot be sliced by edges only"
        )
    remaining = budget_bytes - fixed
    if remaining <= 0:
        raise CapacityError("no on-chip capacity left for edge data")
    slices = max(1, -(-per_edge // remaining))  # ceil division
    return int(slices)


def partition_by_destination(graph: CSRGraph, num_slices: int) -> list[GraphSlice]:
    """Split into ``num_slices`` equal destination intervals."""
    if num_slices < 1:
        raise CapacityError(f"num_slices must be >= 1, got {num_slices}")
    v = graph.num_vertices
    bounds = np.linspace(0, v, num_slices + 1).astype(np.int64)
    slices = []
    for k in range(num_slices):
        lo, hi = int(bounds[k]), int(bounds[k + 1])
        slices.append(GraphSlice(k, lo, hi, graph.subgraph_by_destination(lo, hi)))
    return slices


def partition_for_budget(graph: CSRGraph, budget_bytes: int,
                         id_bits: int = 19) -> list[GraphSlice]:
    """Partition so every slice fits ``budget_bytes`` of on-chip memory.

    Starts from the uniform-split estimate and doubles the slice count
    until every produced slice fits (destination skew can make one
    interval heavier than the uniform estimate assumes).  Terminates
    because intervals eventually hold a single vertex.
    """
    count = slice_count_for_budget(graph, budget_bytes, id_bits)
    while True:
        slices = partition_by_destination(graph, count)
        if all(_slice_fits(s, graph, budget_bytes, id_bits) for s in slices):
            return slices
        if count >= graph.num_vertices:
            raise CapacityError(
                f"graph {graph.name} has a single destination interval that "
                f"exceeds the on-chip budget even fully sliced")
        count = min(count * 2, graph.num_vertices)


def _slice_fits(s: GraphSlice, graph: CSRGraph, budget_bytes: int,
                id_bits: int) -> bool:
    fp = graph.memory_footprint(id_bits=id_bits)
    per_edge_bits = (fp.edge_bytes + fp.edge_info_bytes) * 8 / max(1, graph.num_edges)
    slice_edge_bytes = int(s.num_edges * per_edge_bits / 8)
    fixed = fp.offset_bytes + fp.property_bytes + fp.active_and_tproperty_bytes
    return fixed + slice_edge_bytes <= budget_bytes


def validate_partition(graph: CSRGraph, slices: list[GraphSlice]) -> None:
    """Check that slices exactly tile the graph's edges (test helper)."""
    total = sum(s.num_edges for s in slices)
    if total != graph.num_edges:
        raise CapacityError(
            f"slices cover {total} edges but graph has {graph.num_edges}")
    prev_hi = 0
    for s in sorted(slices, key=lambda s: s.index):
        if s.dst_lo != prev_hi:
            raise CapacityError(f"slice {s.index} starts at {s.dst_lo}, expected {prev_hi}")
        prev_hi = s.dst_hi
    if prev_hi != graph.num_vertices:
        raise CapacityError(f"last slice ends at {prev_hi}, expected {graph.num_vertices}")
