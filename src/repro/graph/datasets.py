"""Benchmark dataset registry (paper Table 2).

The paper evaluates on four SNAP graphs and two Graph500 R-MAT graphs:

=========  ========  ========  =======  ==============================
Name       Vertices  Edges     Degree   Description
=========  ========  ========  =======  ==============================
VT          7 K      0.10 M     15      Wikipedia who-votes-on-whom
EP         76 K      0.51 M      7      Epinions who-trusts-whom
SL         82 K      0.95 M     12      Slashdot social network
TW         81 K      1.77 M     22      Twitter social circles
R14        16 K      1.05 M     64      Synthetic graph (RMAT scale 14)
R16        66 K      4.19 M     64      Synthetic graph (RMAT scale 16)
=========  ========  ========  =======  ==============================

SNAP downloads are unavailable in this offline environment, so the four
real-world graphs are **synthetic stand-ins**: skewed R-MAT graphs with
the same vertex count, edge count and therefore mean degree (documented
substitution — see DESIGN.md §2).  The R-MAT datasets are generated
directly with Graph500 parameters, as in the paper.

``load(spec, scale=...)`` supports proportional down-scaling (both |V|
and |E| shrink, preserving mean degree) so the full figure suite runs in
minutes of pure-Python cycle simulation; EXPERIMENTS.md records the
scale every reported number used.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.errors import GenerationError
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat

#: Environment variable consulted by the benchmark harness for a global
#: dataset scale (1.0 = paper-sized graphs).
SCALE_ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True)
class DatasetSpec:
    """One row of paper Table 2."""

    key: str
    full_name: str
    num_vertices: int
    num_edges: int
    degree: int                 # the paper's reported mean degree
    description: str
    synthetic: bool             # True for R14/R16 (real R-MAT in the paper)
    rmat_a: float               # stand-in generator skew
    rmat_b: float
    rmat_c: float
    seed: int

    @property
    def mean_degree(self) -> float:
        return self.num_edges / self.num_vertices


def _spec(key, full_name, v, e, degree, description, synthetic, skew, seed):
    # Social-network stand-ins use a skewed R-MAT; Graph500 graphs use
    # the canonical (0.57, 0.19, 0.19).
    a, b, c = skew
    return DatasetSpec(key, full_name, v, e, degree, description,
                       synthetic, a, b, c, seed)


#: Registry keyed by the paper's abbreviations.  Vertex counts follow the
#: actual SNAP graphs the paper cites (Table 2 rounds them).
TABLE2: dict[str, DatasetSpec] = {
    "VT": _spec("VT", "wiki-Vote", 7_115, 103_689, 15,
                "Wikipedia who-votes-on-whom (stand-in)", False,
                (0.50, 0.22, 0.22), 101),
    "EP": _spec("EP", "soc-Epinions1", 75_879, 508_837, 7,
                "Epinions who-trusts-whom (stand-in)", False,
                (0.52, 0.21, 0.21), 102),
    "SL": _spec("SL", "soc-Slashdot0902", 82_168, 948_464, 12,
                "Slashdot social network (stand-in)", False,
                (0.52, 0.21, 0.21), 103),
    "TW": _spec("TW", "ego-Twitter", 81_306, 1_768_149, 22,
                "Twitter social circles (stand-in)", False,
                (0.55, 0.20, 0.20), 104),
    "R14": _spec("R14", "RMAT14", 16_384, 1_048_576, 64,
                 "Graph500 R-MAT, scale 14, edge factor 64", True,
                 (0.57, 0.19, 0.19), 114),
    "R16": _spec("R16", "RMAT16", 65_536, 4_194_304, 64,
                 "Graph500 R-MAT, scale 16, edge factor 64", True,
                 (0.57, 0.19, 0.19), 116),
}

#: Dataset order used by every figure in the paper.
DATASET_ORDER = ("VT", "EP", "SL", "TW", "R14", "R16")


def default_scale() -> float:
    """Scale taken from ``REPRO_SCALE`` (default 1.0)."""
    raw = os.environ.get(SCALE_ENV_VAR, "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise GenerationError(f"{SCALE_ENV_VAR} must be a float, got {raw!r}") from exc
    if not 0.0 < value <= 1.0:
        raise GenerationError(f"{SCALE_ENV_VAR} must be in (0, 1], got {value}")
    return value


def load(key: str, scale: float = 1.0, seed: int | None = None) -> CSRGraph:
    """Instantiate a Table 2 dataset (or a proportionally scaled version).

    ``scale`` shrinks |V| and |E| together so the mean degree — the knob
    that decides whether the front end or the back end is the bottleneck
    — is preserved **exactly**.  Vertex count is rounded to the nearest
    power of two (the generator is R-MAT), and the edge count follows
    from the paper's mean degree.
    """
    if key not in TABLE2:
        raise GenerationError(f"unknown dataset {key!r}; known: {sorted(TABLE2)}")
    if not 0.0 < scale <= 1.0:
        raise GenerationError(f"scale must be in (0, 1], got {scale}")
    spec = TABLE2[key]
    target_v = max(64, int(round(spec.num_vertices * scale)))
    rmat_scale = max(6, int(round(math.log2(target_v))))
    full_scale = max(6, int(round(math.log2(spec.num_vertices))))
    a, b, c = _rescaled_probabilities(spec, rmat_scale, full_scale)
    edge_factor = spec.mean_degree
    graph = rmat(rmat_scale, edge_factor, a=a, b=b, c=c,
                 seed=spec.seed if seed is None else seed,
                 name=f"{spec.key}" + ("" if scale == 1.0 else f"@{scale:g}"))
    return graph


def _rescaled_probabilities(spec: DatasetSpec, rmat_scale: int,
                            full_scale: int) -> tuple[float, float, float]:
    """Skew-preserving R-MAT probabilities for a down-scaled stand-in.

    R-MAT's hottest *destination* receives an ``(a+c)**scale`` share of
    all edges (the column marginal), so generating a smaller graph with
    the full-size probabilities inflates the hub's relative weight — and
    the hot tProperty-bank bound would then dominate every design
    identically, flattening exactly the comparisons the benchmarks exist
    to show.  We temper the quadrant distribution with a power ``gamma``
    (``p' ~ p**gamma``, renormalized — Graph500 probabilities stay a
    valid distribution for any gamma) chosen by bisection so the scaled
    graph keeps the full-size hub share:
    ``(a'+c')**rmat_scale == (a+c)**full_scale``.
    """
    if rmat_scale >= full_scale:
        return spec.rmat_a, spec.rmat_b, spec.rmat_c
    probs = (spec.rmat_a, spec.rmat_b, spec.rmat_c,
             1.0 - spec.rmat_a - spec.rmat_b - spec.rmat_c)
    target = (spec.rmat_a + spec.rmat_c) ** (full_scale / rmat_scale)

    def col_marginal(gamma: float) -> float:
        tempered = [p ** gamma for p in probs]
        z = sum(tempered)
        return (tempered[0] + tempered[2]) / z

    lo, hi = 0.0, 1.0          # gamma=0 -> uniform (0.5); gamma=1 -> original
    for _ in range(60):
        mid = (lo + hi) / 2
        if col_marginal(mid) < target:
            lo = mid
        else:
            hi = mid
    gamma = (lo + hi) / 2
    tempered = [p ** gamma for p in probs]
    z = sum(tempered)
    return tempered[0] / z, tempered[1] / z, tempered[2] / z


def table2_rows(scale: float = 1.0) -> list[dict]:
    """Rows for the Table 2 reproduction bench: paper value vs generated."""
    rows = []
    for key in DATASET_ORDER:
        spec = TABLE2[key]
        graph = load(key, scale=scale)
        rows.append({
            "name": key,
            "paper_vertices": spec.num_vertices,
            "paper_edges": spec.num_edges,
            "paper_degree": spec.degree,
            "generated_vertices": graph.num_vertices,
            "generated_edges": graph.num_edges,
            "generated_degree": graph.mean_degree,
            "description": spec.description,
        })
    return rows
