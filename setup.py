"""Legacy-compatible shim: metadata lives in pyproject.toml.

Kept so ``pip install -e . --no-use-pep517`` works on environments whose
setuptools lacks PEP 660 editable-wheel support (no ``wheel`` package).
"""

from setuptools import setup

setup()
