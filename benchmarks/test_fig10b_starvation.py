"""Fig. 10(b) — starvation cycles of vPE (R14).

Paper: "the number of starvation cycles reduces significantly, up to
58%.  This validates the effects of our optimizations."
"""

import pytest


@pytest.fixture()
def rows(fig10_data):
    return fig10_data


def test_fig10b_starvation_reduction(benchmark, emit, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    emit("fig10b_starvation", rows,
         columns=["algorithm", "step", "starvation_cycles"],
         title="Fig. 10(b): vPE starvation cycles (R14)", floatfmt=".0f")

    by_alg = {}
    for r in rows:
        by_alg.setdefault(r["algorithm"], []).append(r)

    reductions = {}
    for alg, steps in by_alg.items():
        base = steps[0]["starvation_cycles"]
        full = steps[-1]["starvation_cycles"]
        assert full < base, alg
        reductions[alg] = 1 - full / base

    # the best algorithm approaches the paper's "up to 58%" reduction
    assert max(reductions.values()) > 0.35
    # every algorithm sees a material reduction
    assert min(reductions.values()) > 0.10
