"""Table 1 — configurations used for HiGraph and baselines.

Regenerates the configuration table and checks the frequency column:
every design synthesizes to the 1 GHz target at its Table 1 geometry.
"""

from repro.bench import paper_configs


def test_table1_configurations(benchmark, emit):
    def build():
        rows = []
        for name, cfg in paper_configs().items():
            rows.append({
                "design": name,
                "frequency_ghz": cfg.frequency_ghz(),
                "front_channels": cfg.front_channels,
                "back_channels": cfg.back_channels,
                "onchip_memory_mb": cfg.onchip_memory_bytes / 2**20,
                "offset_site": cfg.offset_site,
                "edge_site": cfg.edge_site,
                "propagation_site": cfg.propagation_site,
            })
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table1_configs", rows, title="Table 1: configurations")

    by_name = {r["design"]: r for r in rows}
    assert by_name["HiGraph"]["front_channels"] == 32
    assert by_name["HiGraph-mini"]["front_channels"] == 4
    assert by_name["GraphDynS"]["front_channels"] == 4
    for r in rows:
        assert r["back_channels"] == 32
        assert abs(r["frequency_ghz"] - 1.0) < 1e-9
    assert by_name["GraphDynS"]["onchip_memory_mb"] == 32
    assert by_name["HiGraph"]["onchip_memory_mb"] == 16
