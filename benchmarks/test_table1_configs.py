"""Table 1 — configurations used for HiGraph and baselines.

Regenerates the configuration table and checks the frequency column:
every design synthesizes to the 1 GHz target at its Table 1 geometry.
"""

from repro.bench import table1_config_rows


def test_table1_configurations(benchmark, emit):
    rows = benchmark.pedantic(table1_config_rows, rounds=1, iterations=1)
    emit("table1_configs", rows, title="Table 1: configurations")

    by_name = {r["design"]: r for r in rows}
    assert by_name["HiGraph"]["front_channels"] == 32
    assert by_name["HiGraph-mini"]["front_channels"] == 4
    assert by_name["GraphDynS"]["front_channels"] == 4
    for r in rows:
        assert r["back_channels"] == 32
        assert abs(r["frequency_ghz"] - 1.0) < 1e-9
    assert by_name["GraphDynS"]["onchip_memory_mb"] == 32
    assert by_name["HiGraph"]["onchip_memory_mb"] == 16
