"""Design-choice ablation — vertex coalescing at the propagation site.

Both simulated designs inherit GraphDynS-style update coalescing (the
DESIGN.md substitution notes).  This ablation quantifies it: without
combining, the hot tProperty bank serializes one record per cycle and
caps every interconnect; with combining, the MDP-network's per-stage
merging compresses hotspot traffic more than the crossbar's single
input-side combining point.
"""

from repro.bench import combining_ablation_rows


def test_combining_ablation(benchmark, emit, sweep_options):
    rows = benchmark.pedantic(
        lambda: combining_ablation_rows(num_workers=sweep_options["jobs"],
                                        cache=sweep_options["cache"]),
        rounds=1, iterations=1)
    emit("ablation_combining", rows,
         title="Ablation: vertex coalescing at the propagation site (PR, R14)")

    def g(design, combining):
        return next(r["gteps"] for r in rows
                    if r["design"] == design and r["combining"] is combining)

    # combining helps both designs on a skewed graph
    assert g("HiGraph", True) > g("HiGraph", False)
    assert g("GraphDynS", True) >= g("GraphDynS", False) * 0.98
    # the MDP-network exploits combining at least as well as the crossbar
    mdp_gain = g("HiGraph", True) / max(g("HiGraph", False), 1e-9)
    xbar_gain = g("GraphDynS", True) / max(g("GraphDynS", False), 1e-9)
    assert mdp_gain >= xbar_gain * 0.9
