"""Ablation — the "trading latency for throughput" premise itself (§2.2).

The paper's opportunity statement: "increasing the traversal latency of
a single edge does not pose significant impact on overall performance"
— *because the execution channel is highly pipelined and busy*.  This
ablation probes both sides of the trade:

* a **latency-bound** workload (BFS on a long chain: the frontier is a
  single vertex, so every iteration costs one full pipeline traversal
  and the MDP-network's log2(m) extra stages are exposed), and
* a **throughput-bound** workload (PR on R-MAT: channels stay busy, the
  extra stages vanish into the pipeline and the conflict reduction
  wins).
"""

from repro.accel import graphdyns, higraph, simulate
from repro.algorithms import BFS, PageRank
from repro.graph import chain


def test_latency_vs_throughput_tradeoff(benchmark, emit, r14_graph):
    def run():
        rows = []
        latency_graph = chain(256)
        for maker, label in ((higraph, "HiGraph"), (graphdyns, "GraphDynS")):
            stats = simulate(maker(), latency_graph, BFS()).stats
            rows.append({"workload": "chain-BFS (latency-bound)",
                         "design": label,
                         "cycles": stats.total_cycles,
                         "cycles_per_iteration":
                             stats.total_cycles / max(1, stats.iterations),
                         "gteps": stats.gteps})
        for maker, label in ((higraph, "HiGraph"), (graphdyns, "GraphDynS")):
            stats = simulate(maker(), r14_graph, PageRank(iterations=2)).stats
            rows.append({"workload": "R14-PR (throughput-bound)",
                         "design": label,
                         "cycles": stats.total_cycles,
                         "cycles_per_iteration":
                             stats.total_cycles / max(1, stats.iterations),
                         "gteps": stats.gteps})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_latency", rows,
         title="Ablation: trading latency for throughput (Sec. 2.2)")

    by = {(r["workload"], r["design"]): r for r in rows}
    lat_hi = by[("chain-BFS (latency-bound)", "HiGraph")]
    lat_gd = by[("chain-BFS (latency-bound)", "GraphDynS")]
    thr_hi = by[("R14-PR (throughput-bound)", "HiGraph")]
    thr_gd = by[("R14-PR (throughput-bound)", "GraphDynS")]

    # the latency cost is real: HiGraph pays extra per-iteration cycles
    # on the serial frontier (multi-stage networks at all three sites)
    assert lat_hi["cycles_per_iteration"] >= lat_gd["cycles_per_iteration"]
    # but on the pipelined workload the trade pays off decisively
    assert thr_hi["gteps"] > thr_gd["gteps"] * 1.2
