"""Ablation — the "trading latency for throughput" premise itself (§2.2).

The paper's opportunity statement: "increasing the traversal latency of
a single edge does not pose significant impact on overall performance"
— *because the execution channel is highly pipelined and busy*.  This
ablation probes both sides of the trade:

* a **latency-bound** workload (BFS on a long chain: the frontier is a
  single vertex, so every iteration costs one full pipeline traversal
  and the MDP-network's log2(m) extra stages are exposed), and
* a **throughput-bound** workload (PR on R-MAT: channels stay busy, the
  extra stages vanish into the pipeline and the conflict reduction
  wins).

Since PR 2 both pairs run as sweep jobs (``latency_ablation_rows``), so
the bench shards/caches like every other figure.
"""

from repro.bench import latency_ablation_rows


def test_latency_vs_throughput_tradeoff(benchmark, emit, sweep_options):
    rows = benchmark.pedantic(
        lambda: latency_ablation_rows(num_workers=sweep_options["jobs"],
                                      cache=sweep_options["cache"]),
        rounds=1, iterations=1)
    emit("ablation_latency", rows,
         title="Ablation: trading latency for throughput (Sec. 2.2)")

    by = {(r["workload"], r["design"]): r for r in rows}
    lat_hi = by[("chain-BFS (latency-bound)", "HiGraph")]
    lat_gd = by[("chain-BFS (latency-bound)", "GraphDynS")]
    thr_hi = by[("R14-PR (throughput-bound)", "HiGraph")]
    thr_gd = by[("R14-PR (throughput-bound)", "GraphDynS")]

    # the latency cost is real: HiGraph pays extra per-iteration cycles
    # on the serial frontier (multi-stage networks at all three sites)
    assert lat_hi["cycles_per_iteration"] >= lat_gd["cycles_per_iteration"]
    # but on the pipelined workload the trade pays off decisively
    assert thr_hi["gteps"] > thr_gd["gteps"] * 1.2
