"""§5.3 Discussion — large-graph slicing with double buffering.

"the graph can be partitioned into small slices, so that each slice is
processed on chip ... the time consumed in the replacement of slices
can be overlapped using double buffer design."

The bench compares single-buffered (all loads exposed) against
double-buffered execution of a sliced run.  Since PR 2 the sliced run
is a sweep job (``slicing_rows``), so it shards and caches like every
other figure and the report pipeline can regenerate it from a warm
cache without simulating.
"""

from repro.bench import slicing_rows


def test_discussion_slicing_double_buffer(benchmark, emit, sweep_options):
    rows = benchmark.pedantic(
        lambda: slicing_rows(num_workers=sweep_options["jobs"],
                             cache=sweep_options["cache"]),
        rounds=1, iterations=1)
    emit("discussion_slicing", rows,
         title="Sec. 5.3: sliced execution with double buffering (PR, R14)",
         floatfmt=".1f")

    row = rows[0]
    assert row["slices"] == 4
    # double buffering hides a large part of the replacement traffic
    assert row["exposed_load_cycles"] < row["raw_load_cycles"]
    assert row["double_buffer_total"] < row["single_buffer_total"]
