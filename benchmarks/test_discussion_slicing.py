"""§5.3 Discussion — large-graph slicing with double buffering.

"the graph can be partitioned into small slices, so that each slice is
processed on chip ... the time consumed in the replacement of slices
can be overlapped using double buffer design."

The bench compares single-buffered (all loads exposed) against
double-buffered execution of a sliced run.
"""

from repro.accel import SlicedAcceleratorSim, higraph, slice_load_cycles
from repro.algorithms import PageRank
from repro.graph import partition_by_destination


def test_discussion_slicing_double_buffer(benchmark, emit, r14_graph):
    slices = partition_by_destination(r14_graph, 4)
    bandwidth = 64.0   # bytes per cycle (64 GB/s at 1 GHz)

    def run():
        sim = SlicedAcceleratorSim(higraph(), r14_graph, PageRank(iterations=2),
                                   slices=slices,
                                   offchip_bytes_per_cycle=bandwidth)
        res = sim.run()
        stats = res.stats
        total_load = sum(slice_load_cycles(s.num_edges, bandwidth)
                         for s in slices) * stats.iterations
        compute = stats.scatter_cycles + stats.apply_cycles
        return [{
            "slices": stats.slices,
            "compute_cycles": compute,
            "raw_load_cycles": total_load,
            "exposed_load_cycles": stats.slice_load_cycles,
            "single_buffer_total": compute + total_load,
            "double_buffer_total": stats.total_cycles,
            "gteps_double_buffered": stats.gteps,
        }]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("discussion_slicing", rows,
         title="Sec. 5.3: sliced execution with double buffering (PR, R14)",
         floatfmt=".1f")

    row = rows[0]
    # double buffering hides a large part of the replacement traffic
    assert row["exposed_load_cycles"] < row["raw_load_cycles"]
    assert row["double_buffer_total"] < row["single_buffer_total"]
