"""Fig. 8 — speedup over GraphDynS.

Paper: "With the same number of front-end channels, HiGraph-mini
achieves 1.19x to 1.85x speedup over GraphDynS, and 1.46x on average.
... HiGraph achieves up to 2.23x speedup over GraphDynS (1.54x on
average)."

Shape assertions (not absolute-value pinning — the substrate differs):
HiGraph beats the baseline everywhere, never loses to HiGraph-mini
meaningfully, and the average/maximum land in the paper's band.
"""

import statistics


def test_fig8_speedup_over_graphdyns(benchmark, emit, evaluation_matrix):
    rows = benchmark.pedantic(evaluation_matrix.speedup_rows,
                              rounds=1, iterations=1)
    emit("fig08_speedup", rows, title="Fig. 8: speedup over GraphDynS")

    mini = [r["speedup_mini"] for r in rows]
    full = [r["speedup_higraph"] for r in rows]

    # HiGraph never loses to the baseline and wins clearly somewhere
    assert min(full) > 0.97
    assert max(full) > 1.3
    # paper band: averages around 1.4-1.6x for HiGraph
    assert 1.15 < statistics.mean(full) < 1.9
    # HiGraph-mini helps on average but less than full HiGraph
    assert statistics.mean(mini) > 1.02
    assert statistics.mean(full) >= statistics.mean(mini)
    # HiGraph >= mini per-workload (more front-end channels never hurt)
    for r in rows:
        assert r["speedup_higraph"] >= r["speedup_mini"] * 0.95, r
