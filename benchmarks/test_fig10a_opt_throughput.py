"""Fig. 10(a) — effect of each optimization on throughput (R14).

Paper claims reproduced as shape:
* cumulative optimizations never hurt;
* "when using Opt-D in optimization, the design gains more performance
  improvement" — the propagation site contributes the largest step;
* "the optimizations in front-end part almost gain no performance
  improvement on the PR algorithm".
"""

import pytest


@pytest.fixture()
def rows(fig10_data):
    return fig10_data


def test_fig10a_throughput_steps(benchmark, emit, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    emit("fig10a_opt_throughput", rows,
         title="Fig. 10(a): effect of optimizations on throughput (R14)")

    by_alg = {}
    for r in rows:
        by_alg.setdefault(r["algorithm"], []).append(r)

    for alg, steps in by_alg.items():
        gteps = [s["gteps"] for s in steps]
        # cumulative opts never hurt (small tolerance for sim noise)
        for before, after in zip(gteps, gteps[1:]):
            assert after >= before * 0.97, (alg, gteps)
        # full optimization is a real improvement
        assert gteps[-1] > gteps[0] * 1.15, (alg, gteps)

    # Opt-D is the largest single step on PR
    pr = [s["gteps"] for s in by_alg["PR"]]
    step_o = pr[1] - pr[0]
    step_e = pr[2] - pr[1]
    step_d = pr[3] - pr[2]
    assert step_d >= max(step_o, step_e)
    # front-end opts ~ no gain on PR (in-order offset reads)
    assert abs(step_o) < 0.1 * pr[0] + 0.5
