"""Fig. 4 — frequency versus number of crossbar ports.

The paper's synthesis sweep shows frequency collapsing as crossbar port
count grows, the design-centralization motivation.  Regenerated from the
calibrated timing model.
"""

from repro.hw import fig4_rows


def test_fig4_frequency_vs_ports(benchmark, emit):
    rows = benchmark.pedantic(fig4_rows, rounds=1, iterations=1)
    emit("fig04_crossbar_frequency", rows,
         title="Fig. 4: frequency vs crossbar ports", floatfmt=".3f")

    freqs = {r["ports"]: r["frequency_ghz"] for r in rows}
    # paper anchor points
    assert abs(freqs[4] - 2.23) < 0.1
    assert abs(freqs[32] - 1.00) < 0.02
    assert abs(freqs[256] - 0.30) < 0.03
    # monotonic sharp decline
    ordered = [freqs[p] for p in (4, 8, 16, 32, 64, 128, 256)]
    assert all(a > b for a, b in zip(ordered, ordered[1:]))
    assert ordered[0] / ordered[-1] > 7
