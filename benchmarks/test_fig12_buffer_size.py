"""Fig. 12 — throughput versus per-channel FIFO buffer size (PR / R14).

Paper: "MDP-network outperforms FIFO-plus-crossbar consistently with
various buffer sizes ... We choose 160 entries as the buffer size of
FIFO in each channel because the throughput rarely increases with
larger buffers."
"""

from repro.bench import FIG12_BUFFER_SIZES, fig12_rows


def test_fig12_buffer_size_sweep(benchmark, emit, sweep_options):
    rows = benchmark.pedantic(
        lambda: fig12_rows(num_workers=sweep_options["jobs"],
                           cache=sweep_options["cache"]),
        rounds=1, iterations=1)
    emit("fig12_buffer_size", rows,
         title="Fig. 12: throughput vs FIFO buffer size (PR, R14)")

    mdp = {r["buffer_entries"]: r["gteps"] for r in rows
           if r["design"] == "MDP-network"}
    xbar = {r["buffer_entries"]: r["gteps"] for r in rows
            if r["design"] == "FIFO+crossbar"}

    # MDP-network wins at every buffer size
    for entries in FIG12_BUFFER_SIZES:
        assert mdp[entries] >= xbar[entries], entries

    # throughput grows with buffering, then saturates around 160 entries
    assert mdp[160] > mdp[8]
    assert mdp[320] - mdp[160] < 0.1 * mdp[160] + 0.3
