"""Fig. 11 — throughput versus number of back-end channels (PR / R14).

Paper: GraphDynS cannot scale past 64 channels (frequency decline, Fig.
4); HiGraph synthesizes at 1 GHz from 32 to 256 channels (critical path
0.93 ns -> 0.97 ns) and its throughput keeps growing.
"""

from repro.bench import fig11_rows


def test_fig11_backend_channel_scaling(benchmark, emit, sweep_options):
    rows = benchmark.pedantic(
        lambda: fig11_rows(num_workers=sweep_options["jobs"],
                           cache=sweep_options["cache"]),
        rounds=1, iterations=1)
    emit("fig11_scalability", rows,
         title="Fig. 11: throughput vs back-end channels (PR, R14)")

    hi = {r["back_channels"]: r for r in rows if r["design"] == "HiGraph"}
    gd = {r["back_channels"]: r for r in rows if r["design"] == "GraphDynS"}

    # HiGraph holds 1 GHz at every size and throughput grows monotonically
    for ch, row in hi.items():
        assert row["frequency_ghz"] == 1.0, ch
    assert hi[64]["gteps"] > hi[32]["gteps"]
    assert hi[128]["gteps"] > hi[64]["gteps"]
    assert hi[256]["gteps"] >= hi[128]["gteps"] * 0.95  # tail may saturate

    # GraphDynS loses frequency at 64 ports and gains little
    assert gd[64]["frequency_ghz"] < 0.8
    assert gd[64]["gteps"] < gd[32]["gteps"] * 1.4

    # HiGraph's scalability is decisively better at 64 channels
    assert hi[64]["gteps"] > gd[64]["gteps"] * 1.5
