"""Table 2 — benchmark datasets.

Regenerates the dataset table: paper sizes next to the generated
stand-ins at both full registry size and the harness bench scale.
"""

from repro.bench import table2_dataset_rows
from repro.graph import DATASET_ORDER, TABLE2


def test_table2_datasets(benchmark, emit):
    rows = benchmark.pedantic(table2_dataset_rows, rounds=1, iterations=1)
    emit("table2_datasets", rows, title="Table 2: benchmark datasets",
         floatfmt=".4g")

    for row in rows:
        spec = TABLE2[row["name"]]
        # mean degree (the structural knob) is preserved within 5%
        assert abs(row["bench_degree"] - spec.mean_degree) / spec.mean_degree < 0.05
    assert {r["name"] for r in rows} == set(DATASET_ORDER)
