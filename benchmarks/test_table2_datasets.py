"""Table 2 — benchmark datasets.

Regenerates the dataset table: paper sizes next to the generated
stand-ins at both full registry size and the harness bench scale.
"""

from repro.bench import bench_scale, load_bench_graph
from repro.graph import DATASET_ORDER, TABLE2


def test_table2_datasets(benchmark, emit):
    def build():
        rows = []
        for key in DATASET_ORDER:
            spec = TABLE2[key]
            g = load_bench_graph(key)
            rows.append({
                "name": key,
                "paper_vertices": spec.num_vertices,
                "paper_edges": spec.num_edges,
                "paper_degree": spec.degree,
                "bench_scale": bench_scale(key),
                "bench_vertices": g.num_vertices,
                "bench_edges": g.num_edges,
                "bench_degree": round(g.mean_degree, 1),
            })
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table2_datasets", rows, title="Table 2: benchmark datasets",
         floatfmt=".4g")

    for row in rows:
        spec = TABLE2[row["name"]]
        # mean degree (the structural knob) is preserved within 5%
        assert abs(row["bench_degree"] - spec.mean_degree) / spec.mean_degree < 0.05
    assert {r["name"] for r in rows} == set(DATASET_ORDER)
