"""§5.4 — area and power of MDP-network versus FIFO-plus-crossbar.

Paper: MDP-network with 160-entry buffers synthesizes to 0.375 mm² /
621.2 mW; the FIFO-plus-crossbar design with 128 entries to 0.292 mm² /
508.1 mW — "replacing crossbar with MDP-network brings little
overhead".
"""

from repro.hw import sec54_rows


def test_sec54_area_power(benchmark, emit):
    rows = benchmark.pedantic(sec54_rows, rounds=1, iterations=1)
    emit("sec54_area_power", rows,
         title="Sec. 5.4: area and power of the propagation site",
         floatfmt=".3f")

    for row in rows:
        assert abs(row["model_area_mm2"] - row["paper_area_mm2"]) \
            < 0.02 * row["paper_area_mm2"] + 0.002
        assert abs(row["model_power_mw"] - row["paper_power_mw"]) \
            < 0.02 * row["paper_power_mw"] + 1.0

    mdp = next(r for r in rows if r["design"] == "MDP-network")
    xbar = next(r for r in rows if r["design"] == "FIFO+crossbar")
    # "little overhead": under 30% on both axes
    assert mdp["model_area_mm2"] / xbar["model_area_mm2"] < 1.3
    assert mdp["model_power_mw"] / xbar["model_power_mw"] < 1.3
