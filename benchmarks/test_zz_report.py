"""Final step of the benchmark suite: consolidate every generated table
into ``benchmarks/results/REPORT.md`` (runs last — files are collected
alphabetically)."""

import os

from repro.bench import build_report, write_report


def test_build_consolidated_report(benchmark, results_dir):
    out_path = os.path.join(results_dir, "REPORT.md")
    # no cache_dir on purpose: every table in this run was just emitted,
    # but entries land in the cache *while* earlier .txt already exist,
    # so a same-run staleness check would misfire.  Staleness belongs to
    # the `repro report` path, which rewrites .txt after the cache.
    text = benchmark.pedantic(lambda: write_report(results_dir, out_path),
                              rounds=1, iterations=1)
    assert os.path.exists(out_path)
    assert text.startswith("# HiGraph reproduction")
    # at least the cheap, always-runnable sections must be present
    produced = build_report(results_dir)
    assert "Fig. 4" in produced
