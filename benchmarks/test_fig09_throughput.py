"""Fig. 9 — throughput (GTEPS).

Paper: "The ideal throughput is 32 GTEPS.  HiGraph achieves up to 25.0
GTEPS and reaches 78.1% of ideal throughput.  Compared to GraphDynS,
the throughput is improved by 2.7 GTEPS to 13.1 GTEPS, and 6.7 GTEPS on
average."
"""

import statistics


def test_fig9_throughput(benchmark, emit, evaluation_matrix):
    rows = benchmark.pedantic(evaluation_matrix.throughput_rows,
                              rounds=1, iterations=1)
    emit("fig09_throughput", rows, title="Fig. 9: throughput (GTEPS)")

    ideal = 32.0
    best = max(r["higraph_gteps"] for r in rows)
    gains = [r["higraph_gteps"] - r["graphdyns_gteps"] for r in rows]

    # nobody exceeds the ideal; HiGraph approaches it on its best workload
    for r in rows:
        assert r["higraph_gteps"] <= ideal
        assert r["graphdyns_gteps"] <= ideal
    assert best > 0.6 * ideal
    # HiGraph improves throughput on every workload, several GTEPS on average
    assert min(gains) > -0.5
    assert statistics.mean(gains) > 2.5
    assert max(gains) > 5.0
