"""§5.4 — design option: MDP-network radix.

Paper: "We find that a too large radix still encounters design
centralization, which degrades the performance.  By contrast, the
performance changes slightly with relatively small radices.  Thus, we
choose radix 2 in our design."

Swept at 64 back-end channels (64 = 2^6 = 4^3 = 8^2, so radices 2, 4
and 8 all admit a legal network).
"""

from repro.bench import sec54_radix_rows


def test_sec54_radix_study(benchmark, emit, sweep_options):
    rows = benchmark.pedantic(
        lambda: sec54_radix_rows(num_workers=sweep_options["jobs"],
                                 cache=sweep_options["cache"]),
        rounds=1, iterations=1)
    emit("sec54_radix", rows, title="Sec. 5.4: radix design option (PR, R14)",
         floatfmt=".3f")

    by_radix = {r["radix"]: r for r in rows}
    # small radices perform within a few percent of each other
    assert abs(by_radix[2]["gteps"] - by_radix[4]["gteps"]) \
        < 0.15 * by_radix[2]["gteps"]
    # a large radix loses frequency (re-centralization) ...
    assert by_radix[8]["frequency_ghz"] <= by_radix[2]["frequency_ghz"]
    # ... and does not win overall
    assert by_radix[8]["gteps"] <= by_radix[2]["gteps"] * 1.05
