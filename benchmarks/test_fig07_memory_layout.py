"""Fig. 7 — layout of HiGraph (on-chip array capacities).

The 19-bit design point (2^19 vertices, 2^22 edges) reproduces the
megabyte figures printed on the paper's floorplan.
"""

from repro.accel import fig7_layout


def test_fig7_memory_layout(benchmark, emit):
    rows = benchmark.pedantic(fig7_layout, rounds=1, iterations=1)
    emit("fig07_memory_layout", rows, title="Fig. 7: on-chip memory layout",
         floatfmt=".2f")

    for row in rows:
        assert abs(row["model_mb"] - row["paper_mb"]) <= 0.06, row["array"]
    total = sum(r["model_mb"] for r in rows)
    assert total <= 16.7   # the 16 MB budget (paper rounds per-array)
