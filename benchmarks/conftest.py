"""Shared fixtures for the figure/table benchmark suite.

The Fig. 8 and Fig. 9 benches share one expensive evaluation matrix
(4 algorithms x 6 datasets x 3 designs); it is computed once per
session on the sweep engine.  Three environment variables tune how it
runs — the numbers are identical in every case:

* ``REPRO_JOBS``       worker processes (default 0 = one per CPU;
                       set 1 to force serial execution);
* ``REPRO_CACHE_DIR``  sweep result cache directory (default: no
                       cache, always simulate);
* ``REPRO_ENGINE``     scatter engine, ``batched`` (default) or
                       ``reference`` — the engines are cycle-exact
                       equivalents, so this only changes wall-clock
                       (see docs/performance.md).

Every bench writes its rendered table under ``benchmarks/results/`` so
the numbers survive the pytest run.  A cache warmed here (set
``REPRO_CACHE_DIR``) lets ``repro report --cache-dir <dir>``
regenerate the whole consolidated report afterwards without a single
simulation — see docs/cli.md.
"""

import os

import pytest

from repro.bench import format_table, run_matrix

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def _env_jobs() -> int:
    """Worker processes for sweep-backed benches (0 = one per CPU).

    The default went serial -> per-CPU once the executor's scheduling
    and caching had soaked; results are identical regardless.
    """
    return int(os.environ.get("REPRO_JOBS", "0"))


def _env_cache():
    return os.environ.get("REPRO_CACHE_DIR") or None


@pytest.fixture(scope="session")
def sweep_options():
    """(num_workers, cache) honoured by every sweep-backed fixture."""
    return {"jobs": _env_jobs(), "cache": _env_cache()}


@pytest.fixture(scope="session")
def evaluation_matrix(sweep_options):
    """The Fig. 8/9 matrix: 4 algorithms x 6 datasets x 3 designs."""
    return run_matrix(jobs=sweep_options["jobs"], cache=sweep_options["cache"])


@pytest.fixture(scope="session")
def fig10_data(sweep_options):
    """Fig. 10(a)/(b) share one ablation sweep (16 simulations).

    Every sweep-backed bench references its graph symbolically (the
    default `GraphSpec`), never as a loaded `CSRGraph` — inline graphs
    fingerprint differently, and a cache warmed here must hand the
    exact same keys to `repro report`.  Workers memoize the loaded
    graph per process, so this costs one R14 load either way.
    """
    from repro.bench import fig10_rows
    return fig10_rows(num_workers=sweep_options["jobs"],
                      cache=sweep_options["cache"])


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a table and persist it under benchmarks/results/."""
    def _emit(name: str, rows, columns=None, title=None, floatfmt=".2f"):
        text = format_table(rows, columns=columns, title=title, floatfmt=floatfmt)
        print("\n" + text)
        with open(os.path.join(results_dir, f"{name}.txt"), "w",
                  encoding="utf-8") as fh:
            fh.write(text)
        return text
    return _emit
