#!/usr/bin/env python3
"""Process a graph larger than the on-chip memory via slicing (§5.3).

The graph is partitioned into destination-interval slices that each fit
the configured on-chip budget; one VCPM iteration scatters the active
list once per slice, and slice replacement traffic is overlapped with
compute using double buffering.

Run:  python examples/large_graph_slicing.py
"""

import numpy as np

from repro.accel import SlicedAcceleratorSim, higraph, slice_load_cycles
from repro.algorithms import SSSP, run_reference
from repro.graph import partition_for_budget, rmat


def main() -> None:
    graph = rmat(scale=12, edge_factor=32, seed=13)
    footprint = graph.memory_footprint(id_bits=19)
    print(f"graph: {graph}")
    print(f"full footprint: {footprint.total_bytes / 2**20:.2f} MiB")

    # Shrink the on-chip budget so the graph genuinely does not fit.
    budget = footprint.total_bytes // 3
    config = higraph(onchip_memory_bytes=budget)
    slices = partition_for_budget(graph, budget, id_bits=19)
    print(f"on-chip budget: {budget / 2**20:.2f} MiB -> {len(slices)} slices")
    for s in slices:
        print(f"  slice {s.index}: destinations [{s.dst_lo}, {s.dst_hi}), "
              f"{s.num_edges} edges")

    bandwidth = 64.0   # bytes/cycle off-chip
    sim = SlicedAcceleratorSim(config, graph, SSSP(), slices=slices,
                               offchip_bytes_per_cycle=bandwidth)
    result = sim.run(source=0)
    stats = result.stats

    raw_load = sum(slice_load_cycles(s.num_edges, bandwidth)
                   for s in slices) * stats.iterations
    print()
    print(f"iterations            : {stats.iterations}")
    print(f"compute cycles        : {stats.scatter_cycles + stats.apply_cycles}")
    print(f"raw slice-load cycles : {raw_load}")
    print(f"exposed load cycles   : {stats.slice_load_cycles} "
          f"(double buffering hid "
          f"{100 * (1 - stats.slice_load_cycles / max(1, raw_load)):.0f}%)")
    print(f"throughput            : {stats.gteps:.2f} GTEPS")

    reference = run_reference(graph, SSSP(), source=0)
    assert np.array_equal(result.properties, reference.properties)
    print("verified against golden model: OK")


if __name__ == "__main__":
    main()
