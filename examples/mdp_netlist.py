#!/usr/bin/env python3
"""Generate an MDP-network with Algorithm 1 and emit its netlist.

This is the reproduction of the paper's open-source artifact: the
automatic MDP-network generator.  The script prints the stage-by-stage
wiring (matching the paper's Fig. 5(d) example for four channels),
summarizes the hardware cost, estimates the critical path, and writes
structural Verilog.

Run:  python examples/mdp_netlist.py [channels] [radix]
      e.g. python examples/mdp_netlist.py 16 2
"""

import sys

from repro.hw import mdp_critical_path_ns, mdp_frequency_ghz
from repro.mdp import build_netlist, emit_verilog, generate_network, netlist_summary


def main() -> None:
    channels = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    radix = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    plan = generate_network(channels, radix)
    print(f"MDP-network: {channels} channels, radix {radix}, "
          f"{plan.num_stages} stages")
    print()
    for stage in plan.stages:
        groups = ", ".join("{" + ",".join(map(str, m.channels)) + "}"
                           for m in stage.modules)
        print(f"stage {stage.index}: route by address digit "
              f"{stage.digit_index} -> modules {groups}")
    print()

    # deterministic routing demo: where does each destination travel?
    dest = channels - 1
    print(f"positions of a datum addressed to channel {dest}, stage by stage: "
          f"{plan.route(dest)}")
    print()

    net = build_netlist(channels, radix, fifo_depth=160, data_width=38)
    summary = netlist_summary(net)
    for key, value in summary.items():
        print(f"  {key:20s}: {value}")
    print(f"  {'critical path':20s}: {mdp_critical_path_ns(channels, radix):.3f} ns "
          f"({mdp_frequency_ghz(channels, radix):.2f} GHz)")
    print()

    out_path = f"mdp_network_n{channels}_r{radix}.v"
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(emit_verilog(net))
    print(f"wrote structural Verilog to {out_path}")


if __name__ == "__main__":
    main()
