#!/usr/bin/env python3
"""Trace the pipeline: where do the cycles go inside the accelerator?

Attaches a PipelineTracer to both HiGraph and GraphDynS on the same
workload and prints an occupancy comparison — making the paper's
datapath-conflict story visible: the baseline's propagation FIFOs back
up behind crossbar arbitration while its vPEs starve.

Run:  python examples/pipeline_trace.py
"""

from repro.accel import AcceleratorSim, PipelineTracer, graphdyns, higraph
from repro.algorithms import PageRank
from repro.graph import load


def main() -> None:
    graph = load("R14", scale=0.0625)
    algorithm = PageRank(iterations=2)
    print(f"workload: PR(2) on {graph}\n")

    summaries = {}
    for config in (graphdyns(), higraph()):
        tracer = PipelineTracer(interval=1)
        sim = AcceleratorSim(config, graph, algorithm, tracer=tracer)
        result = sim.run()
        summaries[config.name] = (tracer.trace.summary(config.back_channels),
                                  result.stats)

    print(f"{'metric':34s} {'GraphDynS':>12s} {'HiGraph':>12s}")
    print("-" * 60)
    keys = ["mean_propagation_occupancy", "peak_propagation_occupancy",
            "mean_epe_in_occupancy", "mean_fe_out_occupancy", "mean_vpe_rate"]
    for key in keys:
        a = summaries["GraphDynS"][0][key]
        b = summaries["HiGraph"][0][key]
        print(f"{key:34s} {a:>12.2f} {b:>12.2f}")
    for label, getter in [("gteps", lambda s: s.gteps),
                          ("vpe starvation cycles",
                           lambda s: s.vpe_starvation_cycles),
                          ("propagation conflicts",
                           lambda s: s.propagation_conflicts)]:
        a = getter(summaries["GraphDynS"][1])
        b = getter(summaries["HiGraph"][1])
        print(f"{label:34s} {a:>12.1f} {b:>12.1f}")

    print("\nreading: HiGraph keeps vPEs fed (higher mean_vpe_rate) with "
          "*less* queueing\nupstream — deterministic propagation instead of "
          "arbitration retries.")


if __name__ == "__main__":
    main()
