#!/usr/bin/env python3
"""Compare HiGraph against the GraphDynS baseline on PageRank.

Reproduces the flavour of the paper's Fig. 8/9 on one dataset: the same
R-MAT workload runs on all three Table 1 designs and the script reports
cycles, GTEPS, speedup, and where the conflicts went.

Run:  python examples/pagerank_comparison.py [dataset] [scale]
      e.g. python examples/pagerank_comparison.py R14 0.125
"""

import sys

from repro.accel import graphdyns, higraph, higraph_mini, simulate
from repro.algorithms import PageRank
from repro.graph import load


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "R14"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.0625
    graph = load(dataset, scale=scale)
    algorithm = PageRank(iterations=3)
    print(f"workload: PageRank({algorithm.default_iterations} iterations) "
          f"on {graph}")
    print()

    results = {}
    for config in (graphdyns(), higraph_mini(), higraph()):
        results[config.name] = simulate(config, graph, algorithm).stats

    base = results["GraphDynS"]
    header = (f"{'design':14s} {'cycles':>10s} {'GTEPS':>7s} {'speedup':>8s} "
              f"{'starved':>10s} {'prop-conf':>10s}")
    print(header)
    print("-" * len(header))
    for name, stats in results.items():
        print(f"{name:14s} {stats.total_cycles:>10d} {stats.gteps:>7.2f} "
              f"{stats.speedup_over(base):>7.2f}x "
              f"{stats.vpe_starvation_cycles:>10d} "
              f"{stats.propagation_conflicts:>10d}")

    print()
    hi = results["HiGraph"]
    print(f"HiGraph processes {hi.edges_per_cycle:.1f} edges/cycle "
          f"({100 * hi.gteps / 32:.0f}% of the 32 GTEPS ideal);")
    print(f"starvation drops {100 * (1 - hi.vpe_starvation_cycles / max(1, base.vpe_starvation_cycles)):.0f}% "
          "versus the baseline (paper Fig. 10b reports up to 58%).")


if __name__ == "__main__":
    main()
