#!/usr/bin/env python3
"""Define a new VCPM algorithm and run it on the simulated hardware.

The accelerator executes any algorithm expressible as
Process_Edge / Reduce / Apply (paper Fig. 2).  This example adds
**connected-component labelling** (label propagation: every vertex
adopts the smallest id it has heard of) — an algorithm the paper does
not evaluate — and runs it unmodified on all three designs.
"""

import numpy as np

from repro.accel import graphdyns, higraph, simulate
from repro.algorithms import run_reference
from repro.algorithms.base import Algorithm
from repro.graph import CSRGraph, erdos_renyi


class ConnectedComponents(Algorithm):
    """Label propagation: prop = smallest vertex id seen (min-reduce).

    On a directed graph this computes reachability-closed labels along
    edge direction; run it on a symmetrized graph for true weakly
    connected components.
    """

    name = "CC"
    uses_weights = False

    def init_prop(self, graph: CSRGraph, source: int) -> np.ndarray:
        return np.arange(graph.num_vertices, dtype=np.float64)

    def initial_active(self, graph: CSRGraph, source: int) -> np.ndarray:
        # every vertex broadcasts its own label in the first iteration
        return np.arange(graph.num_vertices, dtype=np.int64)

    def identity(self) -> float:
        return np.inf

    def process_edge(self, sprop: float, weight: int) -> float:
        return sprop

    def process_edge_vec(self, sprop, weight):
        return sprop

    def reduce(self, acc: float, imm: float) -> float:
        return imm if imm < acc else acc

    def reduce_at(self, tprop, dst, imm) -> None:
        np.minimum.at(tprop, dst, imm)

    def apply(self, prop, tprop, graph) -> np.ndarray:
        return np.minimum(prop, tprop)


def symmetrize(graph: CSRGraph) -> CSRGraph:
    src = graph.edge_sources()
    both = np.concatenate([np.stack([src, graph.dst], axis=1),
                           np.stack([graph.dst, src], axis=1)])
    return CSRGraph.from_edges(graph.num_vertices, both, name=f"{graph.name}-sym")


def main() -> None:
    graph = symmetrize(erdos_renyi(600, 900, seed=42))
    algorithm = ConnectedComponents()
    print(f"workload: {algorithm.name} on {graph}")

    reference = run_reference(graph, algorithm, source=0)
    labels = reference.properties
    num_components = len(np.unique(labels))
    print(f"components found (golden model): {num_components}")

    for config in (higraph(), graphdyns()):
        result = simulate(config, graph, algorithm)
        assert np.array_equal(result.properties, labels)
        print(f"{config.name:10s}: {result.stats.total_cycles:7d} cycles, "
              f"{result.gteps:5.2f} GTEPS, "
              f"{result.stats.iterations} iterations — matches golden model")

    print("\ncustom algorithms run on the simulated hardware unchanged;")
    print("anything expressible as Process_Edge/Reduce/Apply works.")


if __name__ == "__main__":
    main()
