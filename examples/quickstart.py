#!/usr/bin/env python3
"""Quickstart: run BFS on the HiGraph cycle simulator and check it
against the functional golden model.

The five-minute tour of the public API:

1. build (or load) a graph in CSR form,
2. pick a VCPM algorithm,
3. pick an accelerator configuration (paper Table 1 presets),
4. simulate, and
5. inspect throughput / conflict statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accel import higraph, simulate
from repro.algorithms import BFS, run_reference
from repro.graph import rmat


def main() -> None:
    # 1. A small power-law graph (Graph500 R-MAT, scale 10 = 1024 vertices).
    graph = rmat(scale=10, edge_factor=16, seed=7)
    print(f"graph: {graph}")

    # 2. Breadth-first search, expressed as Process_Edge/Reduce/Apply.
    algorithm = BFS()

    # 3. The paper's flagship configuration: 32 front-end channels, 32
    #    back-end channels, MDP-networks at all three conflict sites.
    config = higraph()
    print(f"config: {config.name} @ {config.frequency_ghz():.2f} GHz "
          f"(ideal {config.ideal_gteps():.0f} GTEPS)")

    # 4. Cycle-accurate simulation.
    result = simulate(config, graph, algorithm, source=0)
    stats = result.stats

    # 5. What happened?
    print(f"iterations          : {stats.iterations}")
    print(f"edges traversed     : {stats.edges_processed}")
    print(f"total cycles        : {stats.total_cycles}")
    print(f"throughput          : {stats.gteps:.2f} GTEPS "
          f"({100 * stats.gteps / config.ideal_gteps():.1f}% of ideal)")
    print(f"vPE starvation      : {stats.vpe_starvation_cycles} cycles")
    print(f"offset deferrals    : {stats.offset_deferrals}")

    # The simulated result must equal the functional reference exactly.
    reference = run_reference(graph, algorithm, source=0)
    assert np.array_equal(result.properties, reference.properties)
    reached = int(np.isfinite(result.properties).sum())
    print(f"verified against golden model: OK ({reached} vertices reached)")


if __name__ == "__main__":
    main()
