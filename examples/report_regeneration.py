#!/usr/bin/env python3
"""Report regeneration: the cache → figures → report loop, end to end.

Runs the same pipeline as ``python -m repro report`` through the
library API twice against one cache directory:

1. **cold** — every selected section's sweep jobs are simulated and the
   results are written to the cache;
2. **warm** — the identical call regenerates every table and the
   consolidated ``REPORT.md`` with *zero* simulator invocations, byte
   for byte.

This is the loop a reproduction study lives in: warm the cache once
(benchmark suite, ``repro sweep --figure ...`` or a cold report run),
then iterate on presentation/analysis for free.

Run:  python examples/report_regeneration.py [--sections fig10,latency]
                                             [--cache-dir DIR] [--jobs N]
"""

import argparse
import tempfile
from pathlib import Path

from repro.bench import regenerate


def run_once(label: str, results_dir: str, cache_dir: str, sections, jobs):
    print(f"--- {label} regeneration ---")
    report = regenerate(
        results_dir, sections=sections, num_workers=jobs, cache=cache_dir,
        progress=lambda r: print(
            f"  {r['section']:28s} {r['rows']:3d} rows  "
            f"jobs={r['jobs']}  hits={r['cache_hits']}  "
            f"executed={r['executed']}  wall={r['wall_seconds']:.2f}s"))
    print(f"  total: jobs={report.total_jobs}  hits={report.cache_hits}  "
          f"executed={report.executed}  wall={report.wall_seconds:.2f}s")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sections", default="fig10,radix,latency,slicing",
                        help="comma list of section keys / figure aliases "
                             "(default: four of the cheaper sweeps)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: a temp dir)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for cache misses "
                             "(0 = one per CPU)")
    args = parser.parse_args()

    sections = [s.strip() for s in args.sections.split(",") if s.strip()]
    workdir = Path(tempfile.mkdtemp(prefix="repro-report-"))
    cache_dir = args.cache_dir or str(workdir / "cache")
    results_dir = str(workdir / "results")

    cold = run_once("cold", results_dir, cache_dir, sections, args.jobs)
    report_bytes = Path(cold.report_path).read_bytes()

    warm = run_once("warm", results_dir, cache_dir, sections, args.jobs)
    assert warm.executed == 0, "warm regeneration must not simulate"
    assert Path(warm.report_path).read_bytes() == report_bytes, \
        "warm REPORT.md must be byte-identical to the cold one"

    print(f"\nwarm run: {warm.cache_hits}/{warm.total_jobs} cells from cache, "
          f"0 simulations, REPORT.md byte-identical")
    print(f"report:     {warm.report_path}")
    print(f"provenance: {warm.provenance_path}")
    print(f"cache:      {cache_dir}")


if __name__ == "__main__":
    main()
