#!/usr/bin/env python3
"""Design-space exploration: radix, buffer depth and channel count.

Walks the §5.4 design options of the MDP-network and the Fig. 11/12
axes in one script, printing a compact report that shows why the paper
settles on radix 2 and 160-entry buffers.

The three studies are planned as one sweep-job list and executed by the
sweep engine, so the whole exploration shards across worker processes
and memoizes every simulation on disk — re-running the script (or
adding one new axis value) only simulates what is new.

Run:  python examples/design_space_exploration.py [--jobs N]
                                                  [--cache-dir DIR]
"""

import argparse

from repro.accel import higraph
from repro.hw import mdp_area_mm2, mdp_critical_path_ns, mdp_power_mw
from repro.sweep import GraphSpec, plan_jobs, run_sweep

RADICES = (2, 4, 8)
DEPTHS = (8, 40, 160, 320)
CHANNELS = (32, 64, 128)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--cache-dir", default=None,
                        help="optional sweep result cache directory")
    args = parser.parse_args()

    graph = GraphSpec("R14", scale=0.0625)
    pr = ("PR", {"iterations": 2})

    # one job list, three studies: tags say which rows belong to which
    jobs = plan_jobs([pr], [graph],
                     {"radix-study": higraph(front_channels=64,
                                             back_channels=64)},
                     sweep_axes={"radix": RADICES})
    jobs += plan_jobs([pr], [graph], {"depth-study": higraph()},
                      sweep_axes={"fifo_depth": DEPTHS})
    jobs += plan_jobs([pr], [graph], {"channel-study": higraph()},
                      sweep_axes={"back_channels": CHANNELS})
    outcome = run_sweep(jobs, num_workers=args.jobs, cache=args.cache_dir)
    stats = {tuple(sorted(job.tags.items())): s
             for job, s in zip(outcome.jobs, outcome.stats)}

    def lookup(config, **tags):
        key = {"graph": "R14", "algorithm": "PR", "config": config, **tags}
        return stats[tuple(sorted(key.items()))]

    print(f"workload: PageRank(2) on R14@0.0625 — {len(jobs)} simulations, "
          f"{outcome.workers_used} workers, {outcome.cache_hits} cache hits, "
          f"{outcome.wall_seconds:.1f}s\n")

    print("== radix (64-channel network: 64 = 2^6 = 4^3 = 8^2) ==")
    print(f"{'radix':>6s} {'crit-path':>10s} {'freq':>6s} {'GTEPS':>7s}")
    for radix in RADICES:
        s = lookup("radix-study", radix=radix)
        print(f"{radix:>6d} {mdp_critical_path_ns(64, radix):>8.3f}ns "
              f"{s.frequency_ghz:>5.2f}G {s.gteps:>7.2f}")
    print("-> small radices tie; large radix re-centralizes (freq drops).\n")

    print("== per-channel FIFO depth (paper picks 160) ==")
    print(f"{'depth':>6s} {'GTEPS':>7s} {'area mm^2':>10s} {'power mW':>9s}")
    for depth in DEPTHS:
        s = lookup("depth-study", fifo_depth=depth)
        print(f"{depth:>6d} {s.gteps:>7.2f} {mdp_area_mm2(32, depth):>10.3f} "
              f"{mdp_power_mw(32, depth):>9.1f}")
    print("-> throughput saturates near 160 entries; larger buffers only "
          "cost area/power.\n")

    print("== back-end channels (HiGraph holds 1 GHz; Fig. 11) ==")
    print(f"{'chan':>6s} {'freq':>6s} {'GTEPS':>7s}")
    for channels in CHANNELS:
        s = lookup("channel-study", back_channels=channels)
        print(f"{channels:>6d} {s.frequency_ghz:>5.2f}G {s.gteps:>7.2f}")
    print("-> throughput keeps scaling because the MDP-network's critical "
          "path barely grows.")


if __name__ == "__main__":
    main()
