#!/usr/bin/env python3
"""Design-space exploration: radix, buffer depth and channel count.

Walks the §5.4 design options of the MDP-network and the Fig. 11/12
axes in one script, printing a compact report that shows why the paper
settles on radix 2 and 160-entry buffers.

Run:  python examples/design_space_exploration.py
"""

from repro.accel import higraph, simulate
from repro.algorithms import PageRank
from repro.graph import load
from repro.hw import mdp_area_mm2, mdp_critical_path_ns, mdp_power_mw


def main() -> None:
    graph = load("R14", scale=0.0625)
    print(f"workload: PageRank(2) on {graph}\n")

    print("== radix (64-channel network: 64 = 2^6 = 4^3 = 8^2) ==")
    print(f"{'radix':>6s} {'crit-path':>10s} {'freq':>6s} {'GTEPS':>7s}")
    for radix in (2, 4, 8):
        cfg = higraph(front_channels=64, back_channels=64, radix=radix)
        stats = simulate(cfg, graph, PageRank(iterations=2)).stats
        print(f"{radix:>6d} {mdp_critical_path_ns(64, radix):>8.3f}ns "
              f"{stats.frequency_ghz:>5.2f}G {stats.gteps:>7.2f}")
    print("-> small radices tie; large radix re-centralizes (freq drops).\n")

    print("== per-channel FIFO depth (paper picks 160) ==")
    print(f"{'depth':>6s} {'GTEPS':>7s} {'area mm^2':>10s} {'power mW':>9s}")
    for depth in (8, 40, 160, 320):
        cfg = higraph(fifo_depth=depth)
        stats = simulate(cfg, graph, PageRank(iterations=2)).stats
        print(f"{depth:>6d} {stats.gteps:>7.2f} {mdp_area_mm2(32, depth):>10.3f} "
              f"{mdp_power_mw(32, depth):>9.1f}")
    print("-> throughput saturates near 160 entries; larger buffers only "
          "cost area/power.\n")

    print("== back-end channels (HiGraph holds 1 GHz; Fig. 11) ==")
    print(f"{'chan':>6s} {'freq':>6s} {'GTEPS':>7s}")
    for channels in (32, 64, 128):
        cfg = higraph(back_channels=channels)
        stats = simulate(cfg, graph, PageRank(iterations=2)).stats
        print(f"{channels:>6d} {stats.frequency_ghz:>5.2f}G {stats.gteps:>7.2f}")
    print("-> throughput keeps scaling because the MDP-network's critical "
          "path barely grows.")


if __name__ == "__main__":
    main()
