#!/usr/bin/env python
"""Validate the BENCH history and watch the perf trajectory.

Thin shim: the schema / equivalence / trajectory logic lives in
:mod:`repro.analysis.history`, shared with the ``bench-history`` lint
rule.  This entry point remains for parameterized use
(``--file`` / ``--tolerance`` / ``--strict``):

* **schema** — every line must parse and carry the required fields with
  the right types (fatal);
* **equivalence** — ``stats_identical`` must be true on every record: a
  false value means a probe run caught the engines disagreeing (fatal);
* **regression watch** — if the newest record's ``speedup`` dropped
  more than ``--tolerance`` (default 20%) below the best *comparable*
  record (equal ``scales`` and ``jobs``), print a loud warning.  This
  is advisory only: shared CI runners are too noisy for a hard perf
  gate (see docs/performance.md), so it never fails the build unless
  ``--strict`` is passed.

Usage::

    python scripts/check_bench_history.py                 # default file
    python scripts/check_bench_history.py --file F --tolerance 0.3
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.history import (  # noqa: E402,F401  (re-exported API)
    OPTIONAL_SCHEMA,
    SCHEMA,
    check_history,
    comparability_key,
    load_history,
    validate_record,
)

DEFAULT_FILE = os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                            "results", "bench_history.jsonl")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--file", default=DEFAULT_FILE,
                        help="history file (default: "
                             "benchmarks/results/bench_history.jsonl)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="advisory regression threshold vs the best "
                             "comparable record (default: 0.2 = 20%%)")
    parser.add_argument("--strict", action="store_true",
                        help="treat the advisory regression warning as fatal "
                             "(off by default: CI runners are noisy)")
    args = parser.parse_args(argv)

    if not os.path.exists(args.file):
        print(f"check_bench_history: no history at {args.file} "
              "(nothing to check)")
        return 0
    records = load_history(args.file)
    if not records:
        print(f"check_bench_history: {args.file} is empty (nothing to check)")
        return 0
    fatal, warnings = check_history(records, tolerance=args.tolerance)
    for message in warnings:
        print(f"WARNING: {message}", file=sys.stderr)
    for message in fatal:
        print(f"ERROR: {message}", file=sys.stderr)
    if fatal:
        return 1
    if warnings and args.strict:
        return 1
    newest = records[-1]
    print(f"check_bench_history: {len(records)} record(s) OK — newest "
          f"{newest['utc']} speedup {newest['speedup']}x "
          f"(median {newest['median_job_speedup']}x, "
          f"jobs {newest['jobs']}, stats_identical true)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
