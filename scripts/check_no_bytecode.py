#!/usr/bin/env python3
"""Fail when compiled Python bytecode is tracked by git.

``__pycache__`` directories and ``.pyc``/``.pyo`` files are build
artifacts; committing them bloats diffs and goes stale the moment the
source changes (it happened once — commit 14fb013).  ``.gitignore``
keeps new ones out of ``git add .``; this check keeps CI honest about
anything that slips past it.  Run by ``scripts/ci.sh tests``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def bytecode_paths(paths: list[str]) -> list[str]:
    """The subset of ``paths`` that is compiled-bytecode artifacts."""
    return [p for p in paths
            if p.endswith((".pyc", ".pyo")) or "__pycache__" in p.split("/")]


def tracked_files() -> list[str]:
    out = subprocess.run(["git", "ls-files"], cwd=REPO_ROOT, check=True,
                         capture_output=True, text=True)
    return out.stdout.splitlines()


def main(paths: list[str] | None = None) -> int:
    """Check ``paths`` (default: the repo's tracked files) for bytecode."""
    if paths is None:
        paths = tracked_files()
    bad = bytecode_paths(paths)
    if bad:
        for path in bad:
            print(f"FAIL: compiled bytecode is tracked by git: {path}",
                  file=sys.stderr)
        print(f"check_no_bytecode: {len(bad)} tracked bytecode file(s) — "
              "run `git rm --cached <path>` (they are .gitignore'd)",
              file=sys.stderr)
        return 1
    print(f"check_no_bytecode OK: no __pycache__/.pyc paths among "
          f"{len(paths)} tracked files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
