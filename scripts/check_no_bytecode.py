#!/usr/bin/env python3
"""Fail when compiled Python bytecode is tracked by git.

Thin shim: the logic lives in :mod:`repro.analysis.rules.repo` (lint
rule ``no-bytecode``), shared with ``repro lint``.  This entry point
remains for direct invocation and for checking an explicit path list.
Run by ``scripts/ci.sh lint`` (via ``repro lint``); kept runnable on
its own.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.rules import repo as _repo  # noqa: E402

bytecode_paths = _repo.bytecode_paths


def tracked_files() -> list[str]:
    paths = _repo.tracked_files(REPO_ROOT)
    if paths is None:
        raise SystemExit(f"check_no_bytecode: git is unusable in {REPO_ROOT}")
    return paths


def main(paths: list[str] | None = None) -> int:
    """Check ``paths`` (default: the repo's tracked files) for bytecode."""
    if paths is None:
        paths = tracked_files()
    bad = bytecode_paths(paths)
    if bad:
        for path in bad:
            print(f"FAIL: compiled bytecode is tracked by git: {path}",
                  file=sys.stderr)
        print(f"check_no_bytecode: {len(bad)} tracked bytecode file(s) — "
              "run `git rm --cached <path>` (they are .gitignore'd)",
              file=sys.stderr)
        return 1
    print(f"check_no_bytecode OK: no __pycache__/.pyc paths among "
          f"{len(paths)} tracked files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
