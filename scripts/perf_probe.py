#!/usr/bin/env python
"""Cold-sweep engine benchmark: reference vs batched vs soa, one BENCH record.

Times the Fig. 8 evaluation matrix (algorithms x datasets x the three
Table 1 designs) **cold** — no result cache, every job simulated — once
per scatter engine, and appends one JSON line to the benchmark history
file.  A second line follows: the **PageRank x10** record
(``bench: pr10_cold_sweep``), the same datasets x configs matrix with
PR at ten iterations — the workload where the soa engine's in-kernel
recording and resident tProperty pay off, tracked as its own
trajectory (``pr10_seconds`` / ``speedup_soa_pr10``).  Each run adds
records, so ``benchmarks/results/bench_history.jsonl`` accumulates the
engine speedup over time (see docs/performance.md for how to read it,
and ``scripts/check_bench_history.py`` for the CI gate that watches
it).

Methodology
-----------
* graphs are resolved once up front (the worker memo a sweep would use),
  so generation time never pollutes any engine's number;
* jobs run serially, in-process, **paired** — reference, then batched,
  then soa per job, adjacent in time — so slow drift in machine load
  biases all engines equally; per-job pairs also yield a drift-robust
  median;
* every job's ``SimStats`` are compared across all engines: the probe
  doubles as a differential check and records ``stats_identical`` in
  the BENCH line;
* the batched engine's event-driven fast-forward telemetry (whole-phase
  windows replayed — partial ones via the shadow-frontend path — cycles
  fast-forwarded vs simulated, value-plane events) is summed per job
  into the record (the engine zeroes the process-wide counters at the
  start of every run).

Usage::

    python scripts/perf_probe.py                 # full fig8 matrix
    python scripts/perf_probe.py --quick         # CI smoke (seconds)
    python scripts/perf_probe.py --require-speedup 1.5
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                           "results", "bench_history.jsonl")

#: Engines timed per job, in run order (reference first, adjacent).
#: ``reference``/``batched`` are the record's mandatory pair (the
#: historical schema); any further engine contributes optional
#: ``<engine>_seconds`` / ``speedup_<engine>`` fields.
ENGINE_PAIR = ("reference", "batched")

#: All engines each job is timed on.
ENGINES_TIMED = ("reference", "batched", "soa")

#: FFWD_TELEMETRY keys only the soa engine increments — harvested from
#: its runs (everything else is harvested from the batched runs).
_SOA_ONLY_FFWD = ("c_recorded_phases", "prologue_reuse")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--datasets", default=None,
                        help="comma-separated Table 2 keys "
                             "(default: the full fig8 roster)")
    parser.add_argument("--algorithms", default=None,
                        help="comma-separated algorithms "
                             "(default: BFS,SSSP,SSWP,PR)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override dataset scale (sets REPRO_SCALE; "
                             "default: the bench scales)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: VT at 3%% scale, BFS+PR only")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="BENCH history file to append to "
                             "(default: benchmarks/results/bench_history.jsonl)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless the recorded speedup >= X")
    parser.add_argument("--pr-iterations", type=int, default=10,
                        metavar="N",
                        help="PageRank iterations for the pr10 record "
                             "(default: 10)")
    parser.add_argument("--no-pr10", action="store_true",
                        help="skip the PageRank x10 record (fig8 only)")
    return parser


# ----------------------------------------------------------------------
# Pure record-building helpers (unit-tested without any timing runs)
# ----------------------------------------------------------------------

def pair_result(describe: str, seconds: dict, stats: dict) -> dict:
    """Summarize one job's paired engine runs.

    ``seconds`` and ``stats`` are keyed by engine name; the SimStats
    dicts are compared here (every engine against reference) so the
    probe doubles as a differential check per job.  Engines beyond the
    mandatory reference/batched pair add ``<engine>_seconds`` and
    ``speedup_<engine>`` keys.
    """
    ref, bat = (seconds[e] for e in ENGINE_PAIR)
    result = {
        "job": describe,
        "reference_seconds": ref,
        "batched_seconds": bat,
        "speedup": ref / bat,
        "stats_identical": all(stats[e] == stats["reference"]
                               for e in stats),
    }
    for engine in seconds:
        if engine in ENGINE_PAIR:
            continue
        result[f"{engine}_seconds"] = seconds[engine]
        result[f"speedup_{engine}"] = ref / seconds[engine]
    return result


def median_job_speedup(pairs: list[dict], key: str = "speedup") -> float:
    """Median per-job speedup — robust to one outlier cell and drift."""
    ratios = sorted(p[key] for p in pairs)
    if not ratios:
        raise ValueError("no job pairs to summarize")
    return ratios[len(ratios) // 2]


def build_record(pairs: list[dict], *, datasets: list[str],
                 algorithms: list[str], scales: dict,
                 equivalence_class: str, ffwd: dict | None = None,
                 utc: str | None = None, python_version: str | None = None,
                 machine: str | None = None,
                 bench: str = "fig8_cold_sweep") -> dict:
    """Assemble one BENCH history line from per-job pair results."""
    if not pairs:
        raise ValueError("no job pairs to record")
    ref_total = sum(p["reference_seconds"] for p in pairs)
    bat_total = sum(p["batched_seconds"] for p in pairs)
    record = {
        "bench": bench,
        "utc": utc if utc is not None
        else datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "datasets": list(datasets),
        "algorithms": list(algorithms),
        "scales": dict(scales),
        "jobs": len(pairs),
        "reference_seconds": round(ref_total, 3),
        "batched_seconds": round(bat_total, 3),
        "speedup": round(ref_total / bat_total, 3),
        "median_job_speedup": round(median_job_speedup(pairs), 3),
        "stats_identical": all(p["stats_identical"] for p in pairs),
        "engine_equivalence_class": equivalence_class,
        "python": (python_version if python_version is not None
                   else platform.python_version()),
        "machine": machine if machine is not None else platform.machine(),
    }
    if all("soa_seconds" in p for p in pairs):
        soa_total = sum(p["soa_seconds"] for p in pairs)
        record["soa_seconds"] = round(soa_total, 3)
        record["speedup_soa"] = round(ref_total / soa_total, 3)
        record["median_job_speedup_soa"] = round(
            median_job_speedup(pairs, key="speedup_soa"), 3)
    if ffwd is not None:
        record["ffwd"] = dict(ffwd)
    return record


def pr10_fields(record: dict) -> dict:
    """Dedicated optional fields for the PageRank x10 trajectory.

    Derived from a built ``pr10_cold_sweep`` record so the trajectory
    has stable names (``pr10_seconds`` / ``speedup_soa_pr10``) that
    tooling can read without caring which line of the history it is.
    Empty when the soa engine was not timed (no compiler, say — the
    record then still documents the reference/batched pair).
    """
    if "soa_seconds" not in record:
        return {}
    return {"pr10_seconds": record["soa_seconds"],
            "speedup_soa_pr10": record["speedup_soa"]}


def resolve_out_path(out: str, default: str = DEFAULT_OUT) -> str:
    """Validate/prepare the history path.

    The default ``benchmarks/results/`` directory is created when
    missing; an explicit ``--out`` with a missing parent is a clear
    user error, reported without a traceback.
    """
    out = os.path.abspath(out)
    parent = os.path.dirname(out)
    if out == os.path.abspath(default):
        os.makedirs(parent, exist_ok=True)
        return out
    if not os.path.isdir(parent):
        raise SystemExit(
            f"perf_probe: --out parent directory does not exist: {parent!r}"
            " — create it first (or drop --out to use the default"
            " benchmarks/results/ location, which is created on demand)")
    return out


# ----------------------------------------------------------------------

def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.datasets = args.datasets or "VT"
        args.algorithms = args.algorithms or "BFS,PR"
        if args.scale is None:
            args.scale = 0.03
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    out_path = resolve_out_path(args.out)

    from repro.accel.engine import FFWD_TELEMETRY, engine_cache_token
    from repro.bench.harness import bench_scale, matrix_jobs
    from repro.graph import DATASET_ORDER
    from repro.sweep.executor import _GRAPH_MEMO, execute_job
    from repro.sweep.jobs import graph_fingerprint

    datasets = ([d.strip().upper() for d in args.datasets.split(",")]
                if args.datasets else list(DATASET_ORDER))
    algorithms = ([a.strip().upper() for a in args.algorithms.split(",")]
                  if args.algorithms else ["BFS", "SSSP", "SSWP", "PR"])

    def resolve_graphs(jobs):
        # resolve every graph once, outside the timed region
        for job in jobs:
            fingerprint = graph_fingerprint(job.graph)
            if fingerprint not in _GRAPH_MEMO:
                _GRAPH_MEMO[fingerprint] = job.resolve_graph()

    def time_jobs(jobs):
        ffwd = dict.fromkeys(FFWD_TELEMETRY, 0)
        pairs = []
        for job in jobs:
            seconds = {}
            stats = {}
            for engine in ENGINES_TIMED:             # paired, adjacent
                job.engine = engine
                t0 = time.perf_counter()
                stats[engine] = execute_job(job).to_dict()
                seconds[engine] = time.perf_counter() - t0
                # each engine zeroes the process-wide telemetry at the
                # start of its run, so right after the batched run the
                # dict holds exactly this job's batched numbers —
                # accumulate per job for the record.  The two soa-only
                # counters (in-kernel recordings, resident-tProperty
                # reuses) are always zero in a batched run and are
                # harvested from the soa run instead.
                if engine == "batched":
                    for key in ffwd:
                        if key not in _SOA_ONLY_FFWD:
                            ffwd[key] += FFWD_TELEMETRY[key]
                elif engine == "soa":
                    for key in _SOA_ONLY_FFWD:
                        ffwd[key] += FFWD_TELEMETRY[key]
            pair = pair_result(job.describe(), seconds, stats)
            pairs.append(pair)
            if not pair["stats_identical"]:
                print(f"WARNING: SimStats diverge on {pair['job']}",
                      file=sys.stderr)
            print(f"  {pair['job']:28s} "
                  f"ref={pair['reference_seconds']:7.3f}s "
                  f"bat={pair['batched_seconds']:7.3f}s "
                  f"soa={pair['soa_seconds']:7.3f}s  "
                  f"{pair['speedup']:5.2f}x/{pair['speedup_soa']:5.2f}x")
        return pairs, ffwd

    jobs = matrix_jobs(algorithms=algorithms, datasets=datasets)
    resolve_graphs(jobs)
    pairs, ffwd = time_jobs(jobs)
    scales = {d: bench_scale(d) for d in datasets}
    equivalence_class = engine_cache_token("batched")
    records = [build_record(
        pairs,
        datasets=datasets,
        algorithms=algorithms,
        scales=scales,
        equivalence_class=equivalence_class,
        ffwd=dict(ffwd),
    )]

    if not args.no_pr10:
        # the second trajectory: PageRank at ten iterations — nine
        # all-active replay phases per job, the workload the soa
        # engine's in-kernel recording + resident tProperty target
        print(f"PRx{args.pr_iterations}:")
        pr10_jobs = matrix_jobs(
            algorithms=[("PR", {"iterations": args.pr_iterations})],
            datasets=datasets)
        resolve_graphs(pr10_jobs)
        pr10_pairs, pr10_ffwd = time_jobs(pr10_jobs)
        pr10_record = build_record(
            pr10_pairs,
            datasets=datasets,
            algorithms=[f"PRx{args.pr_iterations}"],
            scales=scales,
            equivalence_class=equivalence_class,
            ffwd=dict(pr10_ffwd),
            bench="pr10_cold_sweep",
        )
        pr10_record.update(pr10_fields(pr10_record))
        records.append(pr10_record)

    # single-write appends via the shared atomic-write discipline, so a
    # concurrent probe (or a killed one) cannot interleave/tear a record
    from repro.sweep.atomic import append_line
    for record in records:
        append_line(out_path, json.dumps(record, sort_keys=True))
        print("BENCH " + json.dumps(record, sort_keys=True))
    print(f"wrote {out_path}")

    record = records[0]
    if not all(r["stats_identical"] for r in records):
        print("FAIL: engines disagree — equivalence contract broken",
              file=sys.stderr)
        return 1
    if (args.require_speedup is not None
            and record["speedup"] < args.require_speedup):
        print(f"FAIL: speedup {record['speedup']:.2f}x below required "
              f"{args.require_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
