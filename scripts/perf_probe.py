#!/usr/bin/env python
"""Cold-sweep engine benchmark: reference vs batched, one BENCH record.

Times the Fig. 8 evaluation matrix (algorithms x datasets x the three
Table 1 designs) **cold** — no result cache, every job simulated — once
per scatter engine, and appends one JSON line to the benchmark history
file.  This is the perf trajectory's seed: each run adds a record, so
``benchmarks/results/bench_history.jsonl`` accumulates the engine
speedup over time (see docs/performance.md for how to read it).

Methodology
-----------
* graphs are resolved once up front (the worker memo a sweep would use),
  so generation time never pollutes either engine's number;
* jobs run serially, in-process, **paired** — reference then batched per
  job, adjacent in time — so slow drift in machine load biases both
  engines equally; per-job pairs also yield a drift-robust median;
* every pair's ``SimStats`` are compared: the probe doubles as a
  differential check and records ``stats_identical`` in the BENCH line.

Usage::

    python scripts/perf_probe.py                 # full fig8 matrix
    python scripts/perf_probe.py --quick         # CI smoke (seconds)
    python scripts/perf_probe.py --require-speedup 1.5
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                           "results", "bench_history.jsonl")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--datasets", default=None,
                        help="comma-separated Table 2 keys "
                             "(default: the full fig8 roster)")
    parser.add_argument("--algorithms", default=None,
                        help="comma-separated algorithms "
                             "(default: BFS,SSSP,SSWP,PR)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override dataset scale (sets REPRO_SCALE; "
                             "default: the bench scales)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: VT at 3%% scale, BFS+PR only")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="BENCH history file to append to "
                             "(default: benchmarks/results/bench_history.jsonl)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless the recorded speedup >= X")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.datasets = args.datasets or "VT"
        args.algorithms = args.algorithms or "BFS,PR"
        if args.scale is None:
            args.scale = 0.03
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)

    from repro.accel.engine import engine_cache_token
    from repro.bench.harness import bench_scale, matrix_jobs
    from repro.graph import DATASET_ORDER
    from repro.sweep.executor import _GRAPH_MEMO, execute_job
    from repro.sweep.jobs import graph_fingerprint

    datasets = ([d.strip().upper() for d in args.datasets.split(",")]
                if args.datasets else list(DATASET_ORDER))
    algorithms = ([a.strip().upper() for a in args.algorithms.split(",")]
                  if args.algorithms else ("BFS", "SSSP", "SSWP", "PR"))
    jobs = matrix_jobs(algorithms=algorithms, datasets=datasets)

    # resolve every graph once, outside the timed region
    for job in jobs:
        fingerprint = graph_fingerprint(job.graph)
        if fingerprint not in _GRAPH_MEMO:
            _GRAPH_MEMO[fingerprint] = job.resolve_graph()

    totals = {"reference": 0.0, "batched": 0.0}
    ratios = []
    identical = True
    for job in jobs:
        seconds = {}
        stats = {}
        for engine in ("reference", "batched"):      # paired, adjacent
            job.engine = engine
            t0 = time.perf_counter()
            stats[engine] = execute_job(job)
            seconds[engine] = time.perf_counter() - t0
            totals[engine] += seconds[engine]
        if stats["reference"].to_dict() != stats["batched"].to_dict():
            identical = False
            print(f"WARNING: SimStats diverge on {job.describe()}",
                  file=sys.stderr)
        ratios.append(seconds["reference"] / seconds["batched"])
        print(f"  {job.describe():28s} ref={seconds['reference']:7.3f}s "
              f"bat={seconds['batched']:7.3f}s  {ratios[-1]:5.2f}x")

    ratios.sort()
    speedup = totals["reference"] / totals["batched"]
    record = {
        "bench": "fig8_cold_sweep",
        "utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "datasets": datasets,
        "algorithms": list(algorithms),
        "scales": {d: bench_scale(d) for d in datasets},
        "jobs": len(jobs),
        "reference_seconds": round(totals["reference"], 3),
        "batched_seconds": round(totals["batched"], 3),
        "speedup": round(speedup, 3),
        "median_job_speedup": round(ratios[len(ratios) // 2], 3),
        "stats_identical": identical,
        "engine_equivalence_class": engine_cache_token("batched"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    print("BENCH " + json.dumps(record, sort_keys=True))
    print(f"wrote {args.out}")

    if not identical:
        print("FAIL: engines disagree — equivalence contract broken",
              file=sys.stderr)
        return 1
    if args.require_speedup is not None and speedup < args.require_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required "
              f"{args.require_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
