#!/usr/bin/env bash
# CI entry point, composable by stage so local runs and the GitHub
# Actions workflow (.github/workflows/ci.yml) share one script:
#
#   ci.sh            == ci.sh all
#   ci.sh lint       `repro lint` contract & determinism analyzer
#                    (cache keys, module state, C seam, fork safety, docs)
#   ci.sh lint-sarif emit the lint report as SARIF for CI annotation
#                    (artifact consumed by the upload-sarif workflow job)
#   ci.sh tests      tier-1 pytest (includes the engine differential suite)
#   ci.sh coverage   engine- and analysis-package line coverage with
#                    committed floors (stdlib tracer — no pytest-cov)
#   ci.sh fuzz       seeded differential fuzz smoke (all engines,
#                    REPRO_FUZZ_CASES cases beyond the tier-1 default)
#   ci.sh docs       docs/cli.md vs `repro --help` consistency check
#   ci.sh sweep      cold+warm smoke sweep (executor + result cache)
#   ci.sh report     cold/warm report regeneration (zero sims, same bytes)
#   ci.sh serve      warm-cache daemon smoke (sweep over the socket,
#                    zero sims on resubmission, clean remote shutdown)
#   ci.sh perf       perf-probe smoke (BENCH record + cycle-exactness)
#                    followed by the bench-history schema/trajectory check
#
# Stages may be combined: `ci.sh tests perf`.
#
# The perf smoke asserts the engines stayed cycle-exact
# (stats_identical) but no speedup floor — CI runners are too noisy for
# that (see docs/performance.md); the bench-history check treats
# trajectory regressions as advisory for the same reason.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# every stage's mktemp dir is registered here and removed on ANY exit,
# including a failed assertion under `set -e`
CI_TMP_DIRS=()
# (plain `(( ))` here would make the trap itself exit 1 when the array
# is empty, failing green runs of stages that never made a temp dir)
cleanup() { if ((${#CI_TMP_DIRS[@]})); then rm -rf "${CI_TMP_DIRS[@]}"; fi; }
trap cleanup EXIT
ci_mktemp_d() { local d; d="$(mktemp -d)"; CI_TMP_DIRS+=("$d"); echo "$d"; }

stage_lint() {
    echo "== repro lint (contract & determinism analyzer, 21 rules) =="
    # hard gate: any non-baselined finding fails the build; --no-cache
    # so CI always measures the cold path
    python -m repro lint --no-cache
}

stage_lint_sarif() {
    echo "== repro lint --format sarif (CI annotation artifact) =="
    local out="${CI_SARIF_OUT:-/tmp/repro-lint.sarif}"
    # exit code intentionally ignored: stage_lint is the gate; this
    # stage only materializes the annotation artifact
    python -m repro lint --format sarif > "$out" || true
    python - "$out" <<'EOF'
import json, sys
log = json.load(open(sys.argv[1]))
assert log["version"] == "2.1.0" and log["runs"], "malformed SARIF"
run = log["runs"][0]
print(f"SARIF OK: {len(run['results'])} result(s), "
      f"{len(run['tool']['driver']['rules'])} rule(s) -> {sys.argv[1]}")
EOF
}

stage_tests() {
    echo "== tier-1 tests (includes tests/test_engine_differential.py) =="
    python -m pytest -x -q
}

stage_coverage() {
    echo "== engine-package coverage (stdlib tracer, committed floor) =="
    python scripts/engine_coverage.py --package engine
    echo "== analysis-package coverage (stdlib tracer, committed floor) =="
    python scripts/engine_coverage.py --package analysis
}

stage_fuzz() {
    echo "== seeded differential fuzz smoke (all engines, 32 cases) =="
    REPRO_FUZZ_CASES=32 python -m pytest -q tests/test_engine_fuzz.py
    echo "== fuzz smoke again with in-kernel recording disabled =="
    # REPRO_SOA_RECORD=off forces the soa engine back onto the
    # Python-recording fallback for every recording phase — the same
    # byte-identical contract must hold on that path (smaller budget:
    # the kill-switch only changes recording phases)
    REPRO_SOA_RECORD=off REPRO_FUZZ_CASES=12 \
        python -m pytest -q tests/test_engine_fuzz.py
}

stage_docs() {
    echo "== docs check (docs/cli.md vs repro --help) =="
    python -m repro lint --rule cli-docs
}

stage_sweep() {
    echo "== smoke sweep (2 jobs, cold cache) =="
    local cache_dir
    cache_dir="$(ci_mktemp_d)"
    python -m repro sweep --datasets VT --scale 0.03 --algorithms BFS,PR \
        --jobs 2 --cache-dir "$cache_dir" | tee /tmp/ci-sweep-cold.txt
    grep -q "cache hits: 0" /tmp/ci-sweep-cold.txt

    echo "== smoke sweep (warm cache) =="
    python -m repro sweep --datasets VT --scale 0.03 --algorithms BFS,PR \
        --jobs 2 --cache-dir "$cache_dir" | tee /tmp/ci-sweep-warm.txt
    grep -q "cache hits: 6 (100%)" /tmp/ci-sweep-warm.txt
    grep -q "executed: 0" /tmp/ci-sweep-warm.txt

    # identical tables regardless of cache state
    diff <(sed '/^jobs:/d' /tmp/ci-sweep-cold.txt) \
         <(sed '/^jobs:/d' /tmp/ci-sweep-warm.txt)
}

stage_report() {
    echo "== report regeneration (cold) =="
    local report_dir report_cache
    report_dir="$(ci_mktemp_d)"
    report_cache="$(ci_mktemp_d)"
    REPRO_SCALE=0.03 python -m repro report --results-dir "$report_dir" \
        --cache-dir "$report_cache" --section fig10 --section latency \
        | tee /tmp/ci-report-cold.txt
    cp "$report_dir/REPORT.md" /tmp/ci-report-cold.md

    echo "== report regeneration (warm: zero simulations, identical bytes) =="
    REPRO_SCALE=0.03 python -m repro report --results-dir "$report_dir" \
        --cache-dir "$report_cache" --section fig10 --section latency \
        | tee /tmp/ci-report-warm.txt
    grep -Eq "^sections: .*cache hits: 20 \(100%\)  executed: 0  " \
        /tmp/ci-report-warm.txt
    cmp /tmp/ci-report-cold.md "$report_dir/REPORT.md"
}

stage_serve() {
    echo "== serve smoke (daemon start, warm resubmission, shutdown) =="
    local serve_dir sock daemon_pid
    serve_dir="$(ci_mktemp_d)"
    sock="$serve_dir/d.sock"
    python -m repro serve --socket "$sock" --cache-dir "$serve_dir/cache" \
        --jobs 2 > /tmp/ci-serve-daemon.txt 2>&1 &
    daemon_pid=$!
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && break
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "serve daemon died during startup:" >&2
            cat /tmp/ci-serve-daemon.txt >&2
            return 1
        fi
        sleep 0.1
    done
    [ -S "$sock" ]

    echo "-- cold sweep through the daemon --"
    python -m repro sweep --datasets VT --scale 0.03 --algorithms BFS,PR \
        --connect "$sock" | tee /tmp/ci-serve-cold.txt
    grep -q "cache hits: 0" /tmp/ci-serve-cold.txt

    echo "-- warm resubmission: zero simulations --"
    python -m repro sweep --datasets VT --scale 0.03 --algorithms BFS,PR \
        --connect "$sock" | tee /tmp/ci-serve-warm.txt
    grep -q "executed: 0" /tmp/ci-serve-warm.txt
    grep -q "cache hits: 6 (100%)" /tmp/ci-serve-warm.txt

    # identical tables regardless of which side of the socket simulated
    diff <(sed '/^jobs:/d' /tmp/ci-serve-cold.txt) \
         <(sed '/^jobs:/d' /tmp/ci-serve-warm.txt)

    echo "-- graceful remote shutdown --"
    python - "$sock" <<'EOF'
import sys
from repro.serve.client import ServeClient
client = ServeClient(sys.argv[1])
assert client.ping().protocol == 1
client.shutdown()
EOF
    wait "$daemon_pid"
    [ ! -S "$sock" ]
}

stage_perf() {
    echo "== engine perf probe (quick: BENCH record + cycle-exactness) =="
    local bench_dir
    bench_dir="$(ci_mktemp_d)"
    python scripts/perf_probe.py --quick --out "$bench_dir/bench.jsonl" \
        | tee /tmp/ci-perf-probe.txt
    grep -q '"bench": "fig8_cold_sweep"' "$bench_dir/bench.jsonl"
    grep -q '"stats_identical": true' "$bench_dir/bench.jsonl"

    echo "== bench-history check (smoke record) =="
    python scripts/check_bench_history.py --file "$bench_dir/bench.jsonl"

    echo "== bench-history check (committed trajectory) =="
    python scripts/check_bench_history.py
}

usage() {
    sed -n '2,23p' "$0"
    exit 2
}

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=(all)
fi
for stage in "${stages[@]}"; do
    case "$stage" in
        lint)     stage_lint ;;
        lint-sarif) stage_lint_sarif ;;
        tests)    stage_tests ;;
        coverage) stage_coverage ;;
        fuzz)     stage_fuzz ;;
        docs)     stage_docs ;;
        sweep)    stage_sweep ;;
        report)   stage_report ;;
        serve)    stage_serve ;;
        perf)     stage_perf ;;
        all)      stage_lint; stage_lint_sarif; stage_tests;
                  stage_coverage; stage_fuzz; stage_docs; stage_sweep;
                  stage_report; stage_serve; stage_perf ;;
        -h|--help) usage ;;
        *) echo "ci.sh: unknown stage '$stage'" >&2; usage ;;
    esac
done

echo "CI OK (${stages[*]})"
