#!/usr/bin/env bash
# CI entry point: tier-1 tests (including the engine differential
# suite), a parallel smoke sweep, a cold/warm report regeneration
# check, an engine perf-probe smoke, and a docs-vs-CLI consistency
# check.
#
# The smoke sweep exercises the multiprocessing executor and the result
# cache on a tiny generated graph (VT stand-in at 3% scale): a cold
# 2-job run must execute every cell, and an immediately repeated run
# must come entirely from cache.
#
# The report smoke does the same for the regeneration pipeline: a warm
# `repro report` must execute zero simulations and reproduce REPORT.md
# byte-for-byte.
#
# The perf-probe smoke times reference vs batched on a tiny matrix and
# appends a BENCH JSON record; it asserts the engines stayed
# cycle-exact (stats_identical) but no speedup floor — CI runners are
# too noisy for that (see docs/performance.md).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (includes tests/test_engine_differential.py) =="
python -m pytest -x -q

echo "== docs check (docs/cli.md vs repro --help) =="
python scripts/check_cli_docs.py

echo "== smoke sweep (2 jobs, cold cache) =="
CACHE_DIR="$(mktemp -d)"
REPORT_DIR="$(mktemp -d)"
REPORT_CACHE="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$REPORT_DIR" "$REPORT_CACHE"' EXIT
python -m repro sweep --datasets VT --scale 0.03 --algorithms BFS,PR \
    --jobs 2 --cache-dir "$CACHE_DIR" | tee /tmp/ci-sweep-cold.txt
grep -q "cache hits: 0" /tmp/ci-sweep-cold.txt

echo "== smoke sweep (warm cache) =="
python -m repro sweep --datasets VT --scale 0.03 --algorithms BFS,PR \
    --jobs 2 --cache-dir "$CACHE_DIR" | tee /tmp/ci-sweep-warm.txt
grep -q "cache hits: 6 (100%)" /tmp/ci-sweep-warm.txt
grep -q "executed: 0" /tmp/ci-sweep-warm.txt

# identical tables regardless of cache state
diff <(sed '/^jobs:/d' /tmp/ci-sweep-cold.txt) \
     <(sed '/^jobs:/d' /tmp/ci-sweep-warm.txt)

echo "== report regeneration (cold) =="
REPRO_SCALE=0.03 python -m repro report --results-dir "$REPORT_DIR" \
    --cache-dir "$REPORT_CACHE" --section fig10 --section latency \
    | tee /tmp/ci-report-cold.txt
cp "$REPORT_DIR/REPORT.md" /tmp/ci-report-cold.md

echo "== report regeneration (warm: zero simulations, identical bytes) =="
REPRO_SCALE=0.03 python -m repro report --results-dir "$REPORT_DIR" \
    --cache-dir "$REPORT_CACHE" --section fig10 --section latency \
    | tee /tmp/ci-report-warm.txt
grep -Eq "^sections: .*cache hits: 20 \(100%\)  executed: 0  " \
    /tmp/ci-report-warm.txt
cmp /tmp/ci-report-cold.md "$REPORT_DIR/REPORT.md"

echo "== engine perf probe (quick: BENCH record + cycle-exactness) =="
BENCH_FILE="$(mktemp)"
python scripts/perf_probe.py --quick --out "$BENCH_FILE" \
    | tee /tmp/ci-perf-probe.txt
grep -q '"bench": "fig8_cold_sweep"' "$BENCH_FILE"
grep -q '"stats_identical": true' "$BENCH_FILE"
rm -f "$BENCH_FILE"

echo "CI OK"
