#!/usr/bin/env bash
# CI entry point: tier-1 tests plus a parallel smoke sweep.
#
# The smoke sweep exercises the multiprocessing executor and the result
# cache on a tiny generated graph (VT stand-in at 3% scale): a cold
# 2-job run must execute every cell, and an immediately repeated run
# must come entirely from cache.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== smoke sweep (2 jobs, cold cache) =="
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
python -m repro sweep --datasets VT --scale 0.03 --algorithms BFS,PR \
    --jobs 2 --cache-dir "$CACHE_DIR" | tee /tmp/ci-sweep-cold.txt
grep -q "cache hits: 0" /tmp/ci-sweep-cold.txt

echo "== smoke sweep (warm cache) =="
python -m repro sweep --datasets VT --scale 0.03 --algorithms BFS,PR \
    --jobs 2 --cache-dir "$CACHE_DIR" | tee /tmp/ci-sweep-warm.txt
grep -q "cache hits: 6 (100%)" /tmp/ci-sweep-warm.txt
grep -q "executed: 0" /tmp/ci-sweep-warm.txt

# identical tables regardless of cache state
diff <(sed '/^jobs:/d' /tmp/ci-sweep-cold.txt) \
     <(sed '/^jobs:/d' /tmp/ci-sweep-warm.txt)

echo "CI OK"
