#!/usr/bin/env python3
"""Check docs/cli.md against the real CLI.

Two invariants, both directions:

* every subcommand the docs name (any ```repro <word>`` mention or a
  ``## `repro <word>` `` heading) must exist in ``repro --help``;
* every subcommand the parser defines must be documented.

Exits non-zero with a per-name diagnosis on any mismatch, so CI fails
when the CLI and its manual drift apart.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import build_parser  # noqa: E402


def documented_subcommands(doc_path: Path) -> set[str]:
    text = doc_path.read_text(encoding="utf-8")
    return set(re.findall(r"`(?:python -m )?repro ([a-z][a-z0-9-]*)", text))


def actual_subcommands() -> set[str]:
    parser = build_parser()
    help_text = parser.format_help()
    names = set()
    for action in parser._subparsers._group_actions:      # argparse internals,
        names.update(action.choices)                      # stable since 2.7
    missing_from_help = {n for n in names if n not in help_text}
    if missing_from_help:
        raise AssertionError(
            f"parser defines {sorted(missing_from_help)} but --help "
            "does not mention them")
    return names


def main() -> int:
    doc_path = REPO_ROOT / "docs" / "cli.md"
    documented = documented_subcommands(doc_path)
    actual = actual_subcommands()

    ok = True
    for name in sorted(documented - actual):
        print(f"FAIL: docs/cli.md documents `repro {name}` but the CLI "
              f"has no such subcommand", file=sys.stderr)
        ok = False
    for name in sorted(actual - documented):
        print(f"FAIL: subcommand `repro {name}` is not documented in "
              f"docs/cli.md", file=sys.stderr)
        ok = False
    if ok:
        print(f"docs/cli.md OK: {len(actual)} subcommands documented "
              f"({', '.join(sorted(actual))})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
