#!/usr/bin/env python3
"""Check docs/cli.md against the real CLI.

Thin shim: the logic lives in :mod:`repro.analysis.rules.repo` (lint
rule ``cli-docs``), shared with ``repro lint``.  Kept runnable on its
own for a focused local check.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.rules import repo as _repo  # noqa: E402

actual_subcommands = _repo.actual_subcommands


def documented_subcommands(doc_path: Path) -> set[str]:
    return _repo.documented_subcommands(
        doc_path.read_text(encoding="utf-8"))


def main() -> int:
    doc_path = REPO_ROOT / "docs" / "cli.md"
    documented = documented_subcommands(doc_path)
    actual = actual_subcommands()

    ok = True
    for name in sorted(documented - actual):
        print(f"FAIL: docs/cli.md documents `repro {name}` but the CLI "
              f"has no such subcommand", file=sys.stderr)
        ok = False
    for name in sorted(actual - documented):
        print(f"FAIL: subcommand `repro {name}` is not documented in "
              f"docs/cli.md", file=sys.stderr)
        ok = False
    if ok:
        print(f"docs/cli.md OK: {len(actual)} subcommands documented "
              f"({', '.join(sorted(actual))})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
