#!/usr/bin/env python
"""Line coverage for ``src/repro/accel/engine/`` with a committed floor.

CI's ``coverage`` stage runs the engine-facing test files (the
differential suite and the seeded fuzzer) under a ``sys.settrace`` line
tracer scoped to the engine package and fails the build when total
coverage drops below :data:`FLOOR_PERCENT`.  Deliberately stdlib-only:
the repro container carries no ``coverage``/``pytest-cov``, and the
engine package is small enough that a scoped tracer costs seconds, not
minutes.

Semantics match conventional line coverage: the executable-line
universe is every line carrying bytecode in the compiled module
(``code.co_lines()`` over the nested code-object tree), and a line
counts as covered when the tracer sees it execute.  The tracer installs
*before* ``repro`` is imported, so module-level statements are measured
too.

Usage::

    python scripts/engine_coverage.py              # enforce the floor
    python scripts/engine_coverage.py --floor 0    # report only
    python scripts/engine_coverage.py -- -k fuzz   # extra pytest args
"""

from __future__ import annotations

import argparse
import os
import sys
import types

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

#: Package under measurement.
TARGET_DIR = os.path.join(REPO, "src", "repro", "accel", "engine")

#: Test files that exercise the engine package end to end.
TEST_FILES = (
    os.path.join(REPO, "tests", "test_engine_differential.py"),
    os.path.join(REPO, "tests", "test_engine_fuzz.py"),
)

#: Committed coverage floor (percent of executable lines, package
#: total).  Raise it when coverage improves; lowering it is a reviewed
#: decision, not a drive-by.
FLOOR_PERCENT = 88.0    # measured 94.8% at introduction (2026-08-08)

_executed: dict[str, set[int]] = {}


def _local_trace(frame, event, arg):
    if event == "line":
        _executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    if event == "call" \
            and frame.f_code.co_filename.startswith(TARGET_DIR):
        _executed.setdefault(frame.f_code.co_filename, set())
        return _local_trace
    return None


def executable_lines(path: str) -> set[int]:
    """Every line carrying bytecode in the module's code-object tree."""
    with open(path, encoding="utf-8") as fh:
        code = compile(fh.read(), path, "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines()
                     if line is not None)
        stack.extend(const for const in obj.co_consts
                     if isinstance(const, types.CodeType))
    return lines


def measure(pytest_args: list[str]) -> int:
    import pytest
    sys.settrace(_global_trace)
    try:
        return pytest.main(["-q", *TEST_FILES, *pytest_args])
    finally:
        sys.settrace(None)


def report(floor: float) -> int:
    total_exec = total_hit = 0
    print(f"\ncoverage of {os.path.relpath(TARGET_DIR, REPO)}/ "
          f"(floor {floor:.0f}%):")
    for name in sorted(os.listdir(TARGET_DIR)):
        if not name.endswith(".py"):
            continue
        path = os.path.join(TARGET_DIR, name)
        universe = executable_lines(path)
        hit = _executed.get(path, set()) & universe
        total_exec += len(universe)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(universe) if universe else 100.0
        print(f"  {name:18s} {len(hit):5d}/{len(universe):5d}  {pct:6.1f}%")
    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"  {'TOTAL':18s} {total_hit:5d}/{total_exec:5d}  {total_pct:6.1f}%")
    if total_pct < floor:
        print(f"FAIL: engine package coverage {total_pct:.1f}% is below "
              f"the committed floor {floor:.1f}%", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--floor", type=float, default=FLOOR_PERCENT,
                        help=f"coverage floor in percent "
                             f"(default {FLOOR_PERCENT})")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest "
                             "(prefix with --)")
    args = parser.parse_args(argv)
    status = measure(args.pytest_args)
    if status != 0:
        print("FAIL: engine test run failed — coverage not evaluated",
              file=sys.stderr)
        return status
    return report(args.floor)


if __name__ == "__main__":
    sys.exit(main())
