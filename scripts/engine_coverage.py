#!/usr/bin/env python
"""Per-package line coverage with committed floors.

CI's ``coverage`` stage runs a package's end-to-end test files under a
``sys.settrace`` line tracer scoped to that package and fails the
build when total coverage drops below the package's committed floor.
Deliberately stdlib-only: the repro container carries no
``coverage``/``pytest-cov``, and the measured packages are small
enough that a scoped tracer costs seconds, not minutes.

Two packages are under measurement:

* ``engine``   — ``src/repro/accel/engine/`` driven by the
  differential suite and the seeded fuzzer;
* ``analysis`` — ``src/repro/analysis/`` (the ``repro lint`` layer)
  driven by its fixture, mutation and self-lint suites.

Semantics match conventional line coverage: the executable-line
universe is every line carrying bytecode in the compiled module
(``code.co_lines()`` over the nested code-object tree), and a line
counts as covered when the tracer sees it execute.  The tracer installs
*before* ``repro`` is imported, so module-level statements are measured
too.

Usage::

    python scripts/engine_coverage.py                     # engine floor
    python scripts/engine_coverage.py --package analysis  # lint layer
    python scripts/engine_coverage.py --floor 0           # report only
    python scripts/engine_coverage.py -- -k fuzz          # extra pytest args
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
import types
from dataclasses import dataclass

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))


@dataclass(frozen=True)
class Package:
    """One measured package: source dir, driving tests, floor."""

    reldir: str
    test_globs: tuple[str, ...]
    #: Committed coverage floor (percent of executable lines, package
    #: total).  Raise it when coverage improves; lowering it is a
    #: reviewed decision, not a drive-by.
    floor_percent: float

    @property
    def target_dir(self) -> str:
        return os.path.join(REPO, *self.reldir.split("/"))

    def test_files(self) -> list[str]:
        files: list[str] = []
        for pattern in self.test_globs:
            files.extend(sorted(glob.glob(os.path.join(REPO, pattern))))
        return files


PACKAGES = {
    "engine": Package(
        reldir="src/repro/accel/engine",
        test_globs=("tests/test_engine_differential.py",
                    "tests/test_engine_fuzz.py"),
        floor_percent=93.0,   # measured 95.1% with in-kernel recording (2026-08-08)
    ),
    "analysis": Package(
        reldir="src/repro/analysis",
        # the bench-history checker suite drives repro.analysis.history
        # (the script under test is a thin shim over it)
        test_globs=("tests/test_analysis_*.py",
                    "tests/test_check_bench_history.py"),
        floor_percent=88.0,   # measured 88.4% incl. history suite (2026-08-08)
    ),
}

_executed: dict[str, set[int]] = {}
_target_prefix = ""


def _local_trace(frame, event, arg):
    if event == "line":
        _executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    if event == "call" \
            and frame.f_code.co_filename.startswith(_target_prefix):
        _executed.setdefault(frame.f_code.co_filename, set())
        return _local_trace
    return None


def executable_lines(path: str) -> set[int]:
    """Every line carrying bytecode in the module's code-object tree."""
    with open(path, encoding="utf-8") as fh:
        code = compile(fh.read(), path, "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines()
                     if line is not None)
        stack.extend(const for const in obj.co_consts
                     if isinstance(const, types.CodeType))
    return lines


def measure(package: Package, pytest_args: list[str]) -> int:
    global _target_prefix
    _target_prefix = package.target_dir + os.sep
    import pytest
    sys.settrace(_global_trace)
    try:
        return pytest.main(["-q", *package.test_files(), *pytest_args])
    finally:
        sys.settrace(None)


def _package_sources(package: Package) -> list[str]:
    out: list[str] = []
    for dirpath, _dirnames, filenames in os.walk(package.target_dir):
        out.extend(os.path.join(dirpath, name) for name in filenames
                   if name.endswith(".py"))
    return sorted(out)


def report(package: Package, floor: float) -> int:
    total_exec = total_hit = 0
    print(f"\ncoverage of {package.reldir}/ (floor {floor:.0f}%):")
    for path in _package_sources(package):
        universe = executable_lines(path)
        hit = _executed.get(path, set()) & universe
        total_exec += len(universe)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(universe) if universe else 100.0
        name = os.path.relpath(path, package.target_dir)
        print(f"  {name:24s} {len(hit):5d}/{len(universe):5d}  {pct:6.1f}%")
    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"  {'TOTAL':24s} {total_hit:5d}/{total_exec:5d}  {total_pct:6.1f}%")
    if total_pct < floor:
        print(f"FAIL: {package.reldir} coverage {total_pct:.1f}% is below "
              f"the committed floor {floor:.1f}%", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--package", choices=sorted(PACKAGES),
                        default="engine",
                        help="package to measure (default: engine)")
    parser.add_argument("--floor", type=float, default=None,
                        help="override the package's committed floor")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest "
                             "(prefix with --)")
    args = parser.parse_args(argv)
    package = PACKAGES[args.package]
    floor = args.floor if args.floor is not None else package.floor_percent
    status = measure(package, args.pytest_args)
    if status != 0:
        print(f"FAIL: {args.package} test run failed — coverage not "
              f"evaluated", file=sys.stderr)
        return status
    return report(package, floor)


if __name__ == "__main__":
    sys.exit(main())
