"""The redesigned package surface: PACKAGE_EXPORTS manifest, PEP 562
lazy resolution, deprecation shims, and the ``api-surface`` lint rule.
"""

import importlib
import textwrap
import warnings
from pathlib import Path

import pytest

import repro
from repro.analysis import run_rules


class TestPackageExports:
    def test_manifest_is_frozen(self):
        with pytest.raises(TypeError):
            repro.PACKAGE_EXPORTS["Evil"] = "repro.api"

    def test_manifest_names_the_session_facade(self):
        assert set(repro.PACKAGE_EXPORTS) == {
            "Session", "LocalSession", "RemoteSession", "session",
            "ServeClient", "SweepJob", "GraphSpec", "SweepOutcome",
            "AcceleratorConfig", "SimStats",
        }

    @pytest.mark.parametrize("name", sorted({
        "Session", "LocalSession", "RemoteSession", "session",
        "ServeClient", "SweepJob", "GraphSpec", "SweepOutcome",
        "AcceleratorConfig", "SimStats",
    }))
    def test_every_export_resolves_to_its_declared_module(self, name):
        module = importlib.import_module(repro.PACKAGE_EXPORTS[name])
        assert getattr(repro, name) is getattr(module, name)

    def test_all_covers_exports_and_errors(self):
        assert set(repro.PACKAGE_EXPORTS) <= set(repro.__all__)
        assert "ReproError" in repro.__all__
        assert "ServeError" in repro.__all__
        # deprecated spellings must not ride along on star-imports
        assert not set(repro._DEPRECATED_EXPORTS) & set(repro.__all__)

    def test_dir_lists_lazy_and_deprecated_names(self):
        names = dir(repro)
        assert "Session" in names
        assert "run_sweep" in names

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_an_export


class TestDeprecatedExports:
    @pytest.mark.parametrize("name, canonical", [
        ("run_sweep", "repro.sweep.executor"),
        ("ResultCache", "repro.sweep.cache"),
        ("code_version", "repro.sweep.cache"),
    ])
    def test_shim_warns_and_resolves(self, name, canonical):
        with pytest.warns(DeprecationWarning, match=f"repro.{name}"):
            value = getattr(repro, name)
        assert value is getattr(importlib.import_module(canonical), name)

    def test_supported_exports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            repro.SweepJob
            repro.Session


# ----------------------------------------------------------------------
# the api-surface lint rule, on fixture packages
# ----------------------------------------------------------------------

def write(root: Path, relpath: str, source: str) -> None:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def run(root: Path):
    findings, ran = run_rules(root, ["api-surface"])
    assert ran == ["api-surface"]
    return findings


def symbols(findings):
    return sorted(f.symbol for f in findings)


def write_clean_root(root: Path, init_extra: str = "",
                     all_line: str =
                     '__all__ = ["__version__", "PACKAGE_EXPORTS", '
                     '*PACKAGE_EXPORTS]') -> None:
    write(root, "src/repro/__init__.py", f"""\
        from types import MappingProxyType

        __version__ = "1.0"

        PACKAGE_EXPORTS = MappingProxyType({{
            "Session": "repro.api",
        }})

        _DEPRECATED_EXPORTS = MappingProxyType({{
            "run_sweep": ("repro.legacy", "repro.api"),
        }})

        {all_line}
        {init_extra}

        def __getattr__(name):
            raise AttributeError(name)


        def __dir__():
            return sorted(globals())
    """)
    write(root, "src/repro/api.py", """\
        class Session:
            pass
    """)
    write(root, "src/repro/legacy.py", """\
        def run_sweep():
            pass
    """)


class TestApiSurfaceRule:
    def test_clean_surface_passes(self, tmp_path):
        write_clean_root(tmp_path)
        assert run(tmp_path) == []

    def test_missing_pep562_hooks(self, tmp_path):
        write_clean_root(tmp_path)
        write(tmp_path, "src/repro/__init__.py", """\
            from types import MappingProxyType
            PACKAGE_EXPORTS = MappingProxyType({"Session": "repro.api"})
            __all__ = ["PACKAGE_EXPORTS", *PACKAGE_EXPORTS]
        """)
        assert symbols(run(tmp_path)) == ["hook.__dir__",
                                          "hook.__getattr__"]

    def test_missing_manifest(self, tmp_path):
        write_clean_root(tmp_path)
        write(tmp_path, "src/repro/__init__.py", """\
            __all__ = []


            def __getattr__(name):
                raise AttributeError(name)


            def __dir__():
                return []
        """)
        assert symbols(run(tmp_path)) == ["no-manifest"]

    def test_unresolved_manifest_entry(self, tmp_path):
        write_clean_root(tmp_path)
        write(tmp_path, "src/repro/api.py", "X = 1\n")
        assert symbols(run(tmp_path)) == ["unresolved.Session"]

    def test_unknown_manifest_module(self, tmp_path):
        write_clean_root(tmp_path)
        (tmp_path / "src/repro/api.py").unlink()
        assert symbols(run(tmp_path)) == ["module.Session"]

    def test_eager_binding_shadows_lazy_export(self, tmp_path):
        write_clean_root(tmp_path, init_extra="Session = object\n")
        assert symbols(run(tmp_path)) == ["eager.Session"]

    def test_export_missing_from_explicit_all(self, tmp_path):
        write_clean_root(tmp_path,
                         all_line='__all__ = ["PACKAGE_EXPORTS"]')
        assert symbols(run(tmp_path)) == ["all-missing.Session"]

    def test_deprecated_name_in_all(self, tmp_path):
        write_clean_root(
            tmp_path,
            all_line='__all__ = ["PACKAGE_EXPORTS", "run_sweep", '
                     '*PACKAGE_EXPORTS]')
        assert symbols(run(tmp_path)) == ["all-deprecated.run_sweep"]

    def test_broken_deprecation_shim_target(self, tmp_path):
        write_clean_root(tmp_path)
        write(tmp_path, "src/repro/legacy.py", "other = 1\n")
        assert symbols(run(tmp_path)) == ["shim.run_sweep"]

    def test_unknown_all_entry(self, tmp_path):
        write_clean_root(
            tmp_path,
            all_line='__all__ = ["PACKAGE_EXPORTS", "ghost", '
                     '*PACKAGE_EXPORTS]')
        assert symbols(run(tmp_path)) == ["all.ghost"]

    def test_in_repo_use_of_deprecated_spelling(self, tmp_path):
        write_clean_root(tmp_path)
        write(tmp_path, "src/repro/consumer.py", """\
            from repro import run_sweep
        """)
        assert symbols(run(tmp_path)) == ["use.run_sweep"]

    def test_real_package_root_is_clean(self):
        repo_root = Path(__file__).resolve().parent.parent
        findings = run(repo_root)
        assert findings == []
