"""Unit tests for SimStats derived metrics."""

import pytest

from repro.accel import SimStats


def make(cycles=1000, edges=8000, freq=1.0, **kw):
    stats = SimStats(config_name="X", algorithm="BFS", graph_name="g",
                     frequency_ghz=freq, **kw)
    stats.scatter_cycles = cycles
    stats.edges_processed = edges
    return stats


class TestDerivedMetrics:
    def test_gteps_definition(self):
        # 8000 edges / 1000 cycles at 1 GHz = 8 giga-edges/second
        assert make().gteps == pytest.approx(8.0)

    def test_gteps_scales_with_frequency(self):
        assert make(freq=0.5).gteps == pytest.approx(4.0)

    def test_total_cycles_sums_phases(self):
        s = make()
        s.apply_cycles = 100
        s.slice_load_cycles = 50
        assert s.total_cycles == 1150

    def test_seconds(self):
        assert make().seconds == pytest.approx(1000 / 1e9)

    def test_zero_cycles_safe(self):
        s = SimStats()
        assert s.gteps == 0.0
        assert s.edges_per_cycle == 0.0

    def test_speedup_over(self):
        fast, slow = make(cycles=500), make(cycles=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)

    def test_speedup_accounts_for_frequency(self):
        # same cycles, half the clock -> half the speed
        a, b = make(freq=1.0), make(freq=0.5)
        assert a.speedup_over(b) == pytest.approx(2.0)

    def test_vpe_utilization(self):
        s = make()
        s.vpe_busy_cycles = 75
        s.vpe_starvation_cycles = 25
        assert s.vpe_utilization == pytest.approx(0.75)
        assert SimStats().vpe_utilization == 0.0

    def test_edges_per_cycle(self):
        assert make().edges_per_cycle == pytest.approx(8.0)

    def test_summary_keys(self):
        s = make().summary()
        for key in ("config", "algorithm", "graph", "cycles", "edges",
                    "gteps", "edges_per_cycle", "vpe_starvation_cycles"):
            assert key in s
