"""Baseline round-trip: add -> suppress -> justify -> fix -> stale."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineEntry, lint
from repro.analysis.baseline import BASELINE_NAME, TODO_JUSTIFICATION
from repro.errors import ConfigError


def write_module(root: Path, source: str) -> Path:
    path = root / "src/repro/accel/mod.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestRoundTrip:
    def test_add_suppress_justify_fix(self, tmp_path):
        write_module(tmp_path, "CACHE = {}\n")

        # 1. a fresh finding fails the run
        report = lint(tmp_path, rule_ids=["module-state"])
        assert report.exit_code() == 1
        assert [f.symbol for f in report.findings] == ["CACHE"]

        # 2. --update-baseline grandfathers it (with a TODO placeholder)
        #    and reports the diff it made
        report = lint(tmp_path, rule_ids=["module-state"],
                      update_baseline=True)
        assert report.exit_code() == 0
        assert report.findings == []
        assert [e.symbol for _, e in report.baselined] == ["CACHE"]
        assert [e.symbol for e in report.unjustified] == ["CACHE"]
        assert [e.symbol for e in report.baseline_added] == ["CACHE"]
        assert report.baseline_removed == []
        assert report.exit_code(strict=True) == 1    # TODO not a justification

        # 3. writing a real justification clears strict mode
        baseline_path = tmp_path / BASELINE_NAME
        payload = json.loads(baseline_path.read_text())
        assert payload["entries"][0]["justification"] == TODO_JUSTIFICATION
        payload["entries"][0]["justification"] = "known-safe: reset per run"
        baseline_path.write_text(json.dumps(payload))
        report = lint(tmp_path, rule_ids=["module-state"])
        assert report.exit_code(strict=True) == 0
        assert report.unjustified == []

        # 4. fixing the code makes the entry stale
        write_module(tmp_path, "CACHE = ()\n")
        report = lint(tmp_path, rule_ids=["module-state"])
        assert report.findings == []
        assert [e.symbol for e in report.stale_baseline] == ["CACHE"]
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

        # 5. --update-baseline shrinks the file back to empty and
        #    reports the removal
        report = lint(tmp_path, rule_ids=["module-state"],
                      update_baseline=True)
        assert [e.symbol for e in report.baseline_removed] == ["CACHE"]
        assert report.baseline_added == []
        assert json.loads(baseline_path.read_text())["entries"] == []

    def test_line_shifts_do_not_unsuppress(self, tmp_path):
        write_module(tmp_path, "CACHE = {}\n")
        lint(tmp_path, rule_ids=["module-state"], update_baseline=True)

        # same symbol, very different line number
        write_module(tmp_path, "# a\n# b\n# c\n\nX = 1\nCACHE = {}\n")
        report = lint(tmp_path, rule_ids=["module-state"])
        assert report.findings == []
        assert [e.symbol for _, e in report.baselined] == ["CACHE"]

    def test_update_preserves_existing_justifications(self, tmp_path):
        write_module(tmp_path, "CACHE = {}\nSINKS = []\n")
        baseline = Baseline([BaselineEntry(
            rule="module-state", path="src/repro/accel/mod.py",
            symbol="CACHE", justification="documented discipline")])
        baseline.save(tmp_path / BASELINE_NAME)

        lint(tmp_path, rule_ids=["module-state"], update_baseline=True)
        reloaded = Baseline.load(tmp_path / BASELINE_NAME)
        by_symbol = {e.symbol: e.justification for e in reloaded.entries}
        assert by_symbol["CACHE"] == "documented discipline"
        assert by_symbol["SINKS"] == TODO_JUSTIFICATION

    def test_partial_update_keeps_other_rules_entries(self, tmp_path):
        write_module(tmp_path, "CACHE = {}\n")
        Baseline([BaselineEntry(rule="cache-key", path="p",
                                symbol="s", justification="j")]) \
            .save(tmp_path / BASELINE_NAME)
        lint(tmp_path, rule_ids=["module-state"], update_baseline=True)
        reloaded = Baseline.load(tmp_path / BASELINE_NAME)
        assert sorted(e.rule for e in reloaded.entries) == [
            "cache-key", "module-state"]

    def test_partial_rule_run_reports_no_stale(self, tmp_path):
        # a --rule run legitimately leaves other rules' entries unmatched
        write_module(tmp_path, "X = 1\n")
        Baseline([BaselineEntry(rule="cache-key", path="p",
                                symbol="s", justification="j")]) \
            .save(tmp_path / BASELINE_NAME)
        report = lint(tmp_path, rule_ids=["module-state"])
        assert report.stale_baseline == []


class TestFileFormat:
    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "none.json").entries == []

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / BASELINE_NAME
        path.write_text("{oops")
        with pytest.raises(ConfigError):
            Baseline.load(path)

    def test_missing_entries_key_rejected(self, tmp_path):
        path = tmp_path / BASELINE_NAME
        path.write_text("{}")
        with pytest.raises(ConfigError):
            Baseline.load(path)

    def test_save_is_deterministic(self, tmp_path):
        entries = [BaselineEntry("r2", "b", "s", "j"),
                   BaselineEntry("r1", "a", "s", "j")]
        p1, p2 = tmp_path / "one.json", tmp_path / "two.json"
        Baseline(entries).save(p1)
        Baseline(list(reversed(entries))).save(p2)
        assert p1.read_text() == p2.read_text()
