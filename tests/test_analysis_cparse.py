"""Hostile fixtures for the C declaration parser behind the seam rules."""

import textwrap

from repro.analysis.cparse import parse_c


def parse(source):
    return parse_c(textwrap.dedent(source))


class TestDefines:
    def test_plain_and_suffixed_literals(self):
        u = parse("""
            #define ABI 3
            #define MAGIC 0x534F4131LL
            #define NEG -1
        """)
        assert u.defines["ABI"].int_value() == 3
        assert u.defines["MAGIC"].int_value() == 0x534F4131
        assert u.defines["NEG"].int_value() == -1

    def test_expression_value_is_not_an_int(self):
        u = parse("#define TOTAL (A + B)\n")
        assert u.defines["TOTAL"].int_value() is None
        assert u.defines["TOTAL"].value == "(A + B)"

    def test_function_like_macro_is_skipped(self):
        u = parse("#define MAX(a, b) ((a) > (b) ? (a) : (b))\n")
        assert "MAX" not in u.defines

    def test_line_numbers_survive_comments(self):
        u = parse("""
            /* a comment
               spanning lines */
            #define AFTER 1
        """)
        assert u.defines["AFTER"].line == 4

    def test_continuation_lines(self):
        u = parse("#define LONG \\\n    42\n#define NEXT 7\n")
        assert u.defines["LONG"].int_value() == 42
        assert u.defines["NEXT"].int_value() == 7


class TestStructs:
    def test_typedef_struct_with_comments_inside_body(self):
        u = parse("""
            typedef long long i64;
            typedef double f64;
            typedef struct {
                i64 magic;          /* guard */
                // line comment between members
                i64 n, m, w;
                f64 scale;
                const i64 *offsets;
                f64 *payload;
            } State;
        """)
        st = u.structs["State"]
        assert [f.name for f in st.fields] == [
            "magic", "n", "m", "w", "scale", "offsets", "payload"]
        assert [f.kind for f in st.fields] == [
            "i64", "i64", "i64", "i64", "f64", "i64*", "f64*"]
        assert st.field("n").line == st.field("w").line
        assert u.canonical_type("i64") == "long long"

    def test_ifdef_inside_struct_takes_first_branch(self):
        u = parse("""
            struct S {
                long long a;
            #ifdef FANCY
                long long fancy;
            #else
                long long plain;
            #endif
                long long z;
            };
        """)
        assert [f.name for f in u.structs["S"].fields] == ["a", "fancy", "z"]

    def test_if_zero_block_is_dead_and_else_activates(self):
        u = parse("""
            struct S {
            #if 0
                long long dead;
            #else
                long long live;
            #endif
            };
        """)
        assert [f.name for f in u.structs["S"].fields] == ["live"]

    def test_array_members_and_multi_word_types(self):
        u = parse("""
            struct S {
                unsigned long long big;
                long long buf[16];
                const double *rows[4];
            };
        """)
        fields = {f.name: f for f in u.structs["S"].fields}
        assert fields["big"].scalar == "unsigned long long"
        assert fields["buf"].pointer is False
        assert fields["rows"].pointer is True

    def test_nested_aggregate_is_skipped_not_fatal(self):
        u = parse("""
            struct S {
                long long before;
                struct { long long x; } inner;
                long long after;
            };
        """)
        names = [f.name for f in u.structs["S"].fields]
        assert "before" in names and "after" in names

    def test_string_literal_cannot_hide_a_brace(self):
        u = parse("""
            static const char *banner = "struct Fake { int x; }";
            struct Real { long long a; };
        """)
        assert list(u.structs) == ["Real"]


class TestEnums:
    def test_auto_increment_and_explicit_values(self):
        u = parse("""
            enum Slots { FIRST, SECOND, TENTH = 10, NEXT };
        """)
        assert u.enums["Slots"].members == (
            ("FIRST", 0), ("SECOND", 1), ("TENTH", 10), ("NEXT", 11))

    def test_typedef_enum_with_trailing_comma(self):
        u = parse("""
            typedef enum {
                A = 1,
                B,
            } Kind;
        """)
        assert u.enums["Kind"].members == (("A", 1), ("B", 2))

    def test_non_literal_initializer_poisons_successors(self):
        u = parse("enum E { A = (1 << 2), B };\n")
        assert u.enums["E"].members == (("A", None), ("B", None))

    def test_member_lines_recorded(self):
        u = parse("""
            enum E {
                ALPHA,
                BETA,
            };
        """)
        e = u.enums["E"]
        assert e.member_lines[1] == e.member_lines[0] + 1
