"""Incremental-cache behaviour of ``repro lint``.

The invariant under test: a cache replay is byte-identical to a cold
run, and anything suspicious — edited file, edited analyzer (salt),
corrupt cache file — silently degrades to a cold run.
"""

import json
import textwrap
from pathlib import Path

from repro.analysis import lint
from repro.analysis.cache import CACHE_NAME, analysis_salt


def write(root: Path, relpath: str, source: str) -> None:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


VIOLATION = """\
    CACHE = {}


    def remember(key, value):
        CACHE[key] = value
"""


def test_warm_run_replays_identical_findings(tmp_path):
    write(tmp_path, "src/repro/accel/bad.py", VIOLATION)
    cold = lint(tmp_path, rule_ids=["module-state"])
    assert (tmp_path / CACHE_NAME).exists()
    warm = lint(tmp_path, rule_ids=["module-state"])
    assert warm.cache_hits > 0 and warm.cache_misses == 0
    assert [f.to_dict() for f in warm.findings] == \
        [f.to_dict() for f in cold.findings]
    # severity survived the round-trip (stamping happened before store)
    assert warm.findings[0].severity == "error"


def test_edited_file_is_recomputed(tmp_path):
    write(tmp_path, "src/repro/accel/bad.py", VIOLATION)
    lint(tmp_path, rule_ids=["module-state"])
    write(tmp_path, "src/repro/accel/bad.py", "# comment\n" + textwrap.dedent(
        VIOLATION))
    warm = lint(tmp_path, rule_ids=["module-state"])
    # the shifted line proves the finding came from a re-run, not replay
    assert warm.findings[0].line == 2


def test_clean_file_caches_empty_result(tmp_path):
    write(tmp_path, "src/repro/accel/ok.py", "X = 1\n")
    lint(tmp_path, rule_ids=["module-state"])
    warm = lint(tmp_path, rule_ids=["module-state"])
    assert warm.findings == []
    assert warm.cache_hits > 0


def test_salt_mismatch_degrades_to_cold_run(tmp_path):
    write(tmp_path, "src/repro/accel/bad.py", VIOLATION)
    lint(tmp_path, rule_ids=["module-state"])
    payload = json.loads((tmp_path / CACHE_NAME).read_text())
    payload["salt"] = "0" * 64
    (tmp_path / CACHE_NAME).write_text(json.dumps(payload))
    warm = lint(tmp_path, rule_ids=["module-state"])
    assert warm.cache_hits == 0
    assert len(warm.findings) == 1


def test_corrupt_cache_file_degrades_to_cold_run(tmp_path):
    write(tmp_path, "src/repro/accel/bad.py", VIOLATION)
    (tmp_path / CACHE_NAME).write_text("{ not json")
    report = lint(tmp_path, rule_ids=["module-state"])
    assert len(report.findings) == 1
    # and the broken file was replaced with a valid one
    json.loads((tmp_path / CACHE_NAME).read_text())


def test_no_cache_writes_nothing(tmp_path):
    write(tmp_path, "src/repro/accel/bad.py", VIOLATION)
    report = lint(tmp_path, rule_ids=["module-state"], use_cache=False)
    assert len(report.findings) == 1
    assert not (tmp_path / CACHE_NAME).exists()


def test_salt_is_a_memoized_digest():
    salt = analysis_salt()
    assert len(salt) == 64
    assert analysis_salt() is salt


def test_unchanged_run_does_not_rewrite_cache(tmp_path):
    write(tmp_path, "src/repro/accel/bad.py", VIOLATION)
    lint(tmp_path, rule_ids=["module-state"])
    before = (tmp_path / CACHE_NAME).stat().st_mtime_ns
    lint(tmp_path, rule_ids=["module-state"])
    assert (tmp_path / CACHE_NAME).stat().st_mtime_ns == before
